//! Leaderboard: a sorted real-time query with limit *and* offset — the
//! hard case of §5.2 (Figure 3's auxiliary-data machinery).
//!
//! Maintains "ranks 3–7" of a game leaderboard (`ORDER BY score DESC
//! OFFSET 2 LIMIT 5`) while players' scores churn. Demonstrates:
//!
//! * positional change notifications (`changeIndex`),
//! * items sliding between offset, result and beyond-limit regions,
//! * query maintenance errors and automatic, rate-limited renewal.
//!
//! Run with: `cargo run --release --example leaderboard`

use invalidb::broker::Broker;
use invalidb::client::{AppServer, AppServerConfig, ClientEvent};
use invalidb::core::{Cluster, ClusterConfig};
use invalidb::store::{Store, UpdateSpec};
use invalidb::{doc, Key, QuerySpec, SortDirection};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let store = Arc::new(Store::new());
    let broker = Broker::new();
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(2, 2));
    let app = AppServer::start(
        "game",
        Arc::clone(&store),
        broker.clone(),
        AppServerConfig::builder().build().expect("valid config"),
    );

    let mut rng = StdRng::seed_from_u64(42);
    let players = ["ada", "bob", "cyd", "dee", "eli", "fay", "gus", "hal", "ivy", "joe"];
    for p in players {
        app.insert("players", Key::of(p), doc! { "name" => p, "score" => rng.gen_range(0..1_000i64) })
            .unwrap();
    }

    // Ranks 3-7: ORDER BY score DESC OFFSET 2 LIMIT 5.
    let spec = QuerySpec::filter("players", doc! {})
        .sorted_by("score", SortDirection::Desc)
        .with_offset(2)
        .with_limit(5);
    println!("subscribing: {spec}");
    let mut sub = app.subscribe(&spec).unwrap();
    sub.events().timeout(Duration::from_secs(5)).next().expect("initial");
    print_board(&sub);

    // Churn scores and show the incremental notifications.
    for round in 1..=15 {
        let p = players[rng.gen_range(0..players.len())];
        let delta = rng.gen_range(-300..400i64);
        app.update(
            "players",
            Key::of(p),
            &UpdateSpec::from_document(&doc! { "$inc" => doc! { "score" => delta } }).unwrap(),
        )
        .unwrap();
        print!("round {round:>2}: {p} {delta:+} ");
        let mut events = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_millis(400);
        while std::time::Instant::now() < deadline {
            if let Some(ev) = sub.events().timeout(Duration::from_millis(50)).next() {
                events.push(ev);
            }
        }
        if events.is_empty() {
            println!("(no visible change)");
        } else {
            let shown: Vec<String> = events
                .iter()
                .map(|e| match e {
                    ClientEvent::Change(c) => format!("{} {}", c.match_type, c.item.key),
                    ClientEvent::MaintenanceError(_) => "maintenance-error -> renewal".to_string(),
                    other => format!("{other:?}"),
                })
                .collect();
            println!("{}", shown.join(", "));
        }
    }
    println!("\nfinal board (ranks 3-7):");
    print_board(&sub);

    // Verify against a fresh pull query — push and pull agree.
    let pulled = app.find(&spec).unwrap();
    let pulled_names: Vec<String> =
        pulled.iter().map(|r| r.doc.as_ref().unwrap().get("name").unwrap().to_string()).collect();
    let live_names: Vec<String> =
        sub.result().entries().iter().map(|e| e.doc.get("name").unwrap().to_string()).collect();
    println!("\npull said:  {pulled_names:?}");
    println!("push holds: {live_names:?}");
    assert_eq!(pulled_names, live_names, "push-maintained result equals pull result");
    println!("push == pull ✓  (renewals performed: {})", app.renewals_performed());
    cluster.shutdown();
}

fn print_board(sub: &invalidb::client::Subscription) {
    for (i, entry) in sub.result().entries().iter().enumerate() {
        println!(
            "  #{:<2} {:<4} {:>5}",
            i + 3,
            entry.doc.get("name").unwrap().as_str().unwrap(),
            entry.doc.get("score").unwrap().as_i64().unwrap()
        );
    }
}
