//! Sustained subscribe-and-write workload against an already-running
//! cluster event layer — the probe half of the CI cluster-smoke job.
//!
//! ```text
//! cluster_workload <event-addr> <seconds>
//! ```
//!
//! Connects an application server to the event layer at `<event-addr>`,
//! subscribes to one real-time query, then writes matching documents at a
//! steady rate for `<seconds>` while counting change notifications pushed
//! back by the remote matching grid. Exits nonzero if no notification
//! arrives — which is exactly what happens when the grid has no live
//! worker — so CI can assert "the cluster matched something" and, around
//! a worker SIGKILL, "the cluster kept matching".

use invalidb::client::{AppServer, AppServerConfig, ClientEvent};
use invalidb::net::{RemoteBroker, RemoteBrokerConfig};
use invalidb::store::Store;
use invalidb::{doc, Key, QuerySpec};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let mut args = std::env::args().skip(1);
    let (Some(event_addr), Some(seconds)) = (args.next(), args.next()) else {
        eprintln!("usage: cluster_workload <event-addr> <seconds>");
        std::process::exit(2);
    };
    let seconds: u64 = seconds.parse().expect("seconds must be a number");

    let store = Arc::new(Store::new());
    let remote = RemoteBroker::connect(
        event_addr.clone(),
        RemoteBrokerConfig { client_name: "cluster-workload".into(), ..Default::default() },
    );
    if !remote.wait_connected(Duration::from_secs(10)) {
        eprintln!("event layer at {event_addr} unreachable");
        std::process::exit(1);
    }
    let app = AppServer::start(
        "smoke",
        Arc::clone(&store),
        remote,
        AppServerConfig::builder().build().expect("valid config"),
    );

    let spec = QuerySpec::filter("readings", doc! { "hot" => true });
    let mut sub = app.subscribe(&spec).unwrap();
    match sub.events().timeout(Duration::from_secs(10)).next() {
        Some(ClientEvent::Initial(_)) => {}
        other => {
            eprintln!("no initial result from the grid (got {other:?})");
            std::process::exit(1);
        }
    }

    let deadline = Instant::now() + Duration::from_secs(seconds);
    let mut written = 0u64;
    let mut notified = 0u64;
    while Instant::now() < deadline {
        written += 1;
        app.insert(
            "readings",
            Key::of(format!("r{written}")),
            doc! { "hot" => true, "seq" => written as i64 },
        )
        .unwrap();
        // Drain whatever the grid pushed back since the last write.
        while let Some(event) = sub.events().non_blocking().next() {
            if matches!(event, ClientEvent::Change(_)) {
                notified += 1;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    // Grace period for in-flight notifications.
    let drain_deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < drain_deadline {
        match sub.events().timeout(Duration::from_millis(200)).next() {
            Some(ClientEvent::Change(_)) => notified += 1,
            Some(_) => {}
            None => break,
        }
    }

    println!("wrote {written} documents, received {notified} change notifications");
    if notified == 0 {
        eprintln!("the matching grid pushed back nothing — no live worker?");
        std::process::exit(1);
    }
}
