//! Quickstart: a complete InvaliDB deployment in one process.
//!
//! Starts the three decoupled components of the paper's architecture —
//! primary store, event layer, and the InvaliDB cluster — plus an
//! application server, then subscribes to a real-time query and watches
//! push notifications arrive as writes happen.
//!
//! Run with: `cargo run --release --example quickstart`

use invalidb::broker::Broker;
use invalidb::client::{AppServer, AppServerConfig, ClientEvent};
use invalidb::core::{Cluster, ClusterConfig};
use invalidb::store::{Store, UpdateSpec};
use invalidb::{doc, Key, QuerySpec};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 1. The pull-based primary store (the "MongoDB" of the paper).
    let store = Arc::new(Store::new());

    // 2. The event layer: the only channel into the InvaliDB cluster.
    let broker = Broker::new();

    // 3. The InvaliDB cluster: a 2x2 grid of matching nodes — two query
    //    partitions (scales #queries) x two write partitions (scales write
    //    throughput).
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(2, 2));

    // 4. The application server: unified pull/push interface for clients.
    let app =
        AppServer::start("quickstart", Arc::clone(&store), broker.clone(), AppServerConfig::default());

    // Seed some data through the app server (writes forward after-images to
    // the cluster automatically).
    for (name, age) in [("ada", 36i64), ("grace", 45), ("edsger", 28)] {
        app.insert("users", Key::of(name), doc! { "name" => name, "age" => age }).unwrap();
    }

    // A pull-based query...
    let adults = QuerySpec::filter("users", doc! { "age" => doc! { "$gte" => 30i64 } });
    let result = app.find(&adults).unwrap();
    println!("pull result: {} adults", result.len());

    // ...and the same query as a push-based real-time subscription.
    let mut sub = app.subscribe(&adults).unwrap();
    match sub.next_event(Duration::from_secs(5)).expect("initial result") {
        ClientEvent::Initial(items) => {
            println!("push initial result ({} items):", items.len());
            for item in &items {
                println!("  {}", item.doc.as_ref().unwrap());
            }
        }
        other => panic!("unexpected event: {other:?}"),
    }

    // Writes now produce push notifications: an insert that matches...
    app.insert("users", Key::of("barbara"), doc! { "name" => "barbara", "age" => 33i64 }).unwrap();
    // ...an update that moves a user out of the result...
    app.update(
        "users",
        Key::of("ada"),
        &UpdateSpec::from_document(&doc! { "$set" => doc! { "age" => 29i64 } }).unwrap(),
    )
    .unwrap();
    // ...and a delete.
    app.delete("users", Key::of("grace")).unwrap();

    for _ in 0..3 {
        match sub.next_event(Duration::from_secs(5)).expect("change notification") {
            ClientEvent::Change(c) => {
                println!("notification: {} {}", c.match_type, c.item.key);
            }
            other => println!("event: {other:?}"),
        }
    }
    println!("maintained result now has {} entries", sub.result().len());

    // The cluster is an isolated failure domain: shutting it down leaves
    // the store and the pull path fully operational.
    cluster.shutdown();
    let still_works = app.find(&adults).unwrap();
    println!("cluster stopped; pull query still returns {} rows", still_works.len());
}
