//! Quickstart: a complete InvaliDB deployment in one process.
//!
//! Starts the three decoupled components of the paper's architecture —
//! primary store, event layer, and the InvaliDB cluster — plus an
//! application server, then subscribes to a real-time query and watches
//! push notifications arrive as writes happen. Stage tracing is enabled
//! for every write, so the example ends with a per-stage latency
//! breakdown of the pipeline.
//!
//! Run with: `cargo run --release --example quickstart`

use invalidb::broker::Broker;
use invalidb::client::{AppServer, AppServerConfig, ClientEvent};
use invalidb::core::{Cluster, ClusterConfig};
use invalidb::store::{Store, UpdateSpec};
use invalidb::{doc, Key, MetricsRegistry, QuerySpec};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), invalidb::Error> {
    // 1. The pull-based primary store (the "MongoDB" of the paper).
    let store = Arc::new(Store::new());

    // 2. The event layer: the only channel into the InvaliDB cluster.
    let broker = Broker::new();

    // One registry shared by cluster and app server: a single snapshot
    // covers the whole pipeline.
    let metrics = MetricsRegistry::new();

    // 3. The InvaliDB cluster: a 2x2 grid of matching nodes — two query
    //    partitions (scales #queries) x two write partitions (scales write
    //    throughput).
    let cluster =
        Cluster::start(broker.clone(), ClusterConfig::builder(2, 2).metrics(metrics.clone()).build()?);

    // 4. The application server: unified pull/push interface for clients.
    //    `trace_sample_every(1)` traces every write (production would
    //    sample, e.g. 1-in-1000).
    let config = AppServerConfig::builder().trace_sample_every(1).metrics(metrics.clone()).build()?;
    let app = AppServer::start("quickstart", Arc::clone(&store), broker.clone(), config);

    // Seed some data through the app server (writes forward after-images to
    // the cluster automatically).
    for (name, age) in [("ada", 36i64), ("grace", 45), ("edsger", 28)] {
        app.insert("users", Key::of(name), doc! { "name" => name, "age" => age })?;
    }

    // A pull-based query...
    let adults = QuerySpec::filter("users", doc! { "age" => doc! { "$gte" => 30i64 } });
    let result = app.find(&adults)?;
    println!("pull result: {} adults", result.len());

    // ...and the same query as a push-based real-time subscription.
    let mut sub = app.subscribe(&adults)?;
    match sub.events().timeout(Duration::from_secs(5)).next().expect("initial result") {
        ClientEvent::Initial(items) => {
            println!("push initial result ({} items):", items.len());
            for item in &items {
                println!("  {}", item.doc.as_ref().unwrap());
            }
        }
        other => panic!("unexpected event: {other:?}"),
    }

    // Writes now produce push notifications: an insert that matches...
    app.insert("users", Key::of("barbara"), doc! { "name" => "barbara", "age" => 33i64 })?;
    // ...an update that moves a user out of the result...
    app.update(
        "users",
        Key::of("ada"),
        &UpdateSpec::from_document(&doc! { "$set" => doc! { "age" => 29i64 } }).unwrap(),
    )?;
    // ...and a delete.
    app.delete("users", Key::of("grace"))?;

    for event in sub.events().timeout(Duration::from_secs(5)).take(3) {
        match event {
            ClientEvent::Change(c) => println!("notification: {} {}", c.match_type, c.item.key),
            other => println!("event: {other:?}"),
        }
    }
    println!("maintained result now has {} entries", sub.result().len());

    // Every notification carried a stage trace: where did the time go?
    if let Some(trace) = sub.last_trace() {
        println!("\nlast notification, stage by stage ({}us end to end):", trace.elapsed_micros());
        for (from, to, micros) in trace.breakdown() {
            println!("  {:>10} -> {:<11} {:>6}us", from.as_str(), to.as_str(), micros);
        }
    }

    // And the shared registry aggregated the whole run:
    println!("\n{}", app.metrics().to_text_table());

    // The cluster is an isolated failure domain: shutting it down leaves
    // the store and the pull path fully operational.
    cluster.shutdown();
    let still_works = app.find(&adults)?;
    println!("cluster stopped; pull query still returns {} rows", still_works.len());
    Ok(())
}
