//! Networked deployment: store + cluster and the application server on
//! opposite ends of a loopback TCP socket.
//!
//! The paper's deployment (§5.3) separates three independently scalable
//! services — the pull-based store, the InvaliDB cluster, and the event
//! layer connecting them to application servers. `quickstart.rs` runs all
//! of them in one process over the in-process broker; this example puts
//! the event layer on the wire:
//!
//! ```text
//!   "cluster host"                        "app-server host"
//!   Store + Cluster ── Broker ── BrokerServer ══TCP══ RemoteBroker ── AppServer
//! ```
//!
//! The app server connects through a [`RemoteBroker`], which implements
//! the same publish/subscribe surface as the in-process broker — neither
//! `invalidb-client` nor `invalidb-core` changes a line. Along the way the
//! example drops the connection mid-stream to show the supervisor
//! reconnecting and replaying subscriptions.
//!
//! Run with: `cargo run --release --example distributed`

use invalidb::broker::Broker;
use invalidb::client::{AppServer, AppServerConfig, ClientEvent};
use invalidb::core::{Cluster, ClusterConfig};
use invalidb::net::{BrokerServer, BrokerServerConfig, RemoteBroker, RemoteBrokerConfig};
use invalidb::store::Store;
use invalidb::{doc, Key, QuerySpec};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // ----- "cluster host": store, cluster, and the event-layer server ---
    let store = Arc::new(Store::new());
    let broker = Broker::new();
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(2, 2));
    let server = BrokerServer::bind("127.0.0.1:0", broker, BrokerServerConfig::default())
        .expect("bind event-layer server");
    let addr = server.local_addr();
    println!("event layer listening on {addr}");

    // ----- "app-server host": connect over TCP ------------------------
    let remote = RemoteBroker::connect(
        addr.to_string(),
        RemoteBrokerConfig { client_name: "distributed-example".into(), ..Default::default() },
    );
    assert!(remote.wait_connected(Duration::from_secs(5)), "event layer reachable");
    let app = AppServer::start(
        "distributed",
        Arc::clone(&store),
        remote.clone(),
        AppServerConfig::builder().build().expect("valid config"),
    );

    for (name, age) in [("ada", 36i64), ("grace", 45), ("edsger", 28)] {
        app.insert("users", Key::of(name), doc! { "name" => name, "age" => age }).unwrap();
    }

    let adults = QuerySpec::filter("users", doc! { "age" => doc! { "$gte" => 30i64 } });
    let mut sub = app.subscribe(&adults).unwrap();
    match sub.events().timeout(Duration::from_secs(5)).next().expect("initial result") {
        ClientEvent::Initial(items) => println!("initial result over TCP: {} adults", items.len()),
        other => panic!("unexpected event: {other:?}"),
    }

    app.insert("users", Key::of("barbara"), doc! { "name" => "barbara", "age" => 33i64 }).unwrap();
    match sub.events().timeout(Duration::from_secs(5)).next().expect("change notification") {
        ClientEvent::Change(c) => println!("notification over TCP: {} {}", c.match_type, c.item.key),
        other => println!("event: {other:?}"),
    }

    // ----- mid-stream disconnect --------------------------------------
    // Kill the TCP connection out from under the app server. The
    // supervisor reconnects with backoff and replays its subscriptions;
    // the app server's maintenance machinery repairs anything missed.
    let reconnects_before = remote.metrics().reconnects.load(std::sync::atomic::Ordering::Relaxed);
    remote.kick();
    while remote.metrics().reconnects.load(std::sync::atomic::Ordering::Relaxed) <= reconnects_before {
        std::thread::sleep(Duration::from_millis(10));
    }
    println!("connection dropped and re-established (reconnect + resubscription replay)");

    app.insert("users", Key::of("annie"), doc! { "name" => "annie", "age" => 52i64 }).unwrap();
    loop {
        match sub.events().timeout(Duration::from_secs(10)).next().expect("notification after reconnect")
        {
            ClientEvent::Change(c) if c.item.key == Key::of("annie") => {
                println!("notification after reconnect: {} {}", c.match_type, c.item.key);
                break;
            }
            other => println!("event: {other:?}"),
        }
    }

    let (frames_in, frames_out, _, dropped, reconnects) = remote.metrics().snapshot();
    println!(
        "link metrics: {frames_in} frames in, {frames_out} frames out, \
         {dropped} dropped, {reconnects} (re)connects"
    );

    drop(sub);
    cluster.shutdown();
    remote.shutdown();
    println!("done");
}
