//! Multi-process deployment: coordinator, two remote matching workers, and
//! an application server — four OS processes wired over loopback TCP.
//!
//! The paper's deployment (§5.3) separates three independently scalable
//! services: the pull-based store, the InvaliDB cluster, and the event
//! layer connecting them to application servers. This example runs that
//! topology for real, as separate processes:
//!
//! ```text
//!   invalidb-coordinatord          invalidb-workerd ×2
//!   ├─ coordinator (membership,    ├─ control conn → coordinator
//!   │  heartbeats, Assign)         └─ hosts assigned grid cells,
//!   └─ event layer (BrokerServer)     fed through a RemoteBroker
//!              ║
//!         TCP  ║  (event layer)
//!              ║
//!   this process: Store + AppServer over a RemoteBroker
//! ```
//!
//! The two workers split the 2×2 matching grid between them; the
//! coordinator prints the assignment table whenever the epoch changes,
//! and this example forwards those lines so you can watch placement
//! happen.
//!
//! Run with: `cargo run --release --example distributed`
//! (builds the daemons first: `cargo build --release --bins`)

use invalidb::client::{AppServer, AppServerConfig, ClientEvent};
use invalidb::net::{RemoteBroker, RemoteBrokerConfig};
use invalidb::store::Store;
use invalidb::{doc, Key, QuerySpec};
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

/// The sibling daemon binaries live next to this example's own binary:
/// `target/<profile>/examples/distributed` → `target/<profile>/<name>`.
fn daemon(name: &str) -> std::path::PathBuf {
    let exe = std::env::current_exe().expect("own path");
    let profile_dir =
        exe.parent().and_then(|examples| examples.parent()).expect("target profile directory");
    let path = profile_dir.join(name);
    assert!(
        path.exists(),
        "{} not built — run `cargo build --bins` (same profile) first",
        path.display()
    );
    path
}

struct Reaper(Vec<Child>);

impl Drop for Reaper {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn main() {
    // ----- process 1: coordinator + event layer -----------------------
    let mut coordinatord = Command::new(daemon("invalidb-coordinatord"))
        .args(["--qp", "2", "--wp", "2"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn invalidb-coordinatord");
    let mut coord_out = std::io::BufReader::new(coordinatord.stdout.take().expect("piped stdout"));
    let mut read_addr = |prefix: &str| -> String {
        let mut line = String::new();
        coord_out.read_line(&mut line).expect("coordinatord output");
        print!("[coordinatord] {line}");
        line.strip_prefix(prefix)
            .unwrap_or_else(|| panic!("expected `{prefix}…`, got `{line}`"))
            .trim()
            .to_string()
    };
    let coord_addr = read_addr("coordinator listening at ");
    let event_addr = read_addr("event layer at ");
    // Forward the coordinator's operator console (assignment tables).
    std::thread::spawn(move || {
        let mut line = String::new();
        while coord_out.read_line(&mut line).is_ok_and(|n| n > 0) {
            print!("[coordinatord] {line}");
            line.clear();
        }
    });

    // ----- processes 2 and 3: remote matching workers ------------------
    let workers: Vec<Child> = ["alpha", "beta"]
        .iter()
        .map(|name| {
            Command::new(daemon("invalidb-workerd"))
                .args(["--coordinator", &coord_addr, "--event", &event_addr, "--name", name])
                .stdout(Stdio::inherit())
                .spawn()
                .expect("spawn invalidb-workerd")
        })
        .collect();
    let mut children = vec![coordinatord];
    children.extend(workers);
    let _reaper = Reaper(children);

    // ----- process 4 (this one): store + application server ------------
    let store = Arc::new(Store::new());
    let remote = RemoteBroker::connect(
        event_addr.clone(),
        RemoteBrokerConfig { client_name: "distributed-example".into(), ..Default::default() },
    );
    assert!(remote.wait_connected(Duration::from_secs(5)), "event layer reachable");
    let app = AppServer::start(
        "distributed",
        Arc::clone(&store),
        remote.clone(),
        AppServerConfig::builder().build().expect("valid config"),
    );

    for (name, age) in [("ada", 36i64), ("grace", 45), ("edsger", 28)] {
        app.insert("users", Key::of(name), doc! { "name" => name, "age" => age }).unwrap();
    }

    let adults = QuerySpec::filter("users", doc! { "age" => doc! { "$gte" => 30i64 } });
    let mut sub = app.subscribe(&adults).unwrap();
    match sub.events().timeout(Duration::from_secs(10)).next().expect("initial result") {
        ClientEvent::Initial(items) => {
            println!("initial result from the remote grid: {} adults", items.len())
        }
        other => panic!("unexpected event: {other:?}"),
    }

    app.insert("users", Key::of("barbara"), doc! { "name" => "barbara", "age" => 33i64 }).unwrap();
    loop {
        match sub.events().timeout(Duration::from_secs(10)).next().expect("change notification") {
            ClientEvent::Change(c) if c.item.key == Key::of("barbara") => {
                println!("notification matched by a remote worker: {} {}", c.match_type, c.item.key);
                break;
            }
            other => println!("event: {other:?}"),
        }
    }

    let (frames_in, frames_out, _, dropped, reconnects) = remote.metrics().snapshot();
    println!(
        "link metrics: {frames_in} frames in, {frames_out} frames out, \
         {dropped} dropped, {reconnects} (re)connects"
    );

    drop(sub);
    remote.shutdown();
    println!("done");
}
