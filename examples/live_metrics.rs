//! Live metrics: real-time aggregate queries (this repository's extension
//! implementing the paper's §8.1 future work — aggregations as an
//! additional processing stage).
//!
//! A storefront keeps four live KPIs over its `orders` collection — open
//! order count, open revenue, average basket and largest order — each as a
//! push-based aggregate subscription. No polling, no recomputation: the
//! aggregation stage maintains the values incrementally from the filtering
//! stage's output.
//!
//! Run with: `cargo run --release --example live_metrics`

use invalidb::broker::Broker;
use invalidb::client::{AppServer, AppServerConfig, ClientEvent, Subscription};
use invalidb::common::AggregateOp;
use invalidb::core::{Cluster, ClusterConfig};
use invalidb::store::{Store, UpdateSpec};
use invalidb::{doc, Key, QuerySpec};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let store = Arc::new(Store::new());
    let broker = Broker::new();
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(2, 2));
    let app = AppServer::start(
        "shop",
        Arc::clone(&store),
        broker.clone(),
        AppServerConfig::builder().build().expect("valid config"),
    );

    let open = doc! { "status" => "open" };
    let metrics: Vec<(&str, QuerySpec)> = vec![
        ("open orders", QuerySpec::filter("orders", open.clone()).aggregated(AggregateOp::Count, None)),
        (
            "open revenue",
            QuerySpec::filter("orders", open.clone()).aggregated(AggregateOp::Sum, Some("total")),
        ),
        (
            "avg basket",
            QuerySpec::filter("orders", open.clone()).aggregated(AggregateOp::Avg, Some("total")),
        ),
        (
            "largest order",
            QuerySpec::filter("orders", open.clone()).aggregated(AggregateOp::Max, Some("total")),
        ),
    ];
    let mut subs: Vec<(&str, Subscription)> = metrics
        .iter()
        .map(|(name, spec)| {
            let mut sub = app.subscribe(spec).expect("subscribe");
            match sub.events().timeout(Duration::from_secs(5)).next() {
                Some(ClientEvent::Aggregate { .. }) => {}
                other => panic!("expected initial aggregate, got {other:?}"),
            }
            (*name, sub)
        })
        .collect();

    let dashboard = |subs: &mut Vec<(&str, Subscription)>, label: &str| {
        for (_, sub) in subs.iter_mut() {
            while sub.events().non_blocking().next().is_some() {}
        }
        println!("\n== {label} ==");
        for (name, sub) in subs.iter() {
            let (value, count) = sub.aggregate().expect("aggregate value");
            println!("  {name:<14} {value}   ({count} matching)");
        }
    };

    dashboard(&mut subs, "empty shop");

    for (id, total) in [(1i64, 40i64), (2, 100), (3, 25)] {
        app.insert("orders", Key::of(id), doc! { "status" => "open", "total" => total }).unwrap();
    }
    std::thread::sleep(Duration::from_millis(400));
    dashboard(&mut subs, "three orders placed (40 + 100 + 25)");

    // The biggest order ships: drops out of every open-order metric.
    app.update(
        "orders",
        Key::of(2i64),
        &UpdateSpec::from_document(&doc! { "$set" => doc! { "status" => "shipped" } }).unwrap(),
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(400));
    dashboard(&mut subs, "order #2 shipped");

    // Upsell on order #1.
    app.update(
        "orders",
        Key::of(1i64),
        &UpdateSpec::from_document(&doc! { "$inc" => doc! { "total" => 60i64 } }).unwrap(),
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(400));
    dashboard(&mut subs, "order #1 upsold (+60)");

    // Sanity: live values equal recomputation from the store.
    let pulled = app.find(&QuerySpec::filter("orders", open)).unwrap();
    let expect_sum: i64 =
        pulled.iter().map(|r| r.doc.as_ref().unwrap().get("total").unwrap().as_i64().unwrap()).sum();
    let (live_sum, live_count) = subs[1].1.aggregate().unwrap().clone();
    assert_eq!(live_count as usize, pulled.len());
    assert_eq!(live_sum, invalidb::Value::Int(expect_sum));
    println!("\nlive aggregates equal pull-side recomputation ✓");
    cluster.shutdown();
}
