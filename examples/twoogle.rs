//! Twoogle — "searching Twitter with MongoDB queries" (the authors' demo,
//! BTW'19 [75]): expressive *content-based* real-time queries over a stream
//! of short messages, exercising the query features that commercial
//! real-time databases lack (Table 2): `$text` search, `$regex`, `$or`
//! composition, array membership and nested fields.
//!
//! Run with: `cargo run --release --example twoogle`

use invalidb::broker::Broker;
use invalidb::client::{AppServer, AppServerConfig, ClientEvent, Subscription};
use invalidb::core::{Cluster, ClusterConfig};
use invalidb::store::Store;
use invalidb::{doc, Key, QuerySpec, Value};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let store = Arc::new(Store::new());
    let broker = Broker::new();
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(2, 2));
    let app = AppServer::start(
        "twoogle",
        Arc::clone(&store),
        broker.clone(),
        AppServerConfig::builder().build().expect("valid config"),
    );

    // Three live searches, each far beyond Firebase/Firestore expressiveness.
    let searches: Vec<(&str, QuerySpec)> = vec![
        (
            "full-text: rust -java",
            QuerySpec::filter("tweets", doc! { "$text" => doc! { "$search" => "rust -java" } }),
        ),
        (
            "regex on author + verified OR >1k followers",
            QuerySpec::filter(
                "tweets",
                doc! {
                    "author.handle" => doc! { "$regex" => "^db_", "$options" => "i" },
                    "$or" => vec![
                        Value::Object(doc! { "author.verified" => true }),
                        Value::Object(doc! { "author.followers" => doc! { "$gt" => 1_000i64 } }),
                    ],
                },
            ),
        ),
        (
            "hashtag membership + geo box over Hamburg",
            QuerySpec::filter(
                "tweets",
                doc! {
                    "tags" => "realtime",
                    "loc" => doc! { "$geoWithin" => doc! { "$box" => vec![
                        Value::from(vec![9.7f64, 53.3]),
                        Value::from(vec![10.3f64, 53.7]),
                    ]}},
                },
            ),
        ),
    ];

    let mut subs: Vec<(&str, Subscription)> = searches
        .iter()
        .map(|(name, spec)| {
            let mut s = app.subscribe(spec).expect("subscribe");
            s.events().timeout(Duration::from_secs(5)).next().expect("initial");
            (*name, s)
        })
        .collect();

    // The tweet firehose.
    let tweets = [
        (
            "t1",
            doc! {
                "text" => "Rust makes systems programming fun!",
                "author" => doc! { "handle" => "db_wolle", "verified" => true, "followers" => 500i64 },
                "tags" => vec!["rust", "systems"],
                "loc" => vec![9.99f64, 53.55],
            },
        ),
        (
            "t2",
            doc! {
                "text" => "Java and Rust walk into a bar",
                "author" => doc! { "handle" => "polyglot", "verified" => false, "followers" => 99i64 },
                "tags" => vec!["rust", "java"],
                "loc" => vec![13.4f64, 52.5],
            },
        ),
        (
            "t3",
            doc! {
                "text" => "Push-based realtime queries on pull-based databases",
                "author" => doc! { "handle" => "DB_felix", "verified" => false, "followers" => 5_000i64 },
                "tags" => vec!["realtime", "databases"],
                "loc" => vec![10.0f64, 53.5],
            },
        ),
        (
            "t4",
            doc! {
                "text" => "Nothing relevant here",
                "author" => doc! { "handle" => "rando", "verified" => false, "followers" => 3i64 },
                "tags" => vec!["misc"],
                "loc" => vec![0.0f64, 0.0],
            },
        ),
    ];
    for (id, tweet) in tweets {
        println!("tweet {id}: {}", tweet.get("text").unwrap());
        app.insert("tweets", Key::of(id), tweet).unwrap();
    }
    std::thread::sleep(Duration::from_millis(500));

    println!();
    let mut matched = Vec::new();
    for (name, sub) in subs.iter_mut() {
        let mut hits = Vec::new();
        while let Some(ev) = sub.events().non_blocking().next() {
            if let ClientEvent::Change(c) = ev {
                hits.push(c.item.key.to_string());
            }
        }
        println!("search [{name}] matched: {hits:?}");
        matched.push(hits);
    }
    // t1 matches search 0 (rust, no java); t2 has java -> excluded.
    assert_eq!(matched[0], vec![r#""t1""#]);
    // t1 (db_ + verified) and t3 (DB_ + >1k followers) match search 1.
    assert_eq!(matched[1].len(), 2);
    // t3 matches search 2 (tag + Hamburg box); t1 has the loc but no tag.
    assert_eq!(matched[2], vec![r#""t3""#]);
    println!("\nall content-based live searches matched exactly as expected ✓");
    cluster.shutdown();
}
