//! Admin-endpoint smoke runner for CI.
//!
//! Starts a full pipeline (store + broker + cluster + app server) with the
//! admin plane bound to a fixed address, keeps a light workload flowing,
//! and stays up for a bounded time so an external prober (`curl` in CI) can
//! scrape `/metrics` and `/healthz`.
//!
//! Run with: `cargo run --release --example admin_smoke [addr] [seconds]`
//! Defaults: `127.0.0.1:9464`, 30 seconds.

use invalidb::client::{AppServer, AppServerConfig};
use invalidb::core::{Cluster, ClusterConfig};
use invalidb::store::Store;
use invalidb::{doc, Key, QuerySpec};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:9464".into());
    let seconds: u64 = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(30);

    let store = Arc::new(Store::new());
    let broker = invalidb::broker::Broker::new();
    let registry = invalidb::MetricsRegistry::new();
    let cluster = Cluster::start(
        broker.clone(),
        ClusterConfig::builder(2, 2)
            .metrics(registry.clone())
            .admin_addr(addr)
            .build()
            .expect("valid config"),
    );
    let admin = cluster.admin_addr().expect("admin endpoint bound");
    let app = AppServer::start(
        "smoke",
        Arc::clone(&store),
        broker.clone(),
        AppServerConfig::builder().metrics(registry).build().expect("valid config"),
    );
    let _sub = app
        .subscribe(&QuerySpec::filter("events", doc! { "n" => doc! { "$gte" => 0i64 } }))
        .expect("subscribe");

    println!("admin endpoint ready at http://{admin}");
    let deadline = Instant::now() + Duration::from_secs(seconds);
    let mut i = 0i64;
    while Instant::now() < deadline {
        app.save("events", Key::of(i % 16), doc! { "n" => i }).ok();
        i += 1;
        std::thread::sleep(Duration::from_millis(50));
    }
    cluster.shutdown();
    println!("admin smoke finished after {seconds}s ({i} writes)");
}
