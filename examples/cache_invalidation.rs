//! Quaestor-style query caching (§5, §7, and the VLDB'17 companion paper):
//! InvaliDB's original namesake job — *invalidating* cached query results
//! the moment they become stale.
//!
//! A cache sits in front of the pull-based store. Every cached query is
//! also registered as an InvaliDB real-time subscription; any change
//! notification purges (or refreshes) the corresponding cache entry. Reads
//! are then served from the cache with strong freshness — no TTL guessing.
//!
//! Run with: `cargo run --release --example cache_invalidation`

use invalidb::broker::Broker;
use invalidb::client::{AppServer, AppServerConfig, ClientEvent, Subscription};
use invalidb::core::{Cluster, ClusterConfig};
use invalidb::store::Store;
use invalidb::{doc, Key, QuerySpec, ResultItem};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A query-result cache kept coherent by InvaliDB notifications.
struct QueryCache {
    app: Arc<AppServer>,
    entries: Mutex<HashMap<String, CacheEntry>>,
    hits: Mutex<u64>,
    misses: Mutex<u64>,
    invalidations: Mutex<u64>,
}

struct CacheEntry {
    result: Vec<ResultItem>,
    subscription: Subscription,
}

impl QueryCache {
    fn new(app: Arc<AppServer>) -> Self {
        Self {
            app,
            entries: Mutex::new(HashMap::new()),
            hits: Mutex::new(0),
            misses: Mutex::new(0),
            invalidations: Mutex::new(0),
        }
    }

    /// Serves a query from cache; on miss, executes it and registers a
    /// real-time subscription that will invalidate the entry.
    fn get(&self, spec: &QuerySpec) -> Vec<ResultItem> {
        let key = spec.to_string();
        let mut entries = self.entries.lock();
        // Drain invalidations first: any pending change notification makes
        // the entry stale (a production cache would do this asynchronously).
        if let Some(entry) = entries.get_mut(&key) {
            let mut stale = false;
            while let Some(ev) = entry.subscription.events().non_blocking().next() {
                if matches!(ev, ClientEvent::Change(_) | ClientEvent::MaintenanceError(_)) {
                    stale = true;
                }
            }
            if stale {
                *self.invalidations.lock() += 1;
                entries.remove(&key);
            }
        }
        if let Some(entry) = entries.get(&key) {
            *self.hits.lock() += 1;
            return entry.result.clone();
        }
        *self.misses.lock() += 1;
        let result = self.app.find(spec).expect("query");
        let mut subscription = self.app.subscribe(spec).expect("subscribe");
        // Consume the initial result so only *changes* invalidate.
        let _ = subscription.events().timeout(Duration::from_secs(5)).next();
        entries.insert(key, CacheEntry { result: result.clone(), subscription });
        result
    }

    fn stats(&self) -> (u64, u64, u64) {
        (*self.hits.lock(), *self.misses.lock(), *self.invalidations.lock())
    }
}

fn main() {
    let store = Arc::new(Store::new());
    let broker = Broker::new();
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(2, 2));
    let app = Arc::new(AppServer::start(
        "shop",
        Arc::clone(&store),
        broker.clone(),
        AppServerConfig::builder().build().expect("valid config"),
    ));
    let cache = QueryCache::new(Arc::clone(&app));

    for i in 0..20i64 {
        app.insert("products", Key::of(i), doc! { "name" => format!("item-{i}"), "stock" => i % 7 })
            .unwrap();
    }

    let in_stock = QuerySpec::filter("products", doc! { "stock" => doc! { "$gt" => 0i64 } });

    // Cold read, then a burst of cached reads.
    let n = cache.get(&in_stock).len();
    println!("cold read: {n} products in stock (cache miss)");
    for _ in 0..100 {
        cache.get(&in_stock);
    }
    let (hits, misses, inv) = cache.stats();
    println!("after 100 hot reads: {hits} hits, {misses} misses, {inv} invalidations");

    // A write changes the result: the next read must see fresh data.
    app.insert("products", Key::of(100i64), doc! { "name" => "fresh", "stock" => 5i64 }).unwrap();
    std::thread::sleep(Duration::from_millis(300)); // let the notification arrive
    let n2 = cache.get(&in_stock).len();
    println!("after insert: {n2} products (was {n}) — entry was invalidated, not served stale");
    assert_eq!(n2, n + 1);

    // Irrelevant writes do NOT invalidate (the cluster filters them out).
    for i in 0..50i64 {
        app.insert("orders", Key::of(i), doc! { "product" => i }).unwrap();
    }
    std::thread::sleep(Duration::from_millis(300));
    for _ in 0..50 {
        cache.get(&in_stock);
    }
    let (hits, misses, inv) = cache.stats();
    println!("after 50 unrelated writes + 50 reads: {hits} hits, {misses} misses, {inv} invalidations");
    assert_eq!(inv, 1, "only the relevant write invalidated");
    assert_eq!(misses, 2, "one cold miss + one post-invalidation refill");

    println!("query caching with push-based invalidation ✓");
    cluster.shutdown();
}
