//! `top` for an InvaliDB pipeline: a live terminal dashboard fed entirely
//! by the admin endpoint.
//!
//! Starts a store + broker + cluster + app server with the admin plane
//! bound to an ephemeral port, generates a continuous workload, and then —
//! like any external monitoring agent would — polls `/metrics` over plain
//! HTTP, parses the Prometheus text exposition back into a
//! [`MetricsSnapshot`](invalidb::MetricsSnapshot), and renders the headline
//! numbers. Nothing in the rendering path touches in-process state: what
//! you see is exactly what a scrape sees.
//!
//! Run with: `cargo run --release --example invalidb_top [iterations]`
//!
//! **Cluster mode**: point it at a *running* coordinator's admin endpoint
//! instead of self-hosting a pipeline —
//! `cargo run --release --example invalidb_top -- --cluster 127.0.0.1:9465 [iterations]`.
//! It then renders the federated view: membership and failover state from
//! `/cluster`, and per-worker labeled series from the coordinator's
//! federated `/metrics` (parsed with
//! [`from_prometheus_federated`](invalidb::obs::from_prometheus_federated)).

use invalidb::client::{AppServer, AppServerConfig};
use invalidb::core::{Cluster, ClusterConfig};
use invalidb::obs::{from_prometheus, from_prometheus_federated};
use invalidb::store::Store;
use invalidb::{doc, Key, QuerySpec};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Minimal HTTP/1.0 GET; returns (status code, body).
fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let status = response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    Ok((status, body))
}

/// Cluster mode: attach to a running coordinator's admin endpoint and
/// render the federated view — one line for the coordinator's own series,
/// one per worker from the `worker`-labeled series.
fn cluster_top(admin: SocketAddr, iterations: usize) {
    println!("invalidb_top --cluster: scraping http://{admin} ({iterations} frames)\n");
    for frame in 0..iterations {
        let (status, text) = http_get(admin, "/metrics").expect("scrape federated /metrics");
        assert_eq!(status, 200, "federated metrics endpoint must answer 200");
        let parts = from_prometheus_federated(&text).expect("parse federated exposition");
        let gauge =
            |snap: &invalidb::MetricsSnapshot, name: &str| snap.gauges.get(name).copied().unwrap_or(0);
        let counter =
            |snap: &invalidb::MetricsSnapshot, name: &str| snap.counters.get(name).copied().unwrap_or(0);
        if let Some(coord) = parts.get("") {
            println!(
                "frame {:>2}  epoch={} workers={} unassigned={} cached_subs={} last_mttr_ms={}",
                frame + 1,
                gauge(coord, "cluster.epoch"),
                gauge(coord, "cluster.workers_alive"),
                gauge(coord, "cluster.cells_unassigned"),
                gauge(coord, "cluster.cached_subscriptions"),
                gauge(coord, "cluster.failover_mttr_ms"),
            );
        }
        for (worker, snap) in &parts {
            if worker.is_empty() {
                continue;
            }
            println!(
                "          worker {worker}: epoch={} cells={} matched={} traced={} skew_clamped={}",
                gauge(snap, "worker.epoch"),
                gauge(snap, "worker.cells_hosted"),
                counter(snap, "matching.matched"),
                counter(snap, "ingress.traced_writes"),
                counter(snap, "trace.skew_clamped"),
            );
        }
        std::thread::sleep(Duration::from_millis(500));
    }
    let (status, members) = http_get(admin, "/cluster").expect("scrape /cluster");
    assert_eq!(status, 200);
    println!("\ncluster membership: {members}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--cluster") {
        let admin: SocketAddr = args
            .get(2)
            .expect("--cluster needs the coordinator admin address")
            .parse()
            .expect("parse admin address");
        let iterations = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(10);
        cluster_top(admin, iterations);
        return;
    }
    let iterations: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(10);

    // Pipeline under observation, with the admin plane on an ephemeral port.
    let store = Arc::new(Store::new());
    let broker = invalidb::broker::Broker::new();
    let registry = invalidb::MetricsRegistry::new();
    let cluster = Cluster::start(
        broker.clone(),
        ClusterConfig::builder(2, 2)
            .metrics(registry.clone())
            .admin_addr("127.0.0.1:0")
            .build()
            .expect("valid config"),
    );
    let admin = cluster.admin_addr().expect("admin endpoint bound");
    let app = AppServer::start(
        "top-demo",
        Arc::clone(&store),
        broker.clone(),
        AppServerConfig::builder().metrics(registry.clone()).build().expect("valid config"),
    );
    let _sub = app
        .subscribe(&QuerySpec::filter("sensors", doc! { "value" => doc! { "$gte" => 50i64 } }))
        .expect("subscribe");

    // Continuous workload on a background thread.
    let running = Arc::new(AtomicBool::new(true));
    let writer = {
        let running = Arc::clone(&running);
        std::thread::spawn(move || {
            let mut i = 0i64;
            while running.load(Ordering::Relaxed) {
                let value = (i * 37) % 100;
                app.save("sensors", Key::of(i % 32), doc! { "value" => value }).ok();
                i += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    println!("invalidb_top: scraping http://{admin}/metrics ({iterations} frames)\n");
    for frame in 0..iterations {
        std::thread::sleep(Duration::from_millis(500));
        let (status, text) = http_get(admin, "/metrics").expect("scrape /metrics");
        assert_eq!(status, 200, "metrics endpoint must answer 200");
        let snap = from_prometheus(&text).expect("parse exposition");
        let (health, _) = http_get(admin, "/healthz").expect("scrape /healthz");
        let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
        let gauge = |name: &str| snap.gauges.get(name).copied().unwrap_or(0);
        println!(
            "frame {:>2}  health={} ({})  matched={:<6} filtered={:<6} stale={:<4}",
            frame + 1,
            gauge("health.status"),
            if health == 200 { "200 ok" } else { "503" },
            counter("matching.matched"),
            counter("matching.filtered"),
            counter("matching.dropped_stale"),
        );
        println!(
            "          subs={} lag_us[0x0]={} queue[matching]={} delivered={}",
            gauge("appserver.active_subscriptions"),
            gauge("matching.0x0.ingest_lag_us"),
            gauge("cluster.matching.queue_depth"),
            counter("appserver.events_delivered"),
        );
        println!(
            "          index: indexed={} scanned={} eq_hits={} pred_hits={} shared_windows={}",
            gauge("matching.index.indexed_queries"),
            gauge("matching.index.scanned_queries"),
            counter("matching.index.eq_lane_hits"),
            counter("matching.index.pred_cache_hits"),
            gauge("matching.index.shared_windows"),
        );
    }

    // The heaviest continuous queries, straight from /queries.
    let (status, queries) = http_get(admin, "/queries").expect("scrape /queries");
    assert_eq!(status, 200);
    println!("\nslow-query log: {queries}");

    running.store(false, Ordering::Relaxed);
    writer.join().expect("writer thread");
    cluster.shutdown();
    println!("\ndone: every number above came over the wire, not from process memory");
}
