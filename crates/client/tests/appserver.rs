//! Application-server integration tests against a real cluster.

use invalidb_broker::Broker;
use invalidb_client::{AppServer, AppServerConfig, ClientEvent};
use invalidb_common::{doc, Key, MatchType, QuerySpec, SortDirection};
use invalidb_core::{Cluster, ClusterConfig};
use invalidb_store::{Store, UpdateSpec};
use std::sync::Arc;
use std::time::Duration;

fn setup(qp: usize, wp: usize) -> (Broker, Arc<Store>, Cluster, AppServer) {
    let broker = Broker::new();
    let store = Arc::new(Store::new());
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(qp, wp));
    let app = AppServer::start("app", Arc::clone(&store), broker.clone(), AppServerConfig::default());
    (broker, store, cluster, app)
}

fn wait_for<T>(mut f: impl FnMut() -> Option<T>, timeout: Duration) -> Option<T> {
    let deadline = std::time::Instant::now() + timeout;
    while std::time::Instant::now() < deadline {
        if let Some(v) = f() {
            return Some(v);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    None
}

#[test]
fn push_and_pull_agree() {
    let (_broker, _store, cluster, app) = setup(2, 2);
    // Pre-existing data.
    for i in 0..10i64 {
        app.insert("nums", Key::of(i), doc! { "n" => i }).unwrap();
    }
    let spec = QuerySpec::filter("nums", doc! { "n" => doc! { "$gte" => 5i64 } });
    let mut sub = app.subscribe(&spec).unwrap();
    match sub.events().timeout(Duration::from_secs(5)).next().expect("initial") {
        ClientEvent::Initial(items) => assert_eq!(items.len(), 5),
        other => panic!("expected initial, got {other:?}"),
    }
    // Pull result matches push initial result.
    let pulled = app.find(&spec).unwrap();
    assert_eq!(pulled.len(), 5);
    assert_eq!(sub.result().len(), 5);

    // A write through the app server pushes an incremental update.
    app.insert("nums", Key::of(100i64), doc! { "n" => 100i64 }).unwrap();
    let ev = sub.events().timeout(Duration::from_secs(5)).next().expect("push update");
    match ev {
        ClientEvent::Change(c) => {
            assert_eq!(c.match_type, MatchType::Add);
            assert_eq!(c.item.key, Key::of(100i64));
        }
        other => panic!("expected change, got {other:?}"),
    }
    assert_eq!(sub.result().len(), 6);
    // Pull agrees again.
    assert_eq!(app.find(&spec).unwrap().len(), 6);
    cluster.shutdown();
}

#[test]
fn sorted_subscription_maintains_order() {
    let (_broker, _store, cluster, app) = setup(1, 2);
    for (id, score) in [("a", 10i64), ("b", 30), ("c", 20)] {
        app.insert("players", Key::of(id), doc! { "score" => score }).unwrap();
    }
    let spec =
        QuerySpec::filter("players", doc! {}).sorted_by("score", SortDirection::Desc).with_limit(2);
    let mut sub = app.subscribe(&spec).unwrap();
    sub.events().timeout(Duration::from_secs(5)).next().expect("initial");
    assert_eq!(sub.result().keys(), vec![Key::of("b"), Key::of("c")]);

    // "a" overtakes everyone.
    app.update(
        "players",
        Key::of("a"),
        &UpdateSpec::from_document(&doc! { "$set" => doc! { "score" => 99i64 } }).unwrap(),
    )
    .unwrap();
    wait_for(
        || {
            while sub.events().non_blocking().next().is_some() {}
            (sub.result().keys() == vec![Key::of("a"), Key::of("b")]).then_some(())
        },
        Duration::from_secs(5),
    )
    .expect("a enters at the top");
    cluster.shutdown();
}

#[test]
fn renewal_after_maintenance_error_is_automatic_and_rate_limited() {
    let (_broker, _store, cluster, app) = setup(1, 1);
    for i in 0..10i64 {
        app.insert("t", Key::of(i), doc! { "n" => i }).unwrap();
    }
    // slack defaults to 3; limit 2 → window of 5.
    let spec = QuerySpec::filter("t", doc! {}).sorted_by("n", SortDirection::Asc).with_limit(2);
    let mut sub = app.subscribe(&spec).unwrap();
    sub.events().timeout(Duration::from_secs(5)).next().expect("initial");
    assert_eq!(sub.result().keys(), vec![Key::of(0i64), Key::of(1i64)]);

    // Delete enough leading items to exhaust the slack and force a renewal.
    for i in 0..5i64 {
        app.delete("t", Key::of(i)).unwrap();
    }
    // Eventually the result converges to [5, 6] — via incremental updates,
    // one maintenance error, and an automatic renewal.
    let mut saw_error = false;
    wait_for(
        || {
            while let Some(ev) = sub.events().non_blocking().next() {
                if matches!(ev, ClientEvent::MaintenanceError(_)) {
                    saw_error = true;
                }
            }
            (sub.result().keys() == vec![Key::of(5i64), Key::of(6i64)]).then_some(())
        },
        Duration::from_secs(10),
    )
    .unwrap_or_else(|| panic!("converged result, got {:?}", sub.result().keys()));
    assert!(saw_error, "client observed the renewal request");
    assert!(app.renewals_performed() >= 1);
    cluster.shutdown();
}

#[test]
fn heartbeat_loss_terminates_subscriptions() {
    let broker = Broker::new();
    let store = Arc::new(Store::new());
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(1, 1));
    let config =
        AppServerConfig::builder().heartbeat_timeout(Duration::from_millis(300)).build().unwrap();
    let app = AppServer::start("app", Arc::clone(&store), broker.clone(), config);

    let spec = QuerySpec::filter("t", doc! {});
    let mut sub = app.subscribe(&spec).unwrap();
    sub.events().timeout(Duration::from_secs(5)).next().expect("initial");

    // Kill the cluster: heartbeats stop; the app server must signal loss.
    cluster.shutdown();
    let ev = wait_for(
        || match sub.events().timeout(Duration::from_millis(100)).next() {
            Some(ClientEvent::ConnectionLost) => Some(()),
            _ => None,
        },
        Duration::from_secs(10),
    );
    assert!(ev.is_some(), "subscription terminated with connection error");
    // The pull path (store) is completely unaffected — isolated failure
    // domain (§5).
    app.insert("t", Key::of(1i64), doc! { "x" => 1i64 }).unwrap();
    assert_eq!(app.find(&spec).unwrap().len(), 1);
}

#[test]
fn unsubscribe_stops_events() {
    let (_broker, _store, cluster, app) = setup(1, 1);
    let spec = QuerySpec::filter("t", doc! {});
    let mut sub = app.subscribe(&spec).unwrap();
    sub.events().timeout(Duration::from_secs(5)).next().expect("initial");
    app.unsubscribe(&sub);
    std::thread::sleep(Duration::from_millis(200));
    app.insert("t", Key::of(1i64), doc! { "x" => 1i64 }).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    assert!(sub.events().non_blocking().next().is_none(), "no events after unsubscribe");
    cluster.shutdown();
}

#[test]
fn two_app_servers_share_one_cluster() {
    // Multi-tenancy: one cluster, two applications, isolated data.
    let broker = Broker::new();
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(2, 2));
    let store_a = Arc::new(Store::new());
    let store_b = Arc::new(Store::new());
    let app_a =
        AppServer::start("tenant-a", Arc::clone(&store_a), broker.clone(), AppServerConfig::default());
    let app_b =
        AppServer::start("tenant-b", Arc::clone(&store_b), broker.clone(), AppServerConfig::default());

    let spec = QuerySpec::filter("t", doc! {});
    let mut sub_a = app_a.subscribe(&spec).unwrap();
    let mut sub_b = app_b.subscribe(&spec).unwrap();
    sub_a.events().timeout(Duration::from_secs(5)).next().expect("initial a");
    sub_b.events().timeout(Duration::from_secs(5)).next().expect("initial b");

    app_a.insert("t", Key::of(1i64), doc! { "from" => "a" }).unwrap();
    match sub_a.events().timeout(Duration::from_secs(5)).next().expect("a notified") {
        ClientEvent::Change(c) => assert_eq!(c.match_type, MatchType::Add),
        other => panic!("unexpected {other:?}"),
    }
    std::thread::sleep(Duration::from_millis(300));
    assert!(sub_b.events().non_blocking().next().is_none(), "tenant-b unaffected");
    cluster.shutdown();
}

#[test]
fn slack_grows_adaptively_with_renewals() {
    let broker = Broker::new();
    let store = Arc::new(Store::new());
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(1, 1));
    let config = AppServerConfig::builder().slack(1).max_slack(8).build().unwrap();
    let app = AppServer::start("adapt", Arc::clone(&store), broker.clone(), config);

    for i in 0..40i64 {
        app.insert("t", Key::of(i), doc! { "n" => i }).unwrap();
    }
    let spec = QuerySpec::filter("t", doc! {}).sorted_by("n", SortDirection::Asc).with_limit(2);
    let mut sub = app.subscribe(&spec).unwrap();
    sub.events().timeout(Duration::from_secs(5)).next().expect("initial");
    assert_eq!(app.current_slack(&sub), Some(1));

    // Delete-heavy churn forces renewals; each renewal doubles the slack.
    for i in 0..30i64 {
        app.delete("t", Key::of(i)).unwrap();
    }
    wait_for(
        || {
            while sub.events().non_blocking().next().is_some() {}
            (sub.result().keys() == vec![Key::of(30i64), Key::of(31i64)]).then_some(())
        },
        Duration::from_secs(10),
    )
    .unwrap_or_else(|| panic!("converged, got {:?}", sub.result().keys()));
    let renewals = app.renewals_performed();
    assert!(renewals >= 1, "at least one renewal");
    let slack = app.current_slack(&sub).unwrap();
    assert!(slack > 1, "slack grew: {slack}");
    assert!(slack <= 8, "slack capped: {slack}");
    cluster.shutdown();
}

#[test]
fn aggregate_queries_end_to_end() {
    use invalidb_common::{AggregateOp, Value};
    let (_broker, _store, cluster, app) = setup(2, 2);
    for (id, price) in [(1i64, 10i64), (2, 30), (3, 20)] {
        app.insert("orders", Key::of(id), doc! { "price" => price, "open" => true }).unwrap();
    }
    // Live SUM(price) over open orders.
    let spec =
        QuerySpec::filter("orders", doc! { "open" => true }).aggregated(AggregateOp::Sum, Some("price"));
    let mut sub = app.subscribe(&spec).unwrap();
    match sub.events().timeout(Duration::from_secs(5)).next().expect("initial aggregate") {
        ClientEvent::Aggregate { value, count } => {
            assert_eq!(value, Value::Int(60));
            assert_eq!(count, 3);
        }
        other => panic!("expected aggregate, got {other:?}"),
    }
    // New matching order raises the sum.
    app.insert("orders", Key::of(4i64), doc! { "price" => 40i64, "open" => true }).unwrap();
    match sub.events().timeout(Duration::from_secs(5)).next().expect("sum update") {
        ClientEvent::Aggregate { value, count } => {
            assert_eq!(value, Value::Int(100));
            assert_eq!(count, 4);
        }
        other => panic!("unexpected {other:?}"),
    }
    // Closing an order (update-out of the filter) lowers it.
    app.update(
        "orders",
        Key::of(2i64),
        &UpdateSpec::from_document(&doc! { "$set" => doc! { "open" => false } }).unwrap(),
    )
    .unwrap();
    match sub.events().timeout(Duration::from_secs(5)).next().expect("sum drop") {
        ClientEvent::Aggregate { value, count } => {
            assert_eq!(value, Value::Int(70));
            assert_eq!(count, 3);
        }
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(sub.aggregate(), Some(&(Value::Int(70), 3)));

    // Irrelevant writes do not notify.
    app.insert("other", Key::of(1i64), doc! { "x" => 1i64 }).unwrap();
    std::thread::sleep(Duration::from_millis(300));
    assert!(sub.events().non_blocking().next().is_none());

    // Combining aggregate with sort is rejected at subscribe.
    let bad = QuerySpec::filter("orders", doc! {})
        .sorted_by("price", SortDirection::Asc)
        .aggregated(AggregateOp::Count, None);
    assert!(app.subscribe(&bad).is_err());
    cluster.shutdown();
}

/// The pre-`events()` receive surface must keep working for existing
/// applications: deprecated, not removed.
#[test]
#[allow(deprecated)]
fn deprecated_receive_surface_still_compiles_and_works() {
    let (_broker, _store, cluster, app) = setup(1, 1);
    let spec = QuerySpec::filter("t", doc! {});
    let mut sub = app.subscribe(&spec).unwrap();
    assert!(matches!(sub.next_event(Duration::from_secs(5)), Some(ClientEvent::Initial(_))));
    app.insert("t", Key::of(1i64), doc! { "x" => 1i64 }).unwrap();
    let ev = wait_for(|| sub.try_next_event(), Duration::from_secs(5)).expect("push update");
    assert!(matches!(ev, ClientEvent::Change(_)));
    let batch = sub.next_events_coalesced(Duration::from_millis(50));
    assert!(batch.is_empty(), "no further events: {batch:?}");
    cluster.shutdown();
}

#[test]
fn coalesced_receive_collapses_hot_key_churn() {
    let (_broker, _store, cluster, app) = setup(1, 1);
    let spec = QuerySpec::filter("hot", doc! { "n" => doc! { "$gte" => 0i64 } });
    let mut sub = app.subscribe(&spec).unwrap();
    sub.events().timeout(Duration::from_secs(5)).next().expect("initial");

    // A hot key updated 20 times plus one cold key.
    app.insert("hot", Key::of("hk"), doc! { "n" => 0i64 }).unwrap();
    for i in 1..20i64 {
        app.save("hot", Key::of("hk"), doc! { "n" => i }).unwrap();
    }
    app.insert("hot", Key::of("cold"), doc! { "n" => 100i64 }).unwrap();
    std::thread::sleep(Duration::from_millis(400));

    let batch: Vec<ClientEvent> = sub.events().coalesced(Duration::from_millis(300)).collect();
    // 21 raw notifications collapse to two net events (hk add, cold add).
    assert_eq!(batch.len(), 2, "collapsed batch: {batch:?}");
    let hot = batch
        .iter()
        .find_map(|e| match e {
            ClientEvent::Change(c) if c.item.key == Key::of("hk") => Some(c),
            _ => None,
        })
        .expect("hot key event");
    assert_eq!(hot.match_type, MatchType::Add);
    assert_eq!(
        hot.item.doc.as_ref().unwrap().get("n"),
        Some(&invalidb_common::Value::Int(19)),
        "net effect carries the final content"
    );
    // The local result was maintained from the *uncollapsed* stream.
    assert_eq!(sub.result().len(), 2);
    cluster.shutdown();
}
