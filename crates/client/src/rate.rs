//! Token-bucket rate limiter for query renewals (§5.2's poll frequency
//! rate limit: "to make the query load inflicted upon the underlying
//! database both predictable and configurable").

use parking_lot::Mutex;
use std::time::{Duration, Instant};

struct State {
    tokens: f64,
    last_refill: Instant,
}

/// A thread-safe token bucket.
pub struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    state: Mutex<State>,
}

impl TokenBucket {
    /// Bucket holding at most `capacity` tokens, refilled at
    /// `refill_per_sec` tokens per second. Starts full.
    pub fn new(capacity: u32, refill_per_sec: f64) -> Self {
        assert!(refill_per_sec >= 0.0);
        Self {
            capacity: capacity as f64,
            refill_per_sec,
            state: Mutex::new(State { tokens: capacity as f64, last_refill: Instant::now() }),
        }
    }

    fn refill(&self, state: &mut State) {
        let now = Instant::now();
        let elapsed = now.duration_since(state.last_refill).as_secs_f64();
        state.tokens = (state.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        state.last_refill = now;
    }

    /// Takes one token if available.
    pub fn try_take(&self) -> bool {
        let mut state = self.state.lock();
        self.refill(&mut state);
        if state.tokens >= 1.0 {
            state.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// How long until a token will be available (zero if one is ready).
    pub fn time_until_available(&self) -> Duration {
        let mut state = self.state.lock();
        self.refill(&mut state);
        if state.tokens >= 1.0 {
            Duration::ZERO
        } else if self.refill_per_sec == 0.0 {
            Duration::MAX
        } else {
            Duration::from_secs_f64((1.0 - state.tokens) / self.refill_per_sec)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_throttle() {
        let bucket = TokenBucket::new(3, 1000.0);
        assert!(bucket.try_take());
        assert!(bucket.try_take());
        assert!(bucket.try_take());
        // Capacity exhausted; at 1000/s a token returns within ~1ms.
        let waited = bucket.time_until_available();
        assert!(waited <= Duration::from_millis(2));
        std::thread::sleep(Duration::from_millis(3));
        assert!(bucket.try_take());
    }

    #[test]
    fn zero_refill_never_recovers() {
        let bucket = TokenBucket::new(1, 0.0);
        assert!(bucket.try_take());
        assert!(!bucket.try_take());
        assert_eq!(bucket.time_until_available(), Duration::MAX);
    }

    #[test]
    fn refill_caps_at_capacity() {
        // Slow refill (10/s): the sleep would overfill an uncapped bucket,
        // and the instants between takes refill far less than one token —
        // keeps the assertion robust under scheduler noise.
        let bucket = TokenBucket::new(2, 10.0);
        std::thread::sleep(Duration::from_millis(5));
        assert!(bucket.try_take());
        assert!(bucket.try_take());
        assert!(!bucket.try_take(), "burst larger than capacity rejected");
    }
}
