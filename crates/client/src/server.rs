//! The application server.

use crate::rate::TokenBucket;
use crossbeam::channel::{unbounded, Receiver, Sender};
use invalidb_broker::{notify_topic, BrokerHandle, CLUSTER_TOPIC};
use invalidb_common::{
    AfterImage, ClusterMessage, Document, Key, Notification, NotificationKind, QueryHash, QuerySpec,
    ResultItem, SubscriptionId, SubscriptionRequest, TenantId,
};
use invalidb_query::normalize_spec;
use invalidb_store::{Store, StoreError, UpdateSpec, WriteResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Application-server tunables.
#[derive(Debug, Clone)]
pub struct AppServerConfig {
    /// Slack added to sorted bootstrap queries (§5.2).
    pub default_slack: u64,
    /// Subscription TTL granted to the cluster.
    pub ttl: Duration,
    /// How often TTL extensions are sent.
    pub ttl_refresh_interval: Duration,
    /// Cluster silence tolerated before subscriptions are terminated with a
    /// connection error (heartbeat supervision).
    pub heartbeat_timeout: Duration,
    /// Token-bucket capacity for query renewals (burst).
    pub renewal_burst: u32,
    /// Token-bucket refill (renewals per second) — the poll frequency rate
    /// limit of §5.2.
    pub renewals_per_sec: f64,
    /// Upper bound for adaptive slack growth (§5.2 fn. 5: "using a higher
    /// slack value to increase robustness against deletes" on re-execution).
    /// Each renewal doubles the subscription's slack up to this cap.
    pub max_slack: u64,
}

impl Default for AppServerConfig {
    fn default() -> Self {
        Self {
            default_slack: 3,
            ttl: Duration::from_secs(60),
            ttl_refresh_interval: Duration::from_secs(10),
            heartbeat_timeout: Duration::from_secs(5),
            renewal_burst: 16,
            renewals_per_sec: 20.0,
            max_slack: 64,
        }
    }
}

/// Event delivered to a subscribed client.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientEvent {
    /// The initial query result (always the first event).
    Initial(Vec<ResultItem>),
    /// An incremental result change.
    Change(invalidb_common::ChangeItem),
    /// The sorted query hit a maintenance error; the app server is renewing
    /// it (rate-limited). The local result stays valid; incremental deltas
    /// follow after renewal.
    MaintenanceError(String),
    /// Cluster heartbeats stopped: the subscription is terminated. Clients
    /// may resubscribe or fall back to pull-based queries.
    ConnectionLost,
    /// Updated value of a real-time aggregate query (extension, §8.1).
    Aggregate {
        /// Current aggregate value.
        value: invalidb_common::Value,
        /// Number of currently matching records.
        count: u64,
    },
}

struct SubEntry {
    spec: QuerySpec,
    rewritten: QuerySpec,
    /// Memoized hash of the normalized query (§5.1): attached to every
    /// follow-up request because it cannot be recomputed from those alone.
    query_hash: QueryHash,
    slack: u64,
    tx: Sender<ClientEvent>,
    needs_renewal: bool,
}

struct Shared {
    subs: Mutex<HashMap<SubscriptionId, SubEntry>>,
    last_heartbeat: Mutex<Instant>,
    shutdown: AtomicBool,
    renewals_performed: AtomicU64,
    connection_lost: AtomicBool,
}

/// An application server for one tenant.
///
/// Owns the connection to the primary [`Store`] and to the event layer.
/// Multi-tenancy: run one `AppServer` per application — a single InvaliDB
/// cluster serves them all (§5).
pub struct AppServer {
    tenant: TenantId,
    store: Arc<Store>,
    broker: BrokerHandle,
    config: AppServerConfig,
    shared: Arc<Shared>,
    renewal_bucket: Arc<TokenBucket>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl AppServer {
    /// Starts an application server attached to an event layer — an
    /// in-process [`invalidb_broker::Broker`], a [`BrokerHandle`], or any
    /// other [`invalidb_broker::EventLayer`] implementation (e.g.
    /// `invalidb-net`'s TCP-backed `RemoteBroker`).
    pub fn start(
        tenant: impl Into<TenantId>,
        store: Arc<Store>,
        broker: impl Into<BrokerHandle>,
        config: AppServerConfig,
    ) -> Self {
        let tenant = tenant.into();
        let broker: BrokerHandle = broker.into();
        let shared = Arc::new(Shared {
            subs: Mutex::new(HashMap::new()),
            last_heartbeat: Mutex::new(Instant::now()),
            shutdown: AtomicBool::new(false),
            renewals_performed: AtomicU64::new(0),
            connection_lost: AtomicBool::new(false),
        });
        let renewal_bucket = Arc::new(TokenBucket::new(config.renewal_burst, config.renewals_per_sec));
        let mut server = Self {
            tenant: tenant.clone(),
            store,
            broker,
            config,
            shared,
            renewal_bucket,
            threads: Vec::new(),
        };
        server.spawn_dispatcher();
        server.spawn_keeper();
        server
    }

    /// The tenant this server belongs to.
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }

    /// The primary store (for direct pull access in tests/tools).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Number of renewals performed so far (observability).
    pub fn renewals_performed(&self) -> u64 {
        self.shared.renewals_performed.load(Ordering::Relaxed)
    }

    /// Current slack of a subscription (grows adaptively with renewals).
    pub fn current_slack(&self, subscription: &Subscription) -> Option<u64> {
        self.shared.subs.lock().get(&subscription.id()).map(|e| e.slack)
    }

    // ------------------------------------------------------------------
    // Pull-based interface
    // ------------------------------------------------------------------

    /// Executes a pull-based query.
    pub fn find(&self, spec: &QuerySpec) -> Result<Vec<ResultItem>, StoreError> {
        self.store.execute(spec)
    }

    // ------------------------------------------------------------------
    // Write interface (after-images forwarded to the cluster, §5.4)
    // ------------------------------------------------------------------

    /// Inserts a record.
    pub fn insert(&self, collection: &str, key: Key, doc: Document) -> Result<WriteResult, StoreError> {
        let w = self.store.insert(collection, key, doc)?;
        self.forward(collection, &w);
        Ok(w)
    }

    /// Inserts or replaces a record.
    pub fn save(&self, collection: &str, key: Key, doc: Document) -> Result<WriteResult, StoreError> {
        let w = self.store.save(collection, key, doc)?;
        self.forward(collection, &w);
        Ok(w)
    }

    /// Applies an update to a record.
    pub fn update(
        &self,
        collection: &str,
        key: Key,
        update: &UpdateSpec,
    ) -> Result<WriteResult, StoreError> {
        let w = self.store.update(collection, key, update)?;
        self.forward(collection, &w);
        Ok(w)
    }

    /// Deletes a record.
    pub fn delete(&self, collection: &str, key: Key) -> Result<WriteResult, StoreError> {
        let w = self.store.delete(collection, key)?;
        self.forward(collection, &w);
        Ok(w)
    }

    fn forward(&self, collection: &str, w: &WriteResult) {
        let msg = ClusterMessage::Write(AfterImage {
            tenant: self.tenant.clone(),
            collection: collection.to_owned(),
            key: w.key.clone(),
            version: w.version,
            doc: w.doc.clone(),
            written_at: now_micros(),
        });
        self.publish(&msg);
    }

    fn publish(&self, msg: &ClusterMessage) {
        self.broker.publish(CLUSTER_TOPIC, invalidb_json::document_to_payload(&msg.to_document()));
    }

    // ------------------------------------------------------------------
    // Push-based interface
    // ------------------------------------------------------------------

    /// Subscribes to a real-time query. The first event is the initial
    /// result; every subsequent event is an incremental update.
    pub fn subscribe(&self, spec: &QuerySpec) -> Result<Subscription, StoreError> {
        if spec.needs_aggregation_stage() && spec.needs_sorting_stage() {
            return Err(StoreError::BadQuery(
                "aggregate queries cannot be combined with sort/limit/offset".into(),
            ));
        }
        let id = SubscriptionId::generate();
        // Hash from normalized query attributes, memoized for the
        // subscription lifetime (§5.1).
        let normalized = normalize_spec(spec);
        let query_hash = normalized.stable_hash();
        let slack = if spec.needs_sorting_stage() { self.config.default_slack } else { 0 };
        let mut rewritten = spec.rewrite_for_bootstrap(slack);
        // Aggregate queries bootstrap from the plain matching set: the
        // aggregation stage computes the value; the store just supplies the
        // records.
        rewritten.aggregate = None;
        let initial = self.store.execute(&rewritten)?;
        let (tx, rx) = unbounded();
        self.shared.subs.lock().insert(
            id,
            SubEntry {
                spec: spec.clone(),
                rewritten: rewritten.clone(),
                query_hash,
                slack,
                tx,
                needs_renewal: false,
            },
        );
        self.publish(&ClusterMessage::Subscribe(SubscriptionRequest {
            tenant: self.tenant.clone(),
            subscription: id,
            spec: spec.clone(),
            query_hash,
            initial,
            slack,
            ttl_micros: self.config.ttl.as_micros() as u64,
        }));
        Ok(Subscription { id, rx, result: crate::LiveResult::new(), latest_aggregate: None })
    }

    /// Cancels a subscription so it stops consuming cluster resources.
    pub fn unsubscribe(&self, subscription: &Subscription) {
        if let Some(entry) = self.shared.subs.lock().remove(&subscription.id) {
            self.publish(&ClusterMessage::Unsubscribe {
                tenant: self.tenant.clone(),
                subscription: subscription.id,
                query_hash: entry.query_hash,
            });
        }
    }

    // ------------------------------------------------------------------
    // Background machinery
    // ------------------------------------------------------------------

    /// Dispatcher: receives notifications/heartbeats from the event layer
    /// and routes them to subscription channels; flags renewals.
    fn spawn_dispatcher(&mut self) {
        let sub = self.broker.subscribe(&notify_topic(&self.tenant.0));
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name(format!("appserver-dispatch-{}", self.tenant))
            .spawn(move || {
                while !shared.shutdown.load(Ordering::Relaxed) {
                    let payload = match sub.recv_timeout(Duration::from_millis(50)) {
                        Some(p) => p,
                        None => continue,
                    };
                    let d = match invalidb_json::payload_to_document(&payload) {
                        Ok(d) => d,
                        Err(_) => continue,
                    };
                    if d.get("type").and_then(|v| v.as_str()) == Some("heartbeat") {
                        *shared.last_heartbeat.lock() = Instant::now();
                        shared.connection_lost.store(false, Ordering::Relaxed);
                        continue;
                    }
                    let n = match Notification::from_document(&d) {
                        Ok(n) => n,
                        Err(_) => continue,
                    };
                    // Any cluster traffic proves liveness.
                    *shared.last_heartbeat.lock() = Instant::now();
                    let mut subs = shared.subs.lock();
                    if let Some(entry) = subs.get_mut(&n.subscription) {
                        let event = match &n.kind {
                            NotificationKind::InitialResult { items } => {
                                ClientEvent::Initial(items.clone())
                            }
                            NotificationKind::Change(c) => ClientEvent::Change(c.clone()),
                            NotificationKind::Error(e) => {
                                entry.needs_renewal = true;
                                ClientEvent::MaintenanceError(e.reason.clone())
                            }
                            NotificationKind::Aggregate { value, count } => {
                                ClientEvent::Aggregate { value: value.clone(), count: *count }
                            }
                        };
                        let _ = entry.tx.send(event);
                    }
                }
            })
            .expect("spawn dispatcher");
        self.threads.push(handle);
    }

    /// Keeper: TTL extensions, heartbeat supervision, rate-limited renewals.
    fn spawn_keeper(&mut self) {
        let shared = Arc::clone(&self.shared);
        let store = Arc::clone(&self.store);
        let broker = self.broker.clone();
        let tenant = self.tenant.clone();
        let config = self.config.clone();
        let bucket = Arc::clone(&self.renewal_bucket);
        let handle = std::thread::Builder::new()
            .name(format!("appserver-keeper-{}", self.tenant))
            .spawn(move || {
                let mut last_ttl_refresh = Instant::now();
                while !shared.shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(20));
                    // 1. Renewals (poll-frequency rate limited, §5.2).
                    let pending: Vec<SubscriptionId> = shared
                        .subs
                        .lock()
                        .iter()
                        .filter(|(_, e)| e.needs_renewal)
                        .map(|(id, _)| *id)
                        .collect();
                    for id in pending {
                        if !bucket.try_take() {
                            break; // retry on the next keeper cycle
                        }
                        let request = {
                            let mut subs = shared.subs.lock();
                            match subs.get_mut(&id) {
                                Some(entry) => {
                                    entry.needs_renewal = false;
                                    // Adaptive slack (§5.2 fn. 5): every
                                    // renewal doubles the slack (capped), so
                                    // delete-heavy queries stop thrashing
                                    // the database with re-executions.
                                    entry.slack = (entry.slack * 2).clamp(1, config.max_slack);
                                    entry.rewritten = entry.spec.rewrite_for_bootstrap(entry.slack);
                                    Some((
                                        entry.spec.clone(),
                                        entry.rewritten.clone(),
                                        entry.query_hash,
                                        entry.slack,
                                    ))
                                }
                                None => None,
                            }
                        };
                        if let Some((spec, rewritten, query_hash, slack)) = request {
                            if let Ok(initial) = store.execute(&rewritten) {
                                shared.renewals_performed.fetch_add(1, Ordering::Relaxed);
                                let msg = ClusterMessage::Subscribe(SubscriptionRequest {
                                    tenant: tenant.clone(),
                                    subscription: id,
                                    spec,
                                    query_hash,
                                    initial,
                                    slack,
                                    ttl_micros: config.ttl.as_micros() as u64,
                                });
                                broker.publish(
                                    CLUSTER_TOPIC,
                                    invalidb_json::document_to_payload(&msg.to_document()),
                                );
                            }
                        }
                    }
                    // 2. TTL extensions.
                    if last_ttl_refresh.elapsed() >= config.ttl_refresh_interval {
                        last_ttl_refresh = Instant::now();
                        let subs = shared.subs.lock();
                        for (id, entry) in subs.iter() {
                            let msg = ClusterMessage::ExtendTtl {
                                tenant: tenant.clone(),
                                subscription: *id,
                                query_hash: entry.query_hash,
                                ttl_micros: config.ttl.as_micros() as u64,
                            };
                            broker.publish(
                                CLUSTER_TOPIC,
                                invalidb_json::document_to_payload(&msg.to_document()),
                            );
                        }
                    }
                    // 3. Heartbeat supervision: terminate on cluster silence.
                    let silent_for = shared.last_heartbeat.lock().elapsed();
                    if silent_for > config.heartbeat_timeout
                        && !shared.connection_lost.swap(true, Ordering::Relaxed)
                    {
                        let subs = shared.subs.lock();
                        for entry in subs.values() {
                            let _ = entry.tx.send(ClientEvent::ConnectionLost);
                        }
                    }
                }
            })
            .expect("spawn keeper");
        self.threads.push(handle);
    }
}

impl Drop for AppServer {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// A live real-time query held by a client.
pub struct Subscription {
    id: SubscriptionId,
    rx: Receiver<ClientEvent>,
    result: crate::LiveResult,
    latest_aggregate: Option<(invalidb_common::Value, u64)>,
}

impl Subscription {
    /// The unique subscription id (client-generated, §5 fn. 2).
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// Waits for the next event, applying it to the local result.
    pub fn next_event(&mut self, timeout: Duration) -> Option<ClientEvent> {
        let event = self.rx.recv_timeout(timeout).ok()?;
        self.apply(&event);
        Some(event)
    }

    /// Non-blocking variant of [`Subscription::next_event`].
    pub fn try_next_event(&mut self) -> Option<ClientEvent> {
        let event = self.rx.try_recv().ok()?;
        self.apply(&event);
        Some(event)
    }

    fn apply(&mut self, event: &ClientEvent) {
        use invalidb_common::{MaintenanceError, NotificationKind, TenantId};
        let kind = match event {
            ClientEvent::Initial(items) => NotificationKind::InitialResult { items: items.clone() },
            ClientEvent::Change(c) => NotificationKind::Change(c.clone()),
            ClientEvent::MaintenanceError(reason) => {
                NotificationKind::Error(MaintenanceError { reason: reason.clone() })
            }
            ClientEvent::ConnectionLost => return,
            ClientEvent::Aggregate { value, count } => {
                self.latest_aggregate = Some((value.clone(), *count));
                return;
            }
        };
        self.result.apply(&Notification {
            tenant: TenantId::new(""),
            subscription: self.id,
            kind,
            caused_by_write_at: 0,
        });
    }

    /// The locally maintained result.
    pub fn result(&self) -> &crate::LiveResult {
        &self.result
    }

    /// Latest value of an aggregate subscription, as `(value, match count)`.
    pub fn aggregate(&self) -> Option<&(invalidb_common::Value, u64)> {
        self.latest_aggregate.as_ref()
    }

    /// Batched receive with notification coalescing (extension, §8.1):
    /// waits up to `window` for a first event, keeps collecting until the
    /// window closes, applies everything to the local result, and returns
    /// the batch collapsed to its net effect (hot-key churn disappears).
    pub fn next_events_coalesced(&mut self, window: Duration) -> Vec<ClientEvent> {
        let first = match self.rx.recv_timeout(window) {
            Ok(ev) => ev,
            Err(_) => return Vec::new(),
        };
        self.apply(&first);
        let mut batch = vec![first];
        let deadline = Instant::now() + window;
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match self.rx.recv_timeout(deadline - now) {
                Ok(ev) => {
                    self.apply(&ev);
                    batch.push(ev);
                }
                Err(_) => break,
            }
        }
        crate::coalesce::collapse(batch)
    }
}

fn now_micros() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0)
}
