//! The application server.

use crate::error::Error;
use crate::rate::TokenBucket;
use crossbeam::channel::{unbounded, Receiver, Sender};
use invalidb_broker::{notify_topic, BrokerHandle, CLUSTER_TOPIC, EPOCH_TOPIC};
use invalidb_common::{
    AfterImage, ClusterMessage, ConfigError, Document, Key, Notification, NotificationKind, QueryHash,
    QuerySpec, ResultItem, Stage, SubscriptionId, SubscriptionRequest, TenantId, TraceContext,
};
use invalidb_obs::{AdminConfig, AdminServer, FlightEventKind, MetricsRegistry, MetricsSnapshot};
use invalidb_query::normalize_spec;
use invalidb_store::{Store, UpdateSpec, WriteResult};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Application-server tunables.
///
/// Construct with [`AppServerConfig::default`] plus struct update syntax, or
/// — preferred — through the validating [`AppServerConfig::builder`].
#[derive(Debug, Clone)]
pub struct AppServerConfig {
    /// Slack added to sorted bootstrap queries (§5.2).
    pub default_slack: u64,
    /// Subscription TTL granted to the cluster.
    pub ttl: Duration,
    /// How often TTL extensions are sent.
    pub ttl_refresh_interval: Duration,
    /// How long to wait for a subscription's first notification before
    /// re-publishing its Subscribe envelope. Registration travels over
    /// pub/sub with no delivery guarantee — a worker whose topology is
    /// still (re)building silently drops it — so the keeper retries until
    /// the first event proves the round trip.
    pub subscribe_retry_interval: Duration,
    /// Cluster silence tolerated before subscriptions are terminated with a
    /// connection error (heartbeat supervision).
    pub heartbeat_timeout: Duration,
    /// Token-bucket capacity for query renewals (burst).
    pub renewal_burst: u32,
    /// Token-bucket refill (renewals per second) — the poll frequency rate
    /// limit of §5.2.
    pub renewals_per_sec: f64,
    /// Upper bound for adaptive slack growth (§5.2 fn. 5: "using a higher
    /// slack value to increase robustness against deletes" on re-execution).
    /// Each renewal doubles the subscription's slack up to this cap.
    pub max_slack: u64,
    /// Stage-tracing sample rate: every Nth forwarded write carries a
    /// [`TraceContext`] that is stamped at every pipeline stage. `0`
    /// (default) disables tracing entirely — the write path then performs no
    /// atomic increment and no allocation.
    pub trace_sample_every: u64,
    /// Registry receiving this app server's counters, gauges and completed
    /// stage traces. Share one registry between the app server and the
    /// cluster (`ClusterConfig`'s `metrics` field) to get a single combined
    /// snapshot.
    pub metrics: MetricsRegistry,
    /// Optional bind address (e.g. `"127.0.0.1:9464"`) for an admin
    /// endpoint serving `/metrics`, `/healthz`, `/queries` and `/flight`
    /// over HTTP. `None` (the default) disables the endpoint.
    pub admin_addr: Option<String>,
    /// How many recently forwarded write envelopes to keep for epoch
    /// replay. When the cluster coordinator announces an epoch bump
    /// (worker failover, cells reassigned), the buffered writes are
    /// republished so replacement workers rebuild matching state; staleness
    /// guards on surviving matching nodes drop the duplicates. `0`
    /// disables buffering (and epoch-triggered replay with it).
    pub write_replay_buffer: usize,
    /// Codec for the envelopes this app server produces (forwarded writes,
    /// subscription control messages). Consumers always sniff the codec
    /// from the payload, so this is purely a producer-side knob; the
    /// default is the binary (`IVBD`) codec. Set
    /// [`WireCodec::Json`](invalidb_json::WireCodec::Json) to interoperate
    /// with tooling that expects to read envelopes as text.
    pub wire_codec: invalidb_json::WireCodec,
}

impl Default for AppServerConfig {
    fn default() -> Self {
        Self {
            default_slack: 3,
            ttl: Duration::from_secs(60),
            ttl_refresh_interval: Duration::from_secs(10),
            subscribe_retry_interval: Duration::from_millis(500),
            heartbeat_timeout: Duration::from_secs(5),
            renewal_burst: 16,
            renewals_per_sec: 20.0,
            max_slack: 64,
            trace_sample_every: 0,
            write_replay_buffer: 256,
            metrics: MetricsRegistry::new(),
            admin_addr: None,
            wire_codec: invalidb_json::WireCodec::default(),
        }
    }
}

impl AppServerConfig {
    /// A validating builder seeded with the defaults.
    pub fn builder() -> AppServerConfigBuilder {
        AppServerConfigBuilder { config: AppServerConfig::default() }
    }
}

/// Builder for [`AppServerConfig`] that rejects inconsistent settings at
/// [`build`](AppServerConfigBuilder::build) time instead of misbehaving at
/// runtime (e.g. a default slack above the adaptive-growth cap).
#[derive(Debug, Clone)]
pub struct AppServerConfigBuilder {
    config: AppServerConfig,
}

impl AppServerConfigBuilder {
    /// Slack added to sorted bootstrap queries.
    pub fn slack(mut self, slack: u64) -> Self {
        self.config.default_slack = slack;
        self
    }

    /// Cap for adaptive slack growth.
    pub fn max_slack(mut self, max_slack: u64) -> Self {
        self.config.max_slack = max_slack;
        self
    }

    /// Subscription TTL granted to the cluster.
    pub fn ttl(mut self, ttl: Duration) -> Self {
        self.config.ttl = ttl;
        self
    }

    /// How often TTL extensions are sent.
    pub fn ttl_refresh_interval(mut self, interval: Duration) -> Self {
        self.config.ttl_refresh_interval = interval;
        self
    }

    /// Retry cadence for unconfirmed subscription registrations.
    pub fn subscribe_retry_interval(mut self, interval: Duration) -> Self {
        self.config.subscribe_retry_interval = interval;
        self
    }

    /// Cluster silence tolerated before termination.
    pub fn heartbeat_timeout(mut self, timeout: Duration) -> Self {
        self.config.heartbeat_timeout = timeout;
        self
    }

    /// Token-bucket capacity for query renewals.
    pub fn renewal_burst(mut self, burst: u32) -> Self {
        self.config.renewal_burst = burst;
        self
    }

    /// Token-bucket refill rate (renewals per second).
    pub fn renewals_per_sec(mut self, rate: f64) -> Self {
        self.config.renewals_per_sec = rate;
        self
    }

    /// Trace every Nth forwarded write (`0` disables tracing).
    pub fn trace_sample_every(mut self, every: u64) -> Self {
        self.config.trace_sample_every = every;
        self
    }

    /// Recent-write buffer size for epoch replay (`0` disables it).
    pub fn write_replay_buffer(mut self, capacity: usize) -> Self {
        self.config.write_replay_buffer = capacity;
        self
    }

    /// Registry receiving this app server's metrics and traces.
    pub fn metrics(mut self, registry: MetricsRegistry) -> Self {
        self.config.metrics = registry;
        self
    }

    /// Binds an admin endpoint (`/metrics`, `/healthz`, `/queries`,
    /// `/flight`) to the given address, e.g. `"127.0.0.1:0"`.
    pub fn admin_addr(mut self, addr: impl Into<String>) -> Self {
        self.config.admin_addr = Some(addr.into());
        self
    }

    /// Codec for produced envelopes (decoding always sniffs).
    pub fn wire_codec(mut self, codec: invalidb_json::WireCodec) -> Self {
        self.config.wire_codec = codec;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<AppServerConfig, ConfigError> {
        let c = self.config;
        if c.max_slack == 0 {
            return Err(ConfigError::new("max_slack", "must be at least 1"));
        }
        if c.default_slack > c.max_slack {
            return Err(ConfigError::new(
                "slack",
                format!("default slack {} exceeds max_slack {}", c.default_slack, c.max_slack),
            ));
        }
        if c.renewal_burst == 0 {
            return Err(ConfigError::new("renewal_burst", "must be at least 1"));
        }
        if c.renewals_per_sec <= 0.0 || !c.renewals_per_sec.is_finite() {
            return Err(ConfigError::new("renewals_per_sec", "must be a positive finite rate"));
        }
        if c.ttl.is_zero() {
            return Err(ConfigError::new("ttl", "must be non-zero"));
        }
        if c.ttl_refresh_interval >= c.ttl {
            return Err(ConfigError::new(
                "ttl_refresh_interval",
                "must be shorter than the ttl, or subscriptions expire between refreshes",
            ));
        }
        if c.heartbeat_timeout.is_zero() {
            return Err(ConfigError::new("heartbeat_timeout", "must be non-zero"));
        }
        Ok(c)
    }
}

/// Event delivered to a subscribed client.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientEvent {
    /// The initial query result (always the first event).
    Initial(Vec<ResultItem>),
    /// An incremental result change.
    Change(invalidb_common::ChangeItem),
    /// The sorted query hit a maintenance error; the app server is renewing
    /// it (rate-limited). The local result stays valid; incremental deltas
    /// follow after renewal.
    MaintenanceError(String),
    /// Cluster heartbeats stopped: the subscription is terminated. Clients
    /// may resubscribe or fall back to pull-based queries.
    ConnectionLost,
    /// Updated value of a real-time aggregate query (extension, §8.1).
    Aggregate {
        /// Current aggregate value.
        value: invalidb_common::Value,
        /// Number of currently matching records.
        count: u64,
    },
}

struct SubEntry {
    spec: QuerySpec,
    rewritten: QuerySpec,
    /// Memoized hash of the normalized query (§5.1): attached to every
    /// follow-up request because it cannot be recomputed from those alone.
    query_hash: QueryHash,
    slack: u64,
    tx: Sender<(ClientEvent, Option<TraceContext>)>,
    needs_renewal: bool,
    /// Whether any notification (normally the initial result) has come back
    /// for this subscription. Registration is fire-and-forget on a pub/sub
    /// topic, so until the round trip is proven the keeper re-registers at
    /// [`AppServerConfig::subscribe_retry_interval`] — at-least-once
    /// delivery of the subscription itself.
    confirmed: bool,
    /// When the Subscribe envelope was last published (initial or renewal).
    last_register: Instant,
}

struct Shared {
    subs: Mutex<HashMap<SubscriptionId, SubEntry>>,
    last_heartbeat: Mutex<Instant>,
    shutdown: AtomicBool,
    renewals_performed: AtomicU64,
    connection_lost: AtomicBool,
    /// Forwarded-write sequence number, the basis for trace sampling.
    writes_forwarded: AtomicU64,
    /// Ring of recently forwarded write envelopes, republished on epoch
    /// bumps so replacement workers catch up.
    write_ring: Mutex<std::collections::VecDeque<bytes::Bytes>>,
    /// Highest cluster epoch seen on the epoch topic.
    last_epoch: AtomicU64,
    /// Epoch-triggered replays performed (observability).
    epoch_replays: AtomicU64,
    /// Link-generation-triggered replays performed (observability).
    reconnect_replays: AtomicU64,
}

/// An application server for one tenant.
///
/// Owns the connection to the primary [`Store`] and to the event layer.
/// Multi-tenancy: run one `AppServer` per application — a single InvaliDB
/// cluster serves them all (§5).
pub struct AppServer {
    tenant: TenantId,
    store: Arc<Store>,
    broker: BrokerHandle,
    config: AppServerConfig,
    shared: Arc<Shared>,
    renewal_bucket: Arc<TokenBucket>,
    threads: Vec<std::thread::JoinHandle<()>>,
    admin: Option<AdminServer>,
}

impl AppServer {
    /// Starts an application server attached to an event layer — an
    /// in-process [`invalidb_broker::Broker`], a [`BrokerHandle`], or any
    /// other [`invalidb_broker::EventLayer`] implementation (e.g.
    /// `invalidb-net`'s TCP-backed `RemoteBroker`).
    pub fn start(
        tenant: impl Into<TenantId>,
        store: Arc<Store>,
        broker: impl Into<BrokerHandle>,
        config: AppServerConfig,
    ) -> Self {
        let tenant = tenant.into();
        let broker: BrokerHandle = broker.into();
        let shared = Arc::new(Shared {
            subs: Mutex::new(HashMap::new()),
            last_heartbeat: Mutex::new(Instant::now()),
            shutdown: AtomicBool::new(false),
            renewals_performed: AtomicU64::new(0),
            connection_lost: AtomicBool::new(false),
            writes_forwarded: AtomicU64::new(0),
            write_ring: Mutex::new(std::collections::VecDeque::new()),
            last_epoch: AtomicU64::new(0),
            epoch_replays: AtomicU64::new(0),
            reconnect_replays: AtomicU64::new(0),
        });
        let renewal_bucket = Arc::new(TokenBucket::new(config.renewal_burst, config.renewals_per_sec));
        // Optional admin plane. A failed bind does not abort the server but
        // is counted so it cannot go unnoticed.
        let admin = config.admin_addr.as_deref().and_then(|addr| {
            match AdminServer::bind(addr, config.metrics.clone(), AdminConfig::default()) {
                Ok(server) => Some(server),
                Err(_) => {
                    config.metrics.inc("admin.bind_errors");
                    None
                }
            }
        });
        let mut server = Self {
            tenant: tenant.clone(),
            store,
            broker,
            config,
            shared,
            renewal_bucket,
            threads: Vec::new(),
            admin,
        };
        server.spawn_dispatcher();
        server.spawn_keeper();
        server.spawn_epoch_watcher();
        server
    }

    /// The tenant this server belongs to.
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }

    /// The primary store (for direct pull access in tests/tools).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Number of renewals performed so far (observability).
    pub fn renewals_performed(&self) -> u64 {
        self.shared.renewals_performed.load(Ordering::Relaxed)
    }

    /// Number of epoch-triggered write replays performed so far.
    pub fn epoch_replays(&self) -> u64 {
        self.shared.epoch_replays.load(Ordering::Relaxed)
    }

    /// Number of link-reconnect-triggered write replays performed so far:
    /// the keeper watches the event layer's connection generation and
    /// repairs the at-most-once gap a reconnect opens (ring replay plus
    /// subscription renewal).
    pub fn reconnect_replays(&self) -> u64 {
        self.shared.reconnect_replays.load(Ordering::Relaxed)
    }

    /// Highest cluster epoch observed on the epoch topic.
    pub fn cluster_epoch(&self) -> u64 {
        self.shared.last_epoch.load(Ordering::Relaxed)
    }

    /// Current slack of a subscription (grows adaptively with renewals).
    pub fn current_slack(&self, subscription: &Subscription) -> Option<u64> {
        self.shared.subs.lock().get(&subscription.id()).map(|e| e.slack)
    }

    /// A point-in-time snapshot of this app server's metrics: renewal and
    /// delivery counters, and — when [`AppServerConfig::trace_sample_every`]
    /// is set — per-stage latency histograms of completed traces. When the
    /// registry is shared with the cluster, the snapshot covers both sides.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.config.metrics.snapshot()
    }

    /// The live registry this app server reports into.
    pub fn registry(&self) -> MetricsRegistry {
        self.config.metrics.clone()
    }

    /// Where the admin endpoint actually listens (useful with a `:0` bind),
    /// or `None` when [`AppServerConfig::admin_addr`] was unset or the bind
    /// failed (counted as `admin.bind_errors`).
    pub fn admin_addr(&self) -> Option<std::net::SocketAddr> {
        self.admin.as_ref().map(|a| a.local_addr())
    }

    /// The hosted admin server, when one is running.
    pub fn admin(&self) -> Option<&AdminServer> {
        self.admin.as_ref()
    }

    // ------------------------------------------------------------------
    // Pull-based interface
    // ------------------------------------------------------------------

    /// Executes a pull-based query.
    pub fn find(&self, spec: &QuerySpec) -> Result<Vec<ResultItem>, Error> {
        Ok(self.store.execute(spec)?)
    }

    // ------------------------------------------------------------------
    // Write interface (after-images forwarded to the cluster, §5.4)
    // ------------------------------------------------------------------

    /// Inserts a record.
    pub fn insert(&self, collection: &str, key: Key, doc: Document) -> Result<WriteResult, Error> {
        let w = self.store.insert(collection, key, doc)?;
        self.forward(collection, &w);
        Ok(w)
    }

    /// Inserts or replaces a record.
    pub fn save(&self, collection: &str, key: Key, doc: Document) -> Result<WriteResult, Error> {
        let w = self.store.save(collection, key, doc)?;
        self.forward(collection, &w);
        Ok(w)
    }

    /// Applies an update to a record.
    pub fn update(&self, collection: &str, key: Key, update: &UpdateSpec) -> Result<WriteResult, Error> {
        let w = self.store.update(collection, key, update)?;
        self.forward(collection, &w);
        Ok(w)
    }

    /// Deletes a record.
    pub fn delete(&self, collection: &str, key: Key) -> Result<WriteResult, Error> {
        let w = self.store.delete(collection, key)?;
        self.forward(collection, &w);
        Ok(w)
    }

    fn forward(&self, collection: &str, w: &WriteResult) {
        let msg = ClusterMessage::Write(AfterImage {
            tenant: self.tenant.clone(),
            collection: collection.to_owned(),
            key: w.key.clone(),
            version: w.version,
            doc: w.doc.clone(),
            written_at: now_micros(),
            trace: self.next_trace(),
        });
        let payload = self.config.wire_codec.encode(&msg.to_document());
        if self.config.write_replay_buffer > 0 {
            let mut ring = self.shared.write_ring.lock();
            if ring.len() >= self.config.write_replay_buffer {
                ring.pop_front();
            }
            ring.push_back(payload.clone());
        }
        self.broker.publish(CLUSTER_TOPIC, payload);
    }

    /// Starts a [`TraceContext`] on every Nth write. With sampling disabled
    /// (the default) this is a single branch: no atomics, no allocation.
    fn next_trace(&self) -> Option<TraceContext> {
        let every = self.config.trace_sample_every;
        if every == 0 {
            return None;
        }
        let seq = self.shared.writes_forwarded.fetch_add(1, Ordering::Relaxed);
        if !seq.is_multiple_of(every) {
            return None;
        }
        self.config.metrics.inc("appserver.traces_started");
        // Spread the id bits so concurrent app servers don't collide on the
        // shared sequence counter.
        let id = now_micros().wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seq;
        Some(TraceContext::start(id))
    }

    fn publish(&self, msg: &ClusterMessage) {
        self.broker.publish(CLUSTER_TOPIC, self.config.wire_codec.encode(&msg.to_document()));
    }

    // ------------------------------------------------------------------
    // Push-based interface
    // ------------------------------------------------------------------

    /// Subscribes to a real-time query. The first event is the initial
    /// result; every subsequent event is an incremental update.
    pub fn subscribe(&self, spec: &QuerySpec) -> Result<Subscription, Error> {
        if spec.needs_aggregation_stage() && spec.needs_sorting_stage() {
            return Err(Error::BadQuery(
                "aggregate queries cannot be combined with sort/limit/offset".into(),
            ));
        }
        let id = SubscriptionId::generate();
        // Hash from normalized query attributes, memoized for the
        // subscription lifetime (§5.1).
        let normalized = normalize_spec(spec);
        let query_hash = normalized.stable_hash();
        let slack = if spec.needs_sorting_stage() { self.config.default_slack } else { 0 };
        let mut rewritten = spec.rewrite_for_bootstrap(slack);
        // Aggregate queries bootstrap from the plain matching set: the
        // aggregation stage computes the value; the store just supplies the
        // records.
        rewritten.aggregate = None;
        let initial = self.store.execute(&rewritten)?;
        let (tx, rx) = unbounded();
        self.shared.subs.lock().insert(
            id,
            SubEntry {
                spec: spec.clone(),
                rewritten: rewritten.clone(),
                query_hash,
                slack,
                tx,
                needs_renewal: false,
                confirmed: false,
                last_register: Instant::now(),
            },
        );
        self.publish(&ClusterMessage::Subscribe(SubscriptionRequest {
            tenant: self.tenant.clone(),
            subscription: id,
            spec: spec.clone(),
            query_hash,
            initial,
            slack,
            ttl_micros: self.config.ttl.as_micros() as u64,
            renewal: false,
        }));
        self.config.metrics.flight().record(
            FlightEventKind::Subscribe,
            format!("{} sub={} {}", self.tenant, id.0, spec.collection),
        );
        Ok(Subscription {
            id,
            rx,
            result: crate::LiveResult::new(),
            latest_aggregate: None,
            last_trace: None,
        })
    }

    /// Cancels a subscription so it stops consuming cluster resources.
    pub fn unsubscribe(&self, subscription: &Subscription) {
        if let Some(entry) = self.shared.subs.lock().remove(&subscription.id) {
            self.publish(&ClusterMessage::Unsubscribe {
                tenant: self.tenant.clone(),
                subscription: subscription.id,
                query_hash: entry.query_hash,
            });
            self.config.metrics.flight().record(
                FlightEventKind::Unsubscribe,
                format!("{} sub={} {}", self.tenant, subscription.id.0, entry.spec.collection),
            );
        }
    }

    // ------------------------------------------------------------------
    // Background machinery
    // ------------------------------------------------------------------

    /// Dispatcher: receives notifications/heartbeats from the event layer
    /// and routes them to subscription channels; flags renewals. Sampled
    /// traces get their delivery stamp here and are recorded — complete —
    /// into the metrics registry.
    fn spawn_dispatcher(&mut self) {
        let sub = self.broker.subscribe(&notify_topic(&self.tenant.0));
        let shared = Arc::clone(&self.shared);
        let metrics = self.config.metrics.clone();
        let tenant = self.tenant.0.clone();
        let handle = std::thread::Builder::new()
            .name(format!("appserver-dispatch-{}", self.tenant))
            .spawn(move || {
                while !shared.shutdown.load(Ordering::Relaxed) {
                    let payload = match sub.recv_timeout(Duration::from_millis(50)) {
                        Some(p) => p,
                        None => continue,
                    };
                    // Heartbeats dominate idle notify-topic traffic; sniff
                    // them through the lazy view so binary payloads never
                    // materialize a document tree just to be discarded.
                    let view = match invalidb_json::PayloadView::new(&payload) {
                        Ok(v) => v,
                        Err(_) => continue,
                    };
                    let is_heartbeat = match &view {
                        invalidb_json::PayloadView::Binary(lazy) => matches!(
                            lazy.get("type"),
                            Ok(Some(v)) if v.as_str() == Some("heartbeat")
                        ),
                        invalidb_json::PayloadView::Json(d) => {
                            d.get("type").and_then(|v| v.as_str()) == Some("heartbeat")
                        }
                    };
                    if is_heartbeat {
                        *shared.last_heartbeat.lock() = Instant::now();
                        shared.connection_lost.store(false, Ordering::Relaxed);
                        continue;
                    }
                    let d = match view.to_document() {
                        Ok(d) => d,
                        Err(_) => continue,
                    };
                    let n = match Notification::from_document(&d) {
                        Ok(n) => n,
                        Err(_) => continue,
                    };
                    // Any cluster traffic proves liveness.
                    *shared.last_heartbeat.lock() = Instant::now();
                    let mut subs = shared.subs.lock();
                    if let Some(entry) = subs.get_mut(&n.subscription) {
                        let event = match &n.kind {
                            NotificationKind::InitialResult { items } => {
                                ClientEvent::Initial(items.clone())
                            }
                            NotificationKind::Change(c) => ClientEvent::Change(c.clone()),
                            NotificationKind::Error(e) => {
                                entry.needs_renewal = true;
                                ClientEvent::MaintenanceError(e.reason.clone())
                            }
                            NotificationKind::Aggregate { value, count } => {
                                ClientEvent::Aggregate { value: value.clone(), count: *count }
                            }
                        };
                        // Only baseline-carrying notifications confirm a
                        // registration: a stray Change proves the pump is
                        // alive but cannot repair a live result whose
                        // initial was lost (sorted top-k especially), so it
                        // must not cancel the at-least-once re-register.
                        if matches!(
                            n.kind,
                            NotificationKind::InitialResult { .. } | NotificationKind::Aggregate { .. }
                        ) {
                            entry.confirmed = true;
                        }
                        metrics.inc("appserver.events_delivered");
                        // Notification-staleness SLO: save → notify, per
                        // tenant, for every delivered change (not just
                        // sampled traces). Skew-guarded inside the
                        // registry.
                        if n.caused_by_write_at > 0 {
                            metrics.record_staleness(&tenant, n.caused_by_write_at);
                        }
                        let mut trace = n.trace;
                        if let Some(t) = trace.as_mut() {
                            t.stamp(Stage::Delivery);
                            metrics.record_trace(t);
                        }
                        let _ = entry.tx.send((event, trace));
                    }
                }
            })
            .expect("spawn dispatcher");
        self.threads.push(handle);
    }

    /// Epoch watcher: when the cluster coordinator announces a failover
    /// (epoch bump with reassigned cells), republish the recent-write ring
    /// so replacement workers catch up, and mark every subscription for
    /// renewal so the keeper re-executes bootstrap queries against the
    /// store (fresh initial results repair client state). Surviving
    /// matching nodes drop the replayed duplicates via their per-key
    /// version guards.
    fn spawn_epoch_watcher(&mut self) {
        let sub = self.broker.subscribe(EPOCH_TOPIC);
        let shared = Arc::clone(&self.shared);
        let broker = self.broker.clone();
        let config = self.config.clone();
        let handle = std::thread::Builder::new()
            .name(format!("appserver-epoch-{}", self.tenant))
            .spawn(move || {
                while !shared.shutdown.load(Ordering::Relaxed) {
                    let payload = match sub.recv_timeout(Duration::from_millis(50)) {
                        Some(p) => p,
                        None => continue,
                    };
                    let Ok(d) = invalidb_json::payload_to_document(&payload) else { continue };
                    let epoch = d.get("epoch").and_then(|v| v.as_i64()).unwrap_or(0) as u64;
                    let reassigned = d.get("reassigned").and_then(|v| v.as_i64()).unwrap_or(0) as u64;
                    let prev = shared.last_epoch.swap(epoch, Ordering::Relaxed);
                    config.metrics.set_gauge("appserver.cluster_epoch", epoch);
                    if epoch <= prev || reassigned == 0 {
                        // First sighting of a table that moved nothing, or
                        // an out-of-order notice: nothing to repair.
                        continue;
                    }
                    // 1. Replay buffered writes so rebuilt cells see the
                    //    recent stream (duplicates are version-guarded).
                    let ring: Vec<bytes::Bytes> = shared.write_ring.lock().iter().cloned().collect();
                    for payload in &ring {
                        broker.publish(CLUSTER_TOPIC, payload.clone());
                    }
                    // 2. Renew every subscription: the keeper re-executes
                    //    bootstrap queries and re-registers (rate-limited).
                    let mut marked = 0usize;
                    {
                        let mut subs = shared.subs.lock();
                        for entry in subs.values_mut() {
                            entry.needs_renewal = true;
                            // See the keeper's generation watch: renewals
                            // racing a rebuilding cluster can lose their
                            // initial results too — stay unconfirmed until
                            // a notification proves the registration took.
                            entry.confirmed = false;
                            marked += 1;
                        }
                    }
                    shared.epoch_replays.fetch_add(1, Ordering::Relaxed);
                    config.metrics.inc("appserver.epoch_replays");
                    config.metrics.flight().record(
                        FlightEventKind::Failover,
                        format!(
                            "epoch {epoch}: replayed {} writes, renewing {marked} subscriptions",
                            ring.len()
                        ),
                    );
                }
            })
            .expect("spawn epoch watcher");
        self.threads.push(handle);
    }

    /// Keeper: TTL extensions, heartbeat supervision, rate-limited renewals.
    fn spawn_keeper(&mut self) {
        let shared = Arc::clone(&self.shared);
        let store = Arc::clone(&self.store);
        let broker = self.broker.clone();
        let tenant = self.tenant.clone();
        let config = self.config.clone();
        let bucket = Arc::clone(&self.renewal_bucket);
        let handle = std::thread::Builder::new()
            .name(format!("appserver-keeper-{}", self.tenant))
            .spawn(move || {
                let mut last_ttl_refresh = Instant::now();
                let mut last_generation = broker.generation();
                while !shared.shutdown.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(20));
                    // -1. Link-generation watch: a remote event layer that
                    //    reconnected silently dropped everything published
                    //    against the dying session (at-most-once, §5.3) —
                    //    writes *and* notifications in flight during the gap
                    //    are gone and nothing downstream will ever resend
                    //    them. Repair exactly like a failover epoch bump:
                    //    replay the recent-write ring (duplicates are
                    //    version-guarded by the matching nodes) and renew
                    //    every subscription so fresh initial results rebuild
                    //    the client-side live results from the pull truth.
                    let generation = broker.generation();
                    if generation != last_generation {
                        last_generation = generation;
                        let ring: Vec<bytes::Bytes> =
                            shared.write_ring.lock().iter().cloned().collect();
                        for payload in &ring {
                            broker.publish(CLUSTER_TOPIC, payload.clone());
                        }
                        let mut marked = 0usize;
                        {
                            let mut subs = shared.subs.lock();
                            for entry in subs.values_mut() {
                                entry.needs_renewal = true;
                                // Un-confirm: the renewal itself races the
                                // session's SUBSCRIBE replay, so its fresh
                                // initial result can be dropped server-side
                                // like any other envelope. Only a delivered
                                // notification re-confirms; until then the
                                // at-least-once retry keeps re-registering.
                                entry.confirmed = false;
                                marked += 1;
                            }
                        }
                        shared.reconnect_replays.fetch_add(1, Ordering::Relaxed);
                        config.metrics.inc("appserver.reconnect_replays");
                        config.metrics.flight().record(
                            FlightEventKind::Reconnect,
                            format!(
                                "{tenant}: link generation {generation}: replayed {} writes, \
                                 renewing {marked} subscriptions",
                                ring.len()
                            ),
                        );
                    }
                    // 0. At-least-once registration: a Subscribe that never
                    //    produced a notification was dropped somewhere (e.g.
                    //    a worker mid-rebuild) — re-register it.
                    {
                        let mut subs = shared.subs.lock();
                        for entry in subs.values_mut() {
                            if !entry.confirmed
                                && !entry.needs_renewal
                                && entry.last_register.elapsed() >= config.subscribe_retry_interval
                            {
                                entry.needs_renewal = true;
                                config.metrics.inc("appserver.subscribe_retries");
                            }
                        }
                    }
                    // 1. Renewals (poll-frequency rate limited, §5.2).
                    let pending: Vec<SubscriptionId> = shared
                        .subs
                        .lock()
                        .iter()
                        .filter(|(_, e)| e.needs_renewal)
                        .map(|(id, _)| *id)
                        .collect();
                    for id in pending {
                        if !bucket.try_take() {
                            break; // retry on the next keeper cycle
                        }
                        let request = {
                            let mut subs = shared.subs.lock();
                            match subs.get_mut(&id) {
                                Some(entry) => {
                                    entry.needs_renewal = false;
                                    entry.last_register = Instant::now();
                                    // Adaptive slack (§5.2 fn. 5): every
                                    // renewal doubles the slack (capped), so
                                    // delete-heavy queries stop thrashing
                                    // the database with re-executions.
                                    entry.slack = (entry.slack * 2).clamp(1, config.max_slack);
                                    entry.rewritten = entry.spec.rewrite_for_bootstrap(entry.slack);
                                    Some((
                                        entry.spec.clone(),
                                        entry.rewritten.clone(),
                                        entry.query_hash,
                                        entry.slack,
                                    ))
                                }
                                None => None,
                            }
                        };
                        if let Some((spec, rewritten, query_hash, slack)) = request {
                            if let Ok(initial) = store.execute(&rewritten) {
                                shared.renewals_performed.fetch_add(1, Ordering::Relaxed);
                                config.metrics.inc("appserver.renewals");
                                let msg = ClusterMessage::Subscribe(SubscriptionRequest {
                                    tenant: tenant.clone(),
                                    subscription: id,
                                    spec,
                                    query_hash,
                                    initial,
                                    slack,
                                    ttl_micros: config.ttl.as_micros() as u64,
                                    renewal: false,
                                });
                                broker.publish(
                                    CLUSTER_TOPIC,
                                    config.wire_codec.encode(&msg.to_document()),
                                );
                            }
                        }
                    }
                    // 2. TTL extensions.
                    if last_ttl_refresh.elapsed() >= config.ttl_refresh_interval {
                        last_ttl_refresh = Instant::now();
                        let subs = shared.subs.lock();
                        for (id, entry) in subs.iter() {
                            let msg = ClusterMessage::ExtendTtl {
                                tenant: tenant.clone(),
                                subscription: *id,
                                query_hash: entry.query_hash,
                                ttl_micros: config.ttl.as_micros() as u64,
                            };
                            broker.publish(CLUSTER_TOPIC, config.wire_codec.encode(&msg.to_document()));
                        }
                    }
                    // Gauges are refreshed once per keeper cycle, never on
                    // the write or delivery hot paths.
                    config
                        .metrics
                        .set_gauge("appserver.active_subscriptions", shared.subs.lock().len() as u64);
                    // 3. Heartbeat supervision: terminate on cluster silence.
                    let silent_for = shared.last_heartbeat.lock().elapsed();
                    config
                        .metrics
                        .set_gauge("appserver.heartbeat_stale_ms", silent_for.as_millis() as u64);
                    if silent_for > config.heartbeat_timeout
                        && !shared.connection_lost.swap(true, Ordering::Relaxed)
                    {
                        config.metrics.inc("appserver.connection_lost");
                        config.metrics.flight().record(
                            FlightEventKind::Disconnect,
                            format!("{tenant}: cluster heartbeats stopped"),
                        );
                        let subs = shared.subs.lock();
                        for entry in subs.values() {
                            let _ = entry.tx.send((ClientEvent::ConnectionLost, None));
                        }
                    }
                }
            })
            .expect("spawn keeper");
        self.threads.push(handle);
    }
}

impl Drop for AppServer {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// A live real-time query held by a client.
pub struct Subscription {
    id: SubscriptionId,
    rx: Receiver<(ClientEvent, Option<TraceContext>)>,
    result: crate::LiveResult,
    latest_aggregate: Option<(invalidb_common::Value, u64)>,
    last_trace: Option<TraceContext>,
}

impl Subscription {
    /// The unique subscription id (client-generated, §5 fn. 2).
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// An [`Iterator`] over incoming events — the one receive surface. Each
    /// yielded event is applied to the local [`result`](Subscription::result)
    /// before it is returned.
    ///
    /// By default [`Events::next`] waits up to one second per event and
    /// yields `None` on timeout; tune with [`Events::timeout`], switch to a
    /// pure `try_recv` with [`Events::non_blocking`], or enable hot-key
    /// batching with [`Events::coalesced`].
    ///
    /// ```ignore
    /// for event in subscription.events().timeout(Duration::from_secs(5)) {
    ///     println!("{event:?}");
    /// }
    /// ```
    pub fn events(&mut self) -> Events<'_> {
        Events {
            sub: self,
            timeout: Duration::from_secs(1),
            coalesce: None,
            buffer: std::collections::VecDeque::new(),
        }
    }

    /// Waits for the next event, applying it to the local result.
    #[deprecated(since = "0.2.0", note = "use `events().timeout(..).next()` instead")]
    pub fn next_event(&mut self, timeout: Duration) -> Option<ClientEvent> {
        self.recv_one(timeout)
    }

    /// Non-blocking variant of the receive path.
    #[deprecated(since = "0.2.0", note = "use `events().non_blocking().next()` instead")]
    pub fn try_next_event(&mut self) -> Option<ClientEvent> {
        self.try_recv_one()
    }

    fn recv_one(&mut self, timeout: Duration) -> Option<ClientEvent> {
        let (event, trace) = self.rx.recv_timeout(timeout).ok()?;
        Some(self.absorb(event, trace))
    }

    fn try_recv_one(&mut self) -> Option<ClientEvent> {
        let (event, trace) = self.rx.try_recv().ok()?;
        Some(self.absorb(event, trace))
    }

    fn absorb(&mut self, event: ClientEvent, trace: Option<TraceContext>) -> ClientEvent {
        if let Some(t) = trace {
            self.last_trace = Some(t);
        }
        self.apply(&event);
        event
    }

    fn apply(&mut self, event: &ClientEvent) {
        use invalidb_common::{MaintenanceError, NotificationKind, TenantId};
        let kind = match event {
            ClientEvent::Initial(items) => NotificationKind::InitialResult { items: items.clone() },
            ClientEvent::Change(c) => NotificationKind::Change(c.clone()),
            ClientEvent::MaintenanceError(reason) => {
                NotificationKind::Error(MaintenanceError { reason: reason.clone() })
            }
            ClientEvent::ConnectionLost => return,
            ClientEvent::Aggregate { value, count } => {
                self.latest_aggregate = Some((value.clone(), *count));
                return;
            }
        };
        self.result.apply(&Notification {
            tenant: TenantId::new(""),
            subscription: self.id,
            kind,
            caused_by_write_at: 0,
            trace: None,
        });
    }

    /// The locally maintained result.
    pub fn result(&self) -> &crate::LiveResult {
        &self.result
    }

    /// Latest value of an aggregate subscription, as `(value, match count)`.
    pub fn aggregate(&self) -> Option<&(invalidb_common::Value, u64)> {
        self.latest_aggregate.as_ref()
    }

    /// The stage trace of the most recent sampled event delivered to this
    /// subscription, when tracing is enabled
    /// ([`AppServerConfig::trace_sample_every`]). Its
    /// [`breakdown`](TraceContext::breakdown) shows where the write→
    /// notification latency was spent.
    pub fn last_trace(&self) -> Option<&TraceContext> {
        self.last_trace.as_ref()
    }

    /// Batched receive with notification coalescing (extension, §8.1).
    #[deprecated(since = "0.2.0", note = "use `events().coalesced(window)` instead")]
    pub fn next_events_coalesced(&mut self, window: Duration) -> Vec<ClientEvent> {
        self.recv_coalesced(window)
    }

    /// Waits up to `window` for a first event, keeps collecting until the
    /// window closes, applies everything to the local result, and returns
    /// the batch collapsed to its net effect (hot-key churn disappears).
    fn recv_coalesced(&mut self, window: Duration) -> Vec<ClientEvent> {
        let first = match self.recv_one(window) {
            Some(ev) => ev,
            None => return Vec::new(),
        };
        let mut batch = vec![first];
        let deadline = Instant::now() + window;
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match self.recv_one(deadline - now) {
                Some(ev) => batch.push(ev),
                None => break,
            }
        }
        crate::coalesce::collapse(batch)
    }
}

/// Iterator over a subscription's incoming events, created by
/// [`Subscription::events`]. Every yielded event has already been applied to
/// the subscription's local result.
///
/// `next()` returns `None` when no event arrived within the configured
/// timeout — the subscription stays usable; call `events()` again (or keep
/// the iterator) to continue receiving.
pub struct Events<'a> {
    sub: &'a mut Subscription,
    timeout: Duration,
    coalesce: Option<Duration>,
    buffer: std::collections::VecDeque<ClientEvent>,
}

impl Events<'_> {
    /// Maximum wait per event (default: one second).
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Never block: yield only events that are already queued
    /// (`try_recv` semantics).
    pub fn non_blocking(mut self) -> Self {
        self.timeout = Duration::ZERO;
        self
    }

    /// Opt-in coalescing: gather events for `window` per batch and yield the
    /// batch collapsed to its net effect ([`crate::collapse`]) — hot-key
    /// churn disappears, add→remove pairs cancel.
    pub fn coalesced(mut self, window: Duration) -> Self {
        self.coalesce = Some(window);
        self
    }
}

impl Iterator for Events<'_> {
    type Item = ClientEvent;

    fn next(&mut self) -> Option<ClientEvent> {
        if let Some(ev) = self.buffer.pop_front() {
            return Some(ev);
        }
        match self.coalesce {
            Some(window) => {
                self.buffer.extend(self.sub.recv_coalesced(window));
                self.buffer.pop_front()
            }
            None if self.timeout.is_zero() => self.sub.try_recv_one(),
            None => self.sub.recv_one(self.timeout),
        }
    }
}

fn now_micros() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0)
}
