//! The top-level error type of the public API.
//!
//! Application code talks to an [`crate::AppServer`]; everything that can go
//! wrong behind that facade — store failures, bad real-time queries,
//! rejected configuration — surfaces as one [`Error`]. Crate-internal error
//! types ([`invalidb_store::StoreError`], [`invalidb_common::ConfigError`])
//! are unchanged and convert via `From`, so `?` keeps working across the
//! layer boundary.

use invalidb_common::ConfigError;
use invalidb_store::StoreError;

/// Any failure of the public InvaliDB API.
///
/// Marked `#[non_exhaustive]`: future versions may add variants without a
/// breaking change, so match with a wildcard arm.
#[non_exhaustive]
#[derive(Debug)]
pub enum Error {
    /// The primary store rejected the operation.
    Store(StoreError),
    /// A configuration value was rejected (builder validation).
    Config(ConfigError),
    /// The query cannot run as a real-time query (e.g. combining
    /// aggregation with sort/limit/offset).
    BadQuery(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Store(e) => write!(f, "store error: {e}"),
            Error::Config(e) => write!(f, "{e}"),
            Error::BadQuery(reason) => write!(f, "bad query: {reason}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Store(e) => Some(e),
            Error::Config(e) => Some(e),
            Error::BadQuery(_) => None,
        }
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Self {
        Error::Store(e)
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_inner_errors() {
        let e: Error = StoreError::BadQuery("q".into()).into();
        assert!(matches!(e, Error::Store(StoreError::BadQuery(_))));
        let e: Error = ConfigError::new("slack", "too big").into();
        match &e {
            Error::Config(c) => assert_eq!(c.field, "slack"),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(e.to_string().contains("slack"));
    }

    #[test]
    fn question_mark_crosses_the_boundary() {
        fn store_op() -> Result<(), StoreError> {
            Err(StoreError::BadQuery("x".into()))
        }
        fn api_op() -> Result<(), Error> {
            store_op()?;
            Ok(())
        }
        assert!(matches!(api_op(), Err(Error::Store(_))));
    }
}
