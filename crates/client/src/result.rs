//! Client-side result maintenance.
//!
//! A [`LiveResult`] applies the notification stream of one real-time query
//! to a local list, exactly as InvaliDB's sorting stage expects its edit
//! scripts to be applied: `add` inserts at `index`, `changeIndex` moves from
//! `old_index` to `index`, `remove` deletes at `old_index`. Unsorted queries
//! carry no indices; membership is maintained by key.

use invalidb_common::{
    ChangeItem, Document, Key, MatchType, Notification, NotificationKind, ResultItem, Version,
};

/// One entry of a maintained result.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveEntry {
    /// Primary key.
    pub key: Key,
    /// Version last seen.
    pub version: Version,
    /// Record content.
    pub doc: Document,
}

/// A locally maintained query result.
#[derive(Debug, Clone, Default)]
pub struct LiveResult {
    entries: Vec<LiveEntry>,
    /// Set after a maintenance error until the renewal delta arrives.
    degraded: bool,
    /// Client-side staleness avoidance for *unsorted* results (mirrors the
    /// matching nodes' scheme, §5.1): newest version seen per key —
    /// including tombstones — so that notifications arriving out of order
    /// over a misbehaving channel never resurrect old state. Sorted edit
    /// scripts are index-based and assume an ordered channel (like the
    /// production WebSocket), so they bypass this map.
    seen_versions: std::collections::HashMap<Key, Version>,
}

impl LiveResult {
    /// Empty result.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current entries in result order.
    pub fn entries(&self) -> &[LiveEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Keys in result order.
    pub fn keys(&self) -> Vec<Key> {
        self.entries.iter().map(|e| e.key.clone()).collect()
    }

    /// True between a maintenance error and the renewal delta.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Applies one notification.
    pub fn apply(&mut self, notification: &Notification) {
        match &notification.kind {
            NotificationKind::InitialResult { items } => {
                self.entries = items.iter().filter_map(entry_of).collect();
                self.seen_versions = items.iter().map(|i| (i.key.clone(), i.version)).collect();
                self.degraded = false;
            }
            NotificationKind::Change(change) => {
                self.apply_change(change);
                self.degraded = false;
            }
            NotificationKind::Error(_) => {
                // Keep the last valid state; the renewal delta follows.
                self.degraded = true;
            }
            // Aggregate values are not item lists; handled at the
            // subscription level (`Subscription::aggregate`).
            NotificationKind::Aggregate { .. } => {}
        }
    }

    fn apply_change(&mut self, change: &ChangeItem) {
        // Unsorted notifications (no index): guard against reordered
        // delivery by version. Removes pass on *equal* versions too: a
        // poll-and-diff provider can only report the last version it saw
        // (the tombstone version is unknowable from a result diff), and a
        // remove of the version we hold is never stale.
        if change.item.index.is_none() && change.old_index.is_none() {
            let seen = self.seen_versions.get(&change.item.key).copied().unwrap_or(0);
            let stale = if change.match_type == MatchType::Remove {
                change.item.version < seen
            } else {
                change.item.version <= seen
            };
            if stale {
                return;
            }
            self.seen_versions.insert(change.item.key.clone(), change.item.version);
        }
        match change.match_type {
            MatchType::Add => match (entry_of(&change.item), change.item.index) {
                (Some(entry), Some(index)) => {
                    let at = (index as usize).min(self.entries.len());
                    self.entries.insert(at, entry);
                }
                (Some(entry), None) => {
                    // Unsorted: dedupe by key, append.
                    self.remove_key(&change.item.key);
                    self.entries.push(entry);
                }
                (None, _) => {}
            },
            MatchType::Change => {
                if let Some(entry) = entry_of(&change.item) {
                    match change.item.index {
                        Some(index) if (index as usize) < self.entries.len() => {
                            self.entries[index as usize] = entry;
                        }
                        _ => {
                            // Unsorted change is an UPSERT: when delivery is
                            // reordered, a `change` can overtake the `add`
                            // that establishes membership — the version
                            // guard above already proved this event is the
                            // newest state, so membership follows from it.
                            self.remove_key(&change.item.key);
                            self.entries.push(entry);
                        }
                    }
                }
            }
            MatchType::ChangeIndex => {
                if let Some(entry) = entry_of(&change.item) {
                    if let Some(old) = change.old_index {
                        let old = old as usize;
                        if old < self.entries.len() {
                            self.entries.remove(old);
                        }
                    } else {
                        self.remove_key(&change.item.key);
                    }
                    let at = change.item.index.map(|i| i as usize).unwrap_or(self.entries.len());
                    self.entries.insert(at.min(self.entries.len()), entry);
                }
            }
            MatchType::Remove => match change.old_index {
                Some(old) if (old as usize) < self.entries.len() => {
                    self.entries.remove(old as usize);
                }
                _ => self.remove_key(&change.item.key),
            },
        }
    }

    fn remove_key(&mut self, key: &Key) {
        self.entries.retain(|e| &e.key != key);
    }
}

fn entry_of(item: &ResultItem) -> Option<LiveEntry> {
    item.doc.as_ref().map(|doc| LiveEntry {
        key: item.key.clone(),
        version: item.version,
        doc: doc.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::{doc, SubscriptionId, TenantId};

    fn note(kind: NotificationKind) -> Notification {
        Notification {
            tenant: TenantId::new("t"),
            subscription: SubscriptionId(1),
            kind,
            caused_by_write_at: 0,
            trace: None,
        }
    }

    fn item(key: &str, version: Version, index: Option<u64>) -> ResultItem {
        ResultItem { key: Key::of(key), version, doc: Some(doc! { "k" => key }), index }
    }

    #[test]
    fn initial_result_replaces() {
        let mut r = LiveResult::new();
        r.apply(&note(NotificationKind::InitialResult {
            items: vec![item("a", 1, Some(0)), item("b", 1, Some(1))],
        }));
        assert_eq!(r.len(), 2);
        assert_eq!(r.keys(), vec![Key::of("a"), Key::of("b")]);
    }

    #[test]
    fn sorted_edit_script() {
        let mut r = LiveResult::new();
        r.apply(&note(NotificationKind::InitialResult {
            items: vec![item("a", 1, Some(0)), item("b", 1, Some(1)), item("c", 1, Some(2))],
        }));
        // remove b (index 1)
        r.apply(&note(NotificationKind::Change(ChangeItem {
            match_type: MatchType::Remove,
            item: ResultItem { key: Key::of("b"), version: 2, doc: None, index: None },
            old_index: Some(1),
        })));
        assert_eq!(r.keys(), vec![Key::of("a"), Key::of("c")]);
        // add d at 1
        r.apply(&note(NotificationKind::Change(ChangeItem {
            match_type: MatchType::Add,
            item: item("d", 1, Some(1)),
            old_index: None,
        })));
        assert_eq!(r.keys(), vec![Key::of("a"), Key::of("d"), Key::of("c")]);
        // move a from 0 to 2
        r.apply(&note(NotificationKind::Change(ChangeItem {
            match_type: MatchType::ChangeIndex,
            item: item("a", 2, Some(2)),
            old_index: Some(0),
        })));
        assert_eq!(r.keys(), vec![Key::of("d"), Key::of("c"), Key::of("a")]);
        // change c in place
        r.apply(&note(NotificationKind::Change(ChangeItem {
            match_type: MatchType::Change,
            item: item("c", 5, Some(1)),
            old_index: None,
        })));
        assert_eq!(r.entries()[1].version, 5);
    }

    #[test]
    fn unsorted_membership_by_key() {
        let mut r = LiveResult::new();
        r.apply(&note(NotificationKind::InitialResult { items: vec![item("a", 1, None)] }));
        r.apply(&note(NotificationKind::Change(ChangeItem {
            match_type: MatchType::Add,
            item: item("b", 1, None),
            old_index: None,
        })));
        r.apply(&note(NotificationKind::Change(ChangeItem {
            match_type: MatchType::Change,
            item: item("a", 2, None),
            old_index: None,
        })));
        r.apply(&note(NotificationKind::Change(ChangeItem {
            match_type: MatchType::Remove,
            item: ResultItem { key: Key::of("b"), version: 2, doc: None, index: None },
            old_index: None,
        })));
        assert_eq!(r.keys(), vec![Key::of("a")]);
        assert_eq!(r.entries()[0].version, 2);
    }

    #[test]
    fn error_marks_degraded_until_next_data() {
        let mut r = LiveResult::new();
        r.apply(&note(NotificationKind::InitialResult { items: vec![item("a", 1, Some(0))] }));
        r.apply(&note(NotificationKind::Error(invalidb_common::MaintenanceError {
            reason: "slack exhausted".into(),
        })));
        assert!(r.is_degraded());
        assert_eq!(r.len(), 1, "keeps last valid state");
        r.apply(&note(NotificationKind::Change(ChangeItem {
            match_type: MatchType::Add,
            item: item("b", 1, Some(1)),
            old_index: None,
        })));
        assert!(!r.is_degraded());
    }
}
