//! The application server (a.k.a. the *InvaliDB client*, §5/§7).
//!
//! Client applications never talk to the database or the InvaliDB cluster
//! directly; they talk to an [`AppServer`], which:
//!
//! * executes **pull-based queries** against the primary store and **writes**
//!   on behalf of clients, forwarding versioned after-images to the cluster
//!   on every write (the `findAndModify` pattern, §5.4);
//! * turns **push-based subscriptions** into cluster messages: it executes
//!   the rewritten bootstrap query, computes and memoizes the query hash
//!   from the *normalized* query attributes, and relays change
//!   notifications back to subscribed clients;
//! * keeps subscriptions alive with periodic **TTL extensions** and
//!   supervises cluster **heartbeats**, terminating subscriptions with a
//!   connection error when the cluster goes silent;
//! * answers **query renewal requests** (sorted-query maintenance errors)
//!   by re-executing the rewritten query — throttled by a token-bucket
//!   *poll frequency rate limit* so the load inflicted on the database
//!   stays predictable and configurable (§5.2).

mod coalesce;
mod error;
mod rate;
mod result;
mod server;

pub use coalesce::collapse;
pub use error::Error;
pub use rate::TokenBucket;
pub use result::LiveResult;
pub use server::{
    AppServer, AppServerConfig, AppServerConfigBuilder, ClientEvent, Events, Subscription,
};
