//! Notification coalescing — an *extension* implementing §8.1's client-
//! performance direction: "collapsing write operations and change
//! notifications to mitigate write hotspots", for consumers on weak devices
//! or metered links.
//!
//! [`collapse`] reduces a batch of change notifications to its *net effect*:
//! for every key only the final state survives, intermediate hot-key churn
//! disappears, and add→remove pairs cancel entirely. Aggregate updates
//! collapse to the latest value. Events carrying sorted-query indices pass
//! through untouched — index-based edit scripts are sequential and must not
//! be reordered; hotspot mitigation for sorted queries happens naturally,
//! since only window-crossing writes reach the client at all.

use crate::server::ClientEvent;
use invalidb_common::{ChangeItem, Key, MatchType};

#[derive(Clone, Copy, PartialEq)]
enum Net {
    /// Entered the result within this batch.
    Added,
    /// Was in the result before the batch and changed.
    Changed,
    /// Was in the result before the batch and left.
    Removed,
}

struct KeyState {
    net: Net,
    latest: ChangeItem,
}

/// Collapses a batch of client events to its net effect. Ordering among
/// surviving events follows each key's last occurrence.
pub fn collapse(events: Vec<ClientEvent>) -> Vec<ClientEvent> {
    let mut out: Vec<ClientEvent> = Vec::new();
    // (key, state) in last-touched order; batches are small, linear is fine.
    let mut keys: Vec<(Key, KeyState)> = Vec::new();
    let mut latest_aggregate: Option<ClientEvent> = None;
    for ev in events {
        match ev {
            ClientEvent::Change(c) if c.item.index.is_none() && c.old_index.is_none() => {
                let key = c.item.key.clone();
                let pos = keys.iter().position(|(k, _)| *k == key);
                match pos {
                    None => {
                        let net = match c.match_type {
                            MatchType::Add => Net::Added,
                            MatchType::Remove => Net::Removed,
                            _ => Net::Changed,
                        };
                        keys.push((key, KeyState { net, latest: c }));
                    }
                    Some(i) => {
                        let (_, state) = &mut keys[i];
                        state.net = match (state.net, c.match_type) {
                            // Appeared and disappeared within the batch:
                            // nothing to tell the client.
                            (Net::Added, MatchType::Remove) => {
                                keys.remove(i);
                                continue;
                            }
                            (Net::Added, _) => Net::Added,
                            (Net::Removed, MatchType::Add) => Net::Changed,
                            (Net::Removed, _) => Net::Removed,
                            (Net::Changed, MatchType::Remove) => Net::Removed,
                            (Net::Changed, _) => Net::Changed,
                        };
                        state.latest = c;
                        // Move to the back: last-touched order.
                        let entry = keys.remove(i);
                        keys.push(entry);
                    }
                }
            }
            ClientEvent::Aggregate { .. } => latest_aggregate = Some(ev),
            // Initial results, errors, connection loss and index-carrying
            // (sorted) events pass through in place.
            other => out.push(other),
        }
    }
    for (_, state) in keys {
        let mut item = state.latest;
        item.match_type = match state.net {
            Net::Added => MatchType::Add,
            Net::Changed => {
                if item.match_type == MatchType::Remove {
                    MatchType::Remove // Removed→Add handled above; keep safe
                } else {
                    MatchType::Change
                }
            }
            Net::Removed => MatchType::Remove,
        };
        // A net remove reported via an earlier doc-carrying event must not
        // leak content.
        if item.match_type == MatchType::Remove {
            item.item.doc = None;
        }
        out.push(ClientEvent::Change(item));
    }
    if let Some(agg) = latest_aggregate {
        out.push(agg);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::{doc, ResultItem, Value};

    fn change(mt: MatchType, key: &str, version: u64, n: i64) -> ClientEvent {
        ClientEvent::Change(ChangeItem {
            match_type: mt,
            item: ResultItem {
                key: Key::of(key),
                version,
                doc: (mt != MatchType::Remove).then(|| doc! { "n" => n }),
                index: None,
            },
            old_index: None,
        })
    }

    fn kinds(events: &[ClientEvent]) -> Vec<(MatchType, String)> {
        events
            .iter()
            .filter_map(|e| match e {
                ClientEvent::Change(c) => Some((c.match_type, c.item.key.to_string())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn hot_key_churn_collapses_to_one_change() {
        let events = vec![
            change(MatchType::Change, "k", 2, 1),
            change(MatchType::Change, "k", 3, 2),
            change(MatchType::Change, "k", 4, 3),
        ];
        let out = collapse(events);
        assert_eq!(kinds(&out), vec![(MatchType::Change, "\"k\"".into())]);
        match &out[0] {
            ClientEvent::Change(c) => {
                assert_eq!(c.item.version, 4);
                assert_eq!(c.item.doc.as_ref().unwrap().get("n"), Some(&Value::Int(3)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn add_then_remove_cancels() {
        let events = vec![
            change(MatchType::Add, "k", 1, 1),
            change(MatchType::Change, "k", 2, 2),
            change(MatchType::Remove, "k", 3, 0),
        ];
        assert!(collapse(events).is_empty());
    }

    #[test]
    fn add_then_changes_stays_add_with_latest_content() {
        let events = vec![change(MatchType::Add, "k", 1, 1), change(MatchType::Change, "k", 2, 9)];
        let out = collapse(events);
        assert_eq!(kinds(&out), vec![(MatchType::Add, "\"k\"".into())]);
        match &out[0] {
            ClientEvent::Change(c) => {
                assert_eq!(c.item.doc.as_ref().unwrap().get("n"), Some(&Value::Int(9)))
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn remove_then_add_becomes_change() {
        let events = vec![change(MatchType::Remove, "k", 2, 0), change(MatchType::Add, "k", 3, 7)];
        let out = collapse(events);
        assert_eq!(kinds(&out), vec![(MatchType::Change, "\"k\"".into())]);
    }

    #[test]
    fn change_then_remove_is_remove_without_content() {
        let events = vec![change(MatchType::Change, "k", 2, 5), change(MatchType::Remove, "k", 3, 0)];
        let out = collapse(events);
        assert_eq!(kinds(&out), vec![(MatchType::Remove, "\"k\"".into())]);
        match &out[0] {
            ClientEvent::Change(c) => assert!(c.item.doc.is_none()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn independent_keys_keep_last_touched_order() {
        let events = vec![
            change(MatchType::Add, "a", 1, 1),
            change(MatchType::Add, "b", 1, 1),
            change(MatchType::Change, "a", 2, 2),
        ];
        let out = collapse(events);
        assert_eq!(
            kinds(&out),
            vec![(MatchType::Add, "\"b\"".into()), (MatchType::Add, "\"a\"".into())]
        );
    }

    #[test]
    fn aggregates_collapse_to_latest() {
        let events = vec![
            ClientEvent::Aggregate { value: Value::Int(1), count: 1 },
            ClientEvent::Aggregate { value: Value::Int(5), count: 3 },
        ];
        let out = collapse(events);
        assert_eq!(out, vec![ClientEvent::Aggregate { value: Value::Int(5), count: 3 }]);
    }

    #[test]
    fn sorted_events_pass_through_untouched() {
        let indexed = ClientEvent::Change(ChangeItem {
            match_type: MatchType::Add,
            item: ResultItem { key: Key::of("k"), version: 1, doc: Some(doc! {}), index: Some(0) },
            old_index: None,
        });
        let out = collapse(vec![indexed.clone(), indexed.clone()]);
        assert_eq!(out.len(), 2, "index-based edit scripts are never collapsed");
    }

    #[test]
    fn initial_and_errors_pass_through_in_place() {
        let events = vec![
            ClientEvent::Initial(vec![]),
            change(MatchType::Add, "k", 1, 1),
            ClientEvent::MaintenanceError("x".into()),
        ];
        let out = collapse(events);
        assert!(matches!(out[0], ClientEvent::Initial(_)));
        assert!(matches!(out[1], ClientEvent::MaintenanceError(_)));
        assert!(matches!(out[2], ClientEvent::Change(_)));
    }
}
