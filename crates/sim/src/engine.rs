//! The discrete-event engine.
//!
//! Each node is a FIFO single-server queue, so it suffices to process
//! *arrivals* in global time order and track each node's next-free time:
//! `completion = max(arrival, next_free) + service`. Downstream arrivals are
//! scheduled at `completion + hop_delay`.

use crate::model::SimParams;
use invalidb_common::Histogram;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Outcome of one simulation run.
#[derive(Debug)]
pub struct SimResult {
    /// End-to-end notification latency in microseconds.
    pub latency_us: Histogram,
    /// Peak utilization across matching nodes (busy time / duration).
    pub max_matching_utilization: f64,
    /// Notifications delivered.
    pub notifications: u64,
    /// Writes injected.
    pub writes: u64,
}

impl SimResult {
    /// 99th-percentile latency in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.latency_us.quantile(0.99) as f64 / 1_000.0
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.latency_us.mean() / 1_000.0
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Stage {
    /// Write leaves the client (Quaestor: via app server first).
    AppServerIn,
    /// Write arrives at a write-ingestion node.
    Ingest,
    /// Write arrives at matching node `node` (grid task index).
    Match { node: usize },
    /// Notification arrives at the notifier.
    Notifier,
    /// Notification passes back through the app server (Quaestor).
    AppServerOut,
    /// Notification reaches the measuring client.
    Client,
}

#[derive(Debug, Clone, Copy)]
struct Ev {
    at_us: u64,
    seq: u64,
    stage: Stage,
    /// Origin write timestamp (µs) for latency measurement; `u64::MAX`
    /// marks unmeasured traffic.
    written_at_us: u64,
    /// Matching node that will emit the notification for this write, if any.
    notify_from: Option<usize>,
    /// Write partition (column) of this write.
    wp: usize,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        (self.at_us, self.seq) == (other.at_us, other.seq)
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_us, self.seq).cmp(&(other.at_us, other.seq))
    }
}

/// Runs one deterministic simulation.
pub fn simulate(params: &SimParams) -> SimResult {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let c = &params.costs;
    let qp = params.query_partitions;
    let wp = params.write_partitions;
    let n_match = qp * wp;
    let duration_us = (params.duration_s * 1e6) as u64;
    let warmup_us = (params.duration_s * params.warmup_fraction * 1e6) as u64;

    // next_free times (µs) per server.
    let mut free_app: u64 = 0;
    let mut free_ingest = vec![0u64; c.ingest_nodes.max(1)];
    let mut free_match = vec![0u64; n_match];
    let mut busy_match = vec![0u64; n_match];
    let mut free_notifier: u64 = 0;

    let mut heap: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
    let mut seq: u64 = 0;

    // Pre-generate Poisson write arrivals.
    let mut t = 0.0f64;
    let mut writes = 0u64;
    let notify_prob = (params.matches_per_sec / params.writes_per_sec).clamp(0.0, 1.0);
    while (t as u64) < duration_us {
        let gap = -((1.0 - rng.gen::<f64>()).ln()) / params.writes_per_sec * 1e6;
        t += gap;
        let at = t as u64;
        if at >= duration_us {
            break;
        }
        writes += 1;
        let measured = rng.gen::<f64>() < notify_prob;
        let column = rng.gen_range(0..wp);
        let notify_from = measured.then(|| rng.gen_range(0..qp) * wp + column);
        // Client → (WebSocket to app server | event layer to ingest): one
        // network hop either way; Quaestor then adds the app-server stage
        // and the app-server→event-layer hop on top (≈5 ms total, §7.3).
        let stage = if params.with_app_server { Stage::AppServerIn } else { Stage::Ingest };
        let entry_at = at + hop(&mut rng, c);
        heap.push(Reverse(Ev {
            at_us: entry_at,
            seq: bump(&mut seq),
            stage,
            written_at_us: if measured && at >= warmup_us { at } else { u64::MAX },
            notify_from,
            wp: column,
        }));
    }

    let queries_per_node = params.queries_per_node();
    let match_service_us = ((c.base_overhead_s + c.write_overhead_s + queries_per_node * c.match_cost_s)
        * 1e6)
        .max(1.0) as u64;
    let ingest_service_us = (c.ingest_cost_s * 1e6).max(1.0) as u64;
    let notifier_service_us = (c.notifier_cost_s * 1e6).max(1.0) as u64;
    let app_service_us = (c.app_server_cost_s * 1e6).max(1.0) as u64;

    let mut latency = Histogram::new();
    let mut notifications = 0u64;
    let mut rr_ingest = 0usize;

    while let Some(Reverse(ev)) = heap.pop() {
        match ev.stage {
            Stage::AppServerIn => {
                let done = serve(&mut free_app, ev.at_us, app_service_us);
                heap.push(Reverse(Ev {
                    at_us: done + hop(&mut rng, c),
                    seq: bump(&mut seq),
                    stage: Stage::Ingest,
                    ..ev
                }));
            }
            Stage::Ingest => {
                let node = rr_ingest % free_ingest.len();
                rr_ingest += 1;
                let done = serve(&mut free_ingest[node], ev.at_us, ingest_service_us);
                // Fan out to the full matching column (intra-cluster hop is
                // cheap: half an event-layer hop).
                for row in 0..qp {
                    let node = row * wp + ev.wp;
                    heap.push(Reverse(Ev {
                        at_us: done + hop(&mut rng, c),
                        seq: bump(&mut seq),
                        stage: Stage::Match { node },
                        ..ev
                    }));
                }
            }
            Stage::Match { node } => {
                let done = serve(&mut free_match[node], ev.at_us, match_service_us);
                busy_match[node] += match_service_us;
                if ev.notify_from == Some(node) {
                    heap.push(Reverse(Ev {
                        at_us: done + hop(&mut rng, c),
                        seq: bump(&mut seq),
                        stage: Stage::Notifier,
                        ..ev
                    }));
                }
            }
            Stage::Notifier => {
                let done = serve(&mut free_notifier, ev.at_us, notifier_service_us);
                let next = if params.with_app_server { Stage::AppServerOut } else { Stage::Client };
                heap.push(Reverse(Ev {
                    at_us: done + hop(&mut rng, c),
                    seq: bump(&mut seq),
                    stage: next,
                    ..ev
                }));
            }
            Stage::AppServerOut => {
                let done = serve(&mut free_app, ev.at_us, app_service_us);
                heap.push(Reverse(Ev {
                    at_us: done + hop(&mut rng, c),
                    seq: bump(&mut seq),
                    stage: Stage::Client,
                    ..ev
                }));
            }
            Stage::Client => {
                if ev.written_at_us != u64::MAX {
                    latency.record(ev.at_us.saturating_sub(ev.written_at_us));
                    notifications += 1;
                }
            }
        }
    }

    let max_util = busy_match.iter().map(|&b| b as f64 / duration_us as f64).fold(0.0f64, f64::max);
    SimResult { latency_us: latency, max_matching_utilization: max_util, notifications, writes }
}

fn bump(seq: &mut u64) -> u64 {
    *seq += 1;
    *seq
}

fn serve(next_free: &mut u64, arrival: u64, service: u64) -> u64 {
    let start = arrival.max(*next_free);
    let done = start + service;
    *next_free = done;
    done
}

fn hop(rng: &mut StdRng, c: &crate::model::CostModel) -> u64 {
    let jitter = -(1.0 - rng.gen::<f64>()).ln() * c.hop_jitter_mean_s;
    let pause = if rng.gen::<f64>() < c.pause_prob {
        -(1.0 - rng.gen::<f64>()).ln() * c.pause_mean_s
    } else {
        0.0
    };
    ((c.hop_base_s + jitter + pause) * 1e6) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SimParams;

    #[test]
    fn unloaded_latency_matches_paper_ballpark() {
        // Table 3: ~9 ms average, p99 15–20 ms, at moderate load.
        let mut p = SimParams::new(1, 1);
        p.queries = 1_000;
        p.writes_per_sec = 500.0;
        let r = simulate(&p);
        assert!(r.notifications > 50, "notifications: {}", r.notifications);
        assert!((6.0..13.0).contains(&r.mean_ms()), "mean {} ms", r.mean_ms());
        assert!((10.0..25.0).contains(&r.p99_ms()), "p99 {} ms", r.p99_ms());
    }

    #[test]
    fn single_node_saturates_between_1500_and_2000_queries() {
        // §6.2: 1 QP managed 1 500 queries and failed at 2 000 (1k writes/s).
        let mut ok = SimParams::new(1, 1);
        ok.queries = 1_500;
        ok.duration_s = 20.0;
        let r = simulate(&ok);
        assert!(r.p99_ms() < 50.0, "1500 queries sustainable, p99 {}", r.p99_ms());

        let mut over = SimParams::new(1, 1);
        over.queries = 2_200;
        over.duration_s = 20.0;
        let r = simulate(&over);
        assert!(r.p99_ms() > 50.0, "2200 queries must saturate, p99 {}", r.p99_ms());
        assert!(r.max_matching_utilization > 0.99);
    }

    #[test]
    fn more_query_partitions_sustain_more_queries() {
        // Same per-node share → same comfort, double total queries.
        for (qp, queries) in [(1usize, 1_500u64), (2, 3_000), (4, 6_000)] {
            let mut p = SimParams::new(qp, 1);
            p.queries = queries;
            let r = simulate(&p);
            assert!(r.p99_ms() < 30.0, "qp={qp} queries={queries}: p99 {}", r.p99_ms());
        }
    }

    #[test]
    fn more_write_partitions_sustain_more_throughput() {
        // §6.3 shape: 1 WP handles ~1.6k writes/s at 1k queries; 4 WP ~4x.
        let mut p1 = SimParams::new(1, 1);
        p1.writes_per_sec = 3_000.0;
        let r = simulate(&p1);
        assert!(r.p99_ms() > 50.0, "1 WP at 3k writes/s saturates, p99 {}", r.p99_ms());

        let mut p4 = SimParams::new(1, 4);
        p4.writes_per_sec = 3_000.0;
        let r = simulate(&p4);
        assert!(r.p99_ms() < 30.0, "4 WP at 3k writes/s comfortable, p99 {}", r.p99_ms());
    }

    #[test]
    fn app_server_adds_constant_overhead() {
        // Figure 6a: Quaestor ≈ standalone + ~5 ms.
        let mut standalone = SimParams::new(4, 1);
        standalone.queries = 4_000;
        let mut quaestor = standalone.clone();
        quaestor.with_app_server = true;
        let s = simulate(&standalone);
        let q = simulate(&quaestor);
        let delta = q.mean_ms() - s.mean_ms();
        assert!((3.0..8.0).contains(&delta), "overhead {delta} ms");
    }

    #[test]
    fn app_server_caps_write_throughput() {
        // Figure 6b: the single app server saturates around 6k writes/s even
        // with 16 write partitions behind it.
        let mut p = SimParams::new(1, 16);
        p.with_app_server = true;
        p.writes_per_sec = 8_000.0;
        p.duration_s = 20.0;
        let r = simulate(&p);
        assert!(r.p99_ms() > 50.0, "8k writes/s through one app server saturates, p99 {}", r.p99_ms());

        let mut direct = SimParams::new(1, 16);
        direct.writes_per_sec = 8_000.0;
        let r = simulate(&direct);
        assert!(r.p99_ms() < 30.0, "standalone cluster is fine at 8k/s, p99 {}", r.p99_ms());
    }

    #[test]
    fn deterministic_given_seed() {
        let p = SimParams::new(2, 2);
        let a = simulate(&p);
        let b = simulate(&p);
        assert_eq!(a.notifications, b.notifications);
        assert_eq!(a.latency_us.quantile(0.99), b.latency_us.quantile(0.99));
        let mut p2 = p.clone();
        p2.seed = 99;
        let c = simulate(&p2);
        assert_ne!(
            (c.notifications, c.latency_us.mean().to_bits()),
            (a.notifications, a.latency_us.mean().to_bits()),
            "different seeds give different runs"
        );
    }
}
