//! Discrete-event simulation of an InvaliDB cluster.
//!
//! The paper's evaluation (§6) ran 1–16-partition clusters on a five-machine
//! testbed. Reproducing those sweeps live would require dozens of isolated
//! cores; this simulator substitutes a calibrated queueing model of the
//! filtering stage so the *shape* of the results — linear read/write
//! scalability, SLA saturation knees, flat latency across cluster sizes, and
//! the app-server overhead of Figure 6 — can be regenerated on one laptop.
//! (See DESIGN.md for the substitution rationale; the live cluster in
//! `invalidb-core` validates absolute behaviour at small scale.)
//!
//! ## Model
//!
//! Every node is a FIFO single-server queue. A write takes the path
//!
//! ```text
//! client → [app server]* → event layer → write-ingest → matching column
//!          (QP nodes in parallel) → notifier → event layer → [app server]* → client
//! ```
//!
//! (* only in Quaestor mode, Figure 6). Matching a write on a node holding
//! `q` queries costs `base + write_overhead + q · match_cost` — the
//! `write_overhead` term models per-write (de)serialization and parsing,
//! which the paper identifies as the reason write-heavy workloads saturate
//! slightly earlier than read-heavy ones (§6.3). Event-layer hops add a
//! fixed base plus exponential jitter. Measured latency is end-to-end for
//! notification-producing writes, like the paper's benchmark client.

pub mod engine;
pub mod model;
pub mod sweep;

pub use engine::{simulate, SimResult};
pub use model::{CostModel, SimParams};
pub use sweep::{max_sustainable_queries, max_sustainable_writes, SlaSearch};
