//! Simulation parameters and the calibrated cost model.

/// Service-time and network constants, in seconds.
///
/// Defaults are calibrated against the paper's measurements: a single
/// matching node saturates around 1 500–1 800 queries at 1 000 writes/s
/// (§6.2), a 16-write-partition cluster sustains ≈26 000 writes/s at 1 000
/// queries (§6.3), unloaded end-to-end latency averages ≈9 ms with p99
/// ≈15–17 ms (Table 3), one application server caps at ≈6 000 writes/s and
/// adds ≈5 ms (§7.3).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// CPU cost of evaluating one query's predicates against an after-image.
    pub match_cost_s: f64,
    /// Per-write overhead on a matching node: deserializing and parsing the
    /// after-image (§6.3's write-heavy penalty).
    pub write_overhead_s: f64,
    /// Fixed per-message overhead on a matching node.
    pub base_overhead_s: f64,
    /// Per-write cost on a (stateless) ingestion node.
    pub ingest_cost_s: f64,
    /// Number of write-ingestion nodes (paper: 4).
    pub ingest_nodes: usize,
    /// Per-notification cost at the notifier.
    pub notifier_cost_s: f64,
    /// Fixed one-way event-layer hop delay.
    pub hop_base_s: f64,
    /// Mean of the exponential jitter added per hop.
    pub hop_jitter_mean_s: f64,
    /// Probability that a hop suffers a stall (JVM-GC-like pause, §5.4).
    pub pause_prob: f64,
    /// Mean of the exponential stall duration.
    pub pause_mean_s: f64,
    /// Per-message service time at an application server (Quaestor mode).
    pub app_server_cost_s: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            match_cost_s: 5.0e-7,
            write_overhead_s: 4.0e-5,
            base_overhead_s: 1.0e-5,
            ingest_cost_s: 3.0e-5,
            ingest_nodes: 4,
            notifier_cost_s: 1.0e-5,
            hop_base_s: 1.5e-3,
            hop_jitter_mean_s: 7.0e-4,
            pause_prob: 0.006,
            pause_mean_s: 5.0e-3,
            app_server_cost_s: 1.55e-4,
        }
    }
}

/// One simulation run's configuration.
#[derive(Debug, Clone)]
pub struct SimParams {
    /// Query partitions (grid rows).
    pub query_partitions: usize,
    /// Write partitions (grid columns).
    pub write_partitions: usize,
    /// Active real-time queries (spread evenly over query partitions).
    pub queries: u64,
    /// Aggregate write throughput (Poisson arrivals).
    pub writes_per_sec: f64,
    /// Notifications per second (the paper's workload produced ≈17/s —
    /// 1 000 matches per 1-minute run).
    pub matches_per_sec: f64,
    /// Simulated duration in seconds.
    pub duration_s: f64,
    /// Warm-up fraction excluded from latency statistics.
    pub warmup_fraction: f64,
    /// Route traffic through an application server (Figure 6 Quaestor mode).
    pub with_app_server: bool,
    /// RNG seed (runs are fully deterministic).
    pub seed: u64,
    /// Cost model.
    pub costs: CostModel,
}

impl SimParams {
    /// The paper's standard workload shape on a `qp × wp` cluster.
    pub fn new(qp: usize, wp: usize) -> Self {
        Self {
            query_partitions: qp,
            write_partitions: wp,
            queries: 1_000,
            writes_per_sec: 1_000.0,
            matches_per_sec: 17.0,
            duration_s: 10.0,
            warmup_fraction: 0.1,
            with_app_server: false,
            seed: 0xB0A7,
            costs: CostModel::default(),
        }
    }

    /// Queries held by one matching node (queries are hash-partitioned over
    /// rows; the load-relevant figure is the per-node share).
    pub fn queries_per_node(&self) -> f64 {
        self.queries as f64 / self.query_partitions as f64
    }
}
