//! Capacity search: raise load until the 99th-percentile latency exceeds an
//! SLA — the paper's saturation criterion (§6.1).

use crate::engine::simulate;
use crate::model::SimParams;

/// Search configuration.
#[derive(Debug, Clone)]
pub struct SlaSearch {
    /// Latency SLA on the 99th percentile, milliseconds.
    pub sla_p99_ms: f64,
    /// Simulated seconds per probe run.
    pub duration_s: f64,
}

impl Default for SlaSearch {
    fn default() -> Self {
        Self { sla_p99_ms: 30.0, duration_s: 8.0 }
    }
}

/// Largest query count (in `step`-sized increments, like the paper's 500)
/// a configuration sustains under the SLA at fixed write throughput.
pub fn max_sustainable_queries(base: &SimParams, search: &SlaSearch, step: u64, max: u64) -> u64 {
    let mut best = 0;
    let mut queries = step;
    while queries <= max {
        let mut p = base.clone();
        p.queries = queries;
        p.duration_s = search.duration_s;
        let r = simulate(&p);
        if r.p99_ms() <= search.sla_p99_ms && r.notifications > 0 {
            best = queries;
        } else if queries > best + 4 * step {
            break; // well past the knee
        }
        queries += step;
    }
    best
}

/// Largest write throughput (in `step` ops/s increments) a configuration
/// sustains under the SLA at fixed query count.
pub fn max_sustainable_writes(base: &SimParams, search: &SlaSearch, step: f64, max: f64) -> f64 {
    let mut best = 0.0;
    let mut writes = step;
    while writes <= max {
        let mut p = base.clone();
        p.writes_per_sec = writes;
        p.duration_s = search.duration_s;
        let r = simulate(&p);
        if r.p99_ms() <= search.sla_p99_ms && r.notifications > 0 {
            best = writes;
        } else if writes > best + 4.0 * step {
            break;
        }
        writes += step;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_capacity_doubles_with_query_partitions() {
        // Figure 4's headline: doubling QP doubles sustainable queries.
        let search = SlaSearch { sla_p99_ms: 30.0, duration_s: 5.0 };
        let cap1 = max_sustainable_queries(&SimParams::new(1, 1), &search, 500, 6_000);
        let cap2 = max_sustainable_queries(&SimParams::new(2, 1), &search, 500, 12_000);
        assert!((1_000..=2_000).contains(&cap1), "1 QP sustains ~1.5k, got {cap1}");
        let ratio = cap2 as f64 / cap1 as f64;
        assert!((1.6..=2.5).contains(&ratio), "2 QP ≈ 2x 1 QP, got {cap1} -> {cap2}");
    }

    #[test]
    fn write_capacity_doubles_with_write_partitions() {
        let search = SlaSearch { sla_p99_ms: 30.0, duration_s: 5.0 };
        let cap1 = max_sustainable_writes(&SimParams::new(1, 1), &search, 250.0, 8_000.0);
        let cap2 = max_sustainable_writes(&SimParams::new(1, 2), &search, 250.0, 16_000.0);
        assert!(cap1 >= 1_000.0, "1 WP sustains ≥1k writes/s, got {cap1}");
        let ratio = cap2 / cap1;
        assert!((1.6..=2.5).contains(&ratio), "2 WP ≈ 2x 1 WP: {cap1} -> {cap2}");
    }
}
