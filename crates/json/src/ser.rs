//! JSON serializer for [`Value`]/[`Document`].

use invalidb_common::{Document, Value};

/// Serializes a document to a JSON string.
pub fn to_string(doc: &Document) -> String {
    let mut out = String::with_capacity(64);
    write_document(doc, &mut out);
    out
}

/// Serializes a document to JSON bytes.
pub fn to_bytes(doc: &Document) -> Vec<u8> {
    to_string(doc).into_bytes()
}

/// Appends the JSON encoding of a document to `out`.
pub fn write_document(doc: &Document, out: &mut String) {
    out.push('{');
    for (i, (k, v)) in doc.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_string(k, out);
        out.push(':');
        write_value(v, out);
    }
    out.push('}');
}

/// Appends the JSON encoding of a value to `out`.
pub fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let mut buf = itoa_buf();
            out.push_str(write_i64(*i, &mut buf));
        }
        Value::Float(f) => write_float(*f, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(v, out);
            }
            out.push(']');
        }
        Value::Object(doc) => write_document(doc, out),
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_nan() {
        out.push_str("NaN");
    } else if f == f64::INFINITY {
        out.push_str("Infinity");
    } else if f == f64::NEG_INFINITY {
        out.push_str("-Infinity");
    } else {
        // `{:?}` prints the shortest representation that round-trips and
        // always includes a `.` or exponent, preserving the float/int
        // distinction on re-parse (e.g. `2.0`, `1e300`).
        use std::fmt::Write;
        write!(out, "{f:?}").expect("writing to String cannot fail");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("writing to String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// Small stack-allocated i64 formatter to avoid a heap allocation per number.
fn itoa_buf() -> [u8; 20] {
    [0u8; 20]
}

fn write_i64(mut v: i64, buf: &mut [u8; 20]) -> &str {
    if v == 0 {
        return "0";
    }
    let neg = v < 0;
    let mut pos = buf.len();
    // Work on the magnitude in u64 space so i64::MIN does not overflow.
    let mut mag = if neg { (v as i128).unsigned_abs() as u64 } else { v as u64 };
    v = 0;
    let _ = v;
    while mag > 0 {
        pos -= 1;
        buf[pos] = b'0' + (mag % 10) as u8;
        mag /= 10;
    }
    if neg {
        pos -= 1;
        buf[pos] = b'-';
    }
    std::str::from_utf8(&buf[pos..]).expect("digits are ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_value;
    use invalidb_common::doc;

    #[test]
    fn serializes_scalars() {
        let d = doc! {
            "n" => Value::Null,
            "t" => true,
            "i" => 42i64,
            "neg" => -7i64,
            "min" => i64::MIN,
            "f" => 2.5f64,
            "whole" => 2.0f64,
            "s" => "hi",
        };
        let s = to_string(&d);
        assert_eq!(
            s,
            r#"{"n":null,"t":true,"i":42,"neg":-7,"min":-9223372036854775808,"f":2.5,"whole":2.0,"s":"hi"}"#
        );
    }

    #[test]
    fn float_int_distinction_survives_roundtrip() {
        let d = doc! { "a" => 2.0f64, "b" => 2i64 };
        let back = crate::parse::parse_document(&to_string(&d)).unwrap();
        assert_eq!(back.get("a"), Some(&Value::Float(2.0)));
        assert_eq!(back.get("b"), Some(&Value::Int(2)));
    }

    #[test]
    fn escapes_strings() {
        let d = doc! { "s" => "a\"b\\c\n\t\u{1}" };
        let s = to_string(&d);
        assert_eq!(s, r#"{"s":"a\"b\\c\n\t\u0001"}"#);
        let back = crate::parse::parse_document(&s).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn special_floats_roundtrip() {
        for f in [f64::INFINITY, f64::NEG_INFINITY] {
            let mut s = String::new();
            write_value(&Value::Float(f), &mut s);
            assert_eq!(parse_value(&s).unwrap(), Value::Float(f));
        }
        let mut s = String::new();
        write_value(&Value::Float(f64::NAN), &mut s);
        assert!(matches!(parse_value(&s).unwrap(), Value::Float(f) if f.is_nan()));
    }

    #[test]
    fn unicode_passthrough() {
        let d = doc! { "s" => "héllo 😀" };
        let back = crate::parse::parse_document(&to_string(&d)).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn i64_formatter_edge_cases() {
        let mut buf = itoa_buf();
        assert_eq!(write_i64(0, &mut buf), "0");
        let mut buf = itoa_buf();
        assert_eq!(write_i64(i64::MAX, &mut buf), "9223372036854775807");
        let mut buf = itoa_buf();
        assert_eq!(write_i64(i64::MIN, &mut buf), "-9223372036854775808");
    }
}
