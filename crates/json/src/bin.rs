//! Binary document codec — the compact wire encoding for event-layer
//! payloads.
//!
//! The event layer transports *opaque* payloads (§5.3), which is exactly
//! what lets the encoding evolve without touching the broker: this module
//! provides a tag-based, length-prefixed binary encoding of the
//! [`Value`]/[`Document`] model that round-trips losslessly (including the
//! `Int`/`Float` distinction and every `f64` bit pattern) and costs a
//! fraction of the JSON text codec on both sides — no digit formatting on
//! encode, no char-by-char scanning on decode.
//!
//! ## Layout
//!
//! A binary payload is:
//!
//! ```text
//!  offset  size  field
//!  0       4     magic "IVBD"
//!  4       1     codec version (currently 1)
//!  5       ..    object body: entry count (varint), then per entry
//!                key length (varint) + key UTF-8 bytes + value
//! ```
//!
//! Values are one tag byte followed by tag-specific data:
//!
//! | tag  | type   | payload                                        |
//! |------|--------|------------------------------------------------|
//! | 0x00 | null   | —                                              |
//! | 0x01 | false  | —                                              |
//! | 0x02 | true   | —                                              |
//! | 0x03 | int    | zigzag LEB128 varint                           |
//! | 0x04 | float  | 8 bytes, IEEE-754 bits big-endian              |
//! | 0x05 | string | length varint + UTF-8 bytes                    |
//! | 0x06 | array  | count varint + values                          |
//! | 0x07 | object | count varint + (key varint+bytes, value) pairs |
//!
//! The `IVBD` magic cannot collide with the JSON codec: a JSON payload's
//! first non-whitespace byte is always `{` (envelope roots are objects), so
//! [`is_binary`] distinguishes the two codecs from the leading bytes alone
//! and [`crate::payload_to_document`] decodes either transparently.

use crate::error::{JsonError, JsonErrorKind};
use invalidb_common::{Document, Value};
use std::fmt;

/// Leading bytes of every binary payload.
pub const BIN_MAGIC: [u8; 4] = *b"IVBD";

/// Current binary codec version.
pub const BIN_VERSION: u8 = 1;

/// Maximum nesting depth accepted by the decoder — mirrors the JSON
/// parser's `MAX_DEPTH` so neither codec can be used to smuggle a stack
/// overflow past the other.
pub const MAX_DEPTH: usize = 128;

pub(crate) const TAG_NULL: u8 = 0x00;
pub(crate) const TAG_FALSE: u8 = 0x01;
pub(crate) const TAG_TRUE: u8 = 0x02;
pub(crate) const TAG_INT: u8 = 0x03;
pub(crate) const TAG_FLOAT: u8 = 0x04;
pub(crate) const TAG_STRING: u8 = 0x05;
pub(crate) const TAG_ARRAY: u8 = 0x06;
pub(crate) const TAG_OBJECT: u8 = 0x07;

/// Whether `payload` starts like a binary-codec document (magic prefix;
/// a partial prefix of a short payload also counts so torn payloads are
/// routed to the binary decoder's error path rather than the JSON parser).
pub fn is_binary(payload: &[u8]) -> bool {
    let seen = payload.len().min(BIN_MAGIC.len());
    seen > 0 && payload[..seen] == BIN_MAGIC[..seen]
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Encodes a document into `out` (magic + version + object body),
/// appending to whatever is already there.
pub fn encode_document_into(doc: &Document, out: &mut Vec<u8>) {
    out.extend_from_slice(&BIN_MAGIC);
    out.push(BIN_VERSION);
    encode_object_body(doc, out);
}

/// Encodes a document into a fresh buffer.
pub fn encode_document(doc: &Document) -> Vec<u8> {
    // Envelopes are small; 128 covers the common case without a regrow.
    let mut out = Vec::with_capacity(128);
    encode_document_into(doc, &mut out);
    out
}

/// Encodes one value (tag + data) into `out`.
pub fn encode_value_into(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            put_varint(out, zigzag(*i));
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_be_bytes());
        }
        Value::String(s) => {
            out.push(TAG_STRING);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            put_varint(out, items.len() as u64);
            for item in items {
                encode_value_into(item, out);
            }
        }
        Value::Object(doc) => {
            out.push(TAG_OBJECT);
            encode_object_body(doc, out);
        }
    }
}

fn encode_object_body(doc: &Document, out: &mut Vec<u8>) {
    put_varint(out, doc.len() as u64);
    for (key, value) in doc.iter() {
        put_varint(out, key.len() as u64);
        out.extend_from_slice(key.as_bytes());
        encode_value_into(value, out);
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

pub(crate) fn zigzag(i: i64) -> u64 {
    ((i << 1) ^ (i >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Byte pattern an envelope with an embedded trace is guaranteed to
/// contain: key `"trace"` (length-prefixed) followed by the object tag.
const TRACE_NEEDLE: &[u8] = &[5, b't', b'r', b'a', b'c', b'e', TAG_OBJECT];

/// Scans a binary payload for an embedded trace context *without decoding
/// it*: finds the `"trace"` key whose object value starts with an `"id"`
/// integer entry (the layout `TraceContext::to_document` produces) and
/// returns that id. The binary twin of `invalidb-net`'s JSON needle scan —
/// what lets the broker server stamp only sampled envelopes.
pub fn sniff_trace_id(payload: &[u8]) -> Option<i64> {
    let hit = payload.windows(TRACE_NEEDLE.len()).position(|w| w == TRACE_NEEDLE)?;
    let mut r = BinReader { buf: payload, pos: hit + TRACE_NEEDLE.len() };
    let entries = r.varint().ok()?;
    if entries == 0 {
        return None;
    }
    // First entry must be `"id" => Int`.
    if r.take(3).ok()? != [2, b'i', b'd'] {
        return None;
    }
    if r.byte().ok()? != TAG_INT {
        return None;
    }
    Some(unzigzag(r.varint().ok()?))
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Why a binary payload could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinErrorKind {
    /// Payload does not start with [`BIN_MAGIC`].
    BadMagic,
    /// Unsupported codec version.
    BadVersion(u8),
    /// Unknown value tag byte.
    BadTag(u8),
    /// Payload ended inside a field (torn/truncated payload).
    Truncated,
    /// Bytes left over after the root object.
    TrailingBytes,
    /// A string or key was not valid UTF-8.
    BadUtf8,
    /// Nesting exceeded [`MAX_DEPTH`].
    TooDeep,
    /// A varint ran past 10 bytes (corrupt length).
    BadVarint,
}

/// A binary decode error with the byte offset it was detected at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinError {
    /// What went wrong.
    pub kind: BinErrorKind,
    /// Byte offset into the payload.
    pub offset: usize,
}

impl BinError {
    fn new(kind: BinErrorKind, offset: usize) -> Self {
        BinError { kind, offset }
    }
}

impl fmt::Display for BinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            BinErrorKind::BadMagic => "bad magic".to_string(),
            BinErrorKind::BadVersion(v) => format!("unsupported codec version {v}"),
            BinErrorKind::BadTag(t) => format!("unknown value tag {t:#04x}"),
            BinErrorKind::Truncated => "payload truncated mid-field".to_string(),
            BinErrorKind::TrailingBytes => "trailing bytes after root object".to_string(),
            BinErrorKind::BadUtf8 => "string is not valid UTF-8".to_string(),
            BinErrorKind::TooDeep => "nesting too deep".to_string(),
            BinErrorKind::BadVarint => "varint overflow".to_string(),
        };
        write!(f, "binary codec error at byte {}: {what}", self.offset)
    }
}

impl std::error::Error for BinError {}

impl From<BinError> for JsonError {
    // The payload-level API reports one error type for both codecs; binary
    // failures map onto the closest JSON kind, keeping the byte offset.
    fn from(e: BinError) -> JsonError {
        let kind = match e.kind {
            BinErrorKind::BadUtf8 => JsonErrorKind::InvalidUtf8,
            BinErrorKind::TooDeep => JsonErrorKind::TooDeep,
            BinErrorKind::TrailingBytes => JsonErrorKind::TrailingInput,
            _ => JsonErrorKind::UnexpectedEof,
        };
        JsonError::new(kind, e.offset)
    }
}

/// Decodes a binary payload (as produced by [`encode_document`]) back into
/// a [`Document`]. The input is borrowed; only strings and containers
/// allocate. Never panics on malformed input — truncation, bad tags, and
/// corrupt varints all surface as [`BinError`]s.
pub fn decode_document(payload: &[u8]) -> Result<Document, BinError> {
    let mut r = BinReader { buf: payload, pos: 0 };
    let magic = r.take(4).map_err(|e| BinError::new(BinErrorKind::BadMagic, e.offset))?;
    if magic != BIN_MAGIC {
        return Err(BinError::new(BinErrorKind::BadMagic, 0));
    }
    let version = r.byte()?;
    if version != BIN_VERSION {
        return Err(BinError::new(BinErrorKind::BadVersion(version), 4));
    }
    let doc = r.object_body(0)?;
    if r.pos != payload.len() {
        return Err(BinError::new(BinErrorKind::TrailingBytes, r.pos));
    }
    Ok(doc)
}

pub(crate) struct BinReader<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> BinReader<'a> {
    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        if self.buf.len() - self.pos < n {
            return Err(BinError::new(BinErrorKind::Truncated, self.pos));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn byte(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn varint(&mut self) -> Result<u64, BinError> {
        let start = self.pos;
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(BinError::new(BinErrorKind::BadVarint, start));
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// A varint used as a length/count: additionally bounded by the bytes
    /// actually remaining, so a corrupt huge count fails fast instead of
    /// attempting a giant allocation.
    pub(crate) fn len_varint(&mut self) -> Result<usize, BinError> {
        let start = self.pos;
        let v = self.varint()?;
        if v > (self.buf.len() - self.pos) as u64 {
            return Err(BinError::new(BinErrorKind::Truncated, start));
        }
        Ok(v as usize)
    }

    pub(crate) fn str(&mut self) -> Result<String, BinError> {
        let len = self.len_varint()?;
        let start = self.pos;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| BinError::new(BinErrorKind::BadUtf8, start))
    }

    pub(crate) fn object_body(&mut self, depth: usize) -> Result<Document, BinError> {
        if depth > MAX_DEPTH {
            return Err(BinError::new(BinErrorKind::TooDeep, self.pos));
        }
        // A non-empty entry costs ≥ 3 bytes; `len_varint` bounded the count
        // by the remaining bytes, so this capacity cannot be DoS-sized.
        let count = self.len_varint()?;
        let mut doc = Document::with_capacity(count);
        for _ in 0..count {
            let key = self.str()?;
            let value = self.value(depth)?;
            doc.insert(key, value);
        }
        Ok(doc)
    }

    pub(crate) fn value(&mut self, depth: usize) -> Result<Value, BinError> {
        if depth > MAX_DEPTH {
            return Err(BinError::new(BinErrorKind::TooDeep, self.pos));
        }
        let at = self.pos;
        Ok(match self.byte()? {
            TAG_NULL => Value::Null,
            TAG_FALSE => Value::Bool(false),
            TAG_TRUE => Value::Bool(true),
            TAG_INT => Value::Int(unzigzag(self.varint()?)),
            TAG_FLOAT => {
                let b = self.take(8)?;
                Value::Float(f64::from_bits(u64::from_be_bytes(b.try_into().expect("8 bytes"))))
            }
            TAG_STRING => Value::String(self.str()?),
            TAG_ARRAY => {
                let count = self.len_varint()?;
                let mut items = Vec::with_capacity(count);
                for _ in 0..count {
                    items.push(self.value(depth + 1)?);
                }
                Value::Array(items)
            }
            TAG_OBJECT => Value::Object(self.object_body(depth + 1)?),
            other => return Err(BinError::new(BinErrorKind::BadTag(other), at)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::doc;

    fn sample() -> Document {
        doc! {
            "name" => "ada",
            "age" => 36i64,
            "negative" => -42i64,
            "score" => 1.5f64,
            "ok" => true,
            "missing" => Value::Null,
            "tags" => vec![Value::from("x"), Value::Null, Value::from(false)],
            "nested" => doc! { "a" => doc!{ "b" => i64::MIN }, "empty" => Document::new() },
        }
    }

    #[test]
    fn roundtrip() {
        let d = sample();
        let bytes = encode_document(&d);
        assert!(is_binary(&bytes));
        assert_eq!(decode_document(&bytes).unwrap(), d);
    }

    #[test]
    fn empty_document_roundtrips() {
        let d = Document::new();
        assert_eq!(decode_document(&encode_document(&d)).unwrap(), d);
    }

    #[test]
    fn int_float_distinction_survives() {
        let d = doc! { "i" => 1i64, "f" => 1.0f64 };
        let back = decode_document(&encode_document(&d)).unwrap();
        assert_eq!(back.get("i"), Some(&Value::Int(1)));
        assert_eq!(back.get("f"), Some(&Value::Float(1.0)));
    }

    #[test]
    fn float_bits_survive() {
        for f in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, f64::MIN_POSITIVE] {
            let d = doc! { "f" => f };
            let back = decode_document(&encode_document(&d)).unwrap();
            match back.get("f") {
                Some(Value::Float(g)) => assert_eq!(g.to_bits(), f.to_bits()),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn int_extremes_roundtrip() {
        for i in [i64::MIN, i64::MAX, 0, -1, 1, 127, -128] {
            let d = doc! { "i" => i };
            assert_eq!(decode_document(&encode_document(&d)).unwrap().get("i"), Some(&Value::Int(i)));
        }
    }

    #[test]
    fn unicode_keys_and_strings() {
        let d = doc! { "ключ" => "значение", "🦀" => "crab" };
        assert_eq!(decode_document(&encode_document(&d)).unwrap(), d);
    }

    #[test]
    fn every_truncation_errors_never_panics() {
        let bytes = encode_document(&sample());
        for cut in 0..bytes.len() {
            assert!(decode_document(&bytes[..cut]).is_err(), "cut at {cut} must error");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_document(&sample());
        bytes.push(0x00);
        assert_eq!(decode_document(&bytes).unwrap_err().kind, BinErrorKind::TrailingBytes);
    }

    #[test]
    fn bad_version_and_magic_rejected() {
        let mut bytes = encode_document(&doc! {});
        bytes[4] = 9;
        assert_eq!(decode_document(&bytes).unwrap_err().kind, BinErrorKind::BadVersion(9));
        let mut bytes = encode_document(&doc! {});
        bytes[0] = b'X';
        assert_eq!(decode_document(&bytes).unwrap_err().kind, BinErrorKind::BadMagic);
    }

    #[test]
    fn corrupt_count_fails_fast() {
        // Object body claiming u64::MAX entries must not allocate.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&BIN_MAGIC);
        bytes.push(BIN_VERSION);
        bytes.extend_from_slice(&[0xFF; 10]); // varint overflow
        assert!(decode_document(&bytes).is_err());
    }

    #[test]
    fn json_payload_is_not_binary() {
        assert!(!is_binary(b"{\"a\":1}"));
        assert!(!is_binary(b""));
        assert!(is_binary(b"IV")); // torn binary prefix routes to binary
        assert!(is_binary(&encode_document(&doc! {})));
    }

    #[test]
    fn trace_id_sniffing() {
        use invalidb_common::TraceContext;
        let trace = TraceContext::start(-7i64 as u64);
        let mut d = doc! { "op" => "write", "n" => 1i64 };
        d.insert("trace", trace.to_document());
        let bytes = encode_document(&d);
        assert_eq!(sniff_trace_id(&bytes), Some(-7));
        // Untraced payloads miss.
        assert_eq!(sniff_trace_id(&encode_document(&doc! { "op" => "write" })), None);
        // A *string* "trace" is not an embedded trace object.
        assert_eq!(sniff_trace_id(&encode_document(&doc! { "trace" => "zzz" })), None);
    }

    #[test]
    fn deep_nesting_rejected() {
        let mut v = Value::Null;
        for _ in 0..(MAX_DEPTH + 2) {
            v = Value::Array(vec![v]);
        }
        let mut d = Document::new();
        d.insert("deep", v);
        let bytes = encode_document(&d);
        assert_eq!(decode_document(&bytes).unwrap_err().kind, BinErrorKind::TooDeep);
    }
}
