//! JSON text codec for the InvaliDB document model.
//!
//! The event layer transports *entirely opaque payloads* (§5.3); this crate
//! provides the wire format that application servers and the InvaliDB
//! cluster agree on: documents are serialized to JSON text and parsed back.
//! Serialization cost is part of what the paper measures (§6.3 attributes
//! the slightly sublinear write scalability to per-write (de)serialization
//! overhead), so the codec is implemented honestly rather than bypassed with
//! in-process references.
//!
//! Deviations from strict JSON (both documented and round-trip safe):
//!
//! * `NaN`, `Infinity` and `-Infinity` are accepted and produced as bare
//!   tokens so that the full [`Value`](invalidb_common::Value) float domain round-trips;
//! * integers and floats are distinct: a number without `.`/`e`/`E` that
//!   fits `i64` parses as [`Value::Int`](invalidb_common::Value::Int), anything else as [`Value::Float`](invalidb_common::Value::Float);
//!   the serializer always prints floats with a fractional part or exponent.

mod error;
mod parse;
mod ser;

pub use error::{JsonError, JsonErrorKind};
pub use parse::{parse_document, parse_value, Parser};
pub use ser::{to_bytes, to_string, write_document, write_value};

use bytes::Bytes;
use invalidb_common::Document;

/// Serializes a document and wraps it in [`Bytes`] for the event layer.
pub fn document_to_payload(doc: &Document) -> Bytes {
    Bytes::from(to_bytes(doc))
}

/// Parses an event-layer payload back into a document.
pub fn payload_to_document(payload: &Bytes) -> Result<Document, JsonError> {
    let text =
        std::str::from_utf8(payload).map_err(|_| JsonError::new(JsonErrorKind::InvalidUtf8, 0))?;
    parse_document(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::{doc, Value};

    #[test]
    fn payload_roundtrip() {
        let d = doc! {
            "name" => "ada",
            "age" => 36i64,
            "score" => 1.5f64,
            "tags" => vec![Value::from("x"), Value::Null, Value::from(true)],
            "nested" => doc! { "a" => doc!{ "b" => 1i64 } },
        };
        let payload = document_to_payload(&d);
        let back = payload_to_document(&payload).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn invalid_utf8_payload_rejected() {
        let payload = Bytes::from_static(&[0xff, 0xfe, b'{']);
        assert!(payload_to_document(&payload).is_err());
    }
}
