//! Event-layer payload codecs for the InvaliDB document model.
//!
//! The event layer transports *entirely opaque payloads* (§5.3); this crate
//! provides the wire formats that application servers and the InvaliDB
//! cluster agree on. Two codecs share one payload namespace:
//!
//! * **JSON text** — the original, human-readable encoding (and the
//!   fallback every peer understands). Serialization cost is part of what
//!   the paper measures (§6.3 attributes the slightly sublinear write
//!   scalability to per-write (de)serialization overhead), so the codec is
//!   implemented honestly rather than bypassed with in-process references.
//! * **Binary** ([`bin`]) — a tag-based, length-prefixed encoding behind
//!   the `IVBD` magic, negotiated per connection via a `Hello` capability
//!   bit in `invalidb-net`. Much cheaper on both sides of the wire.
//!
//! [`payload_to_document`] sniffs the codec from the leading bytes: binary
//! payloads start with `IVBD`, JSON document payloads start with `{` (the
//! root is always an object), so the two can never be confused and old
//! JSON payloads remain decodable forever.
//!
//! Deviations from strict JSON (both documented and round-trip safe):
//!
//! * `NaN`, `Infinity` and `-Infinity` are accepted and produced as bare
//!   tokens so that the full [`Value`](invalidb_common::Value) float domain round-trips;
//! * integers and floats are distinct: a number without `.`/`e`/`E` that
//!   fits `i64` parses as [`Value::Int`](invalidb_common::Value::Int), anything else as [`Value::Float`](invalidb_common::Value::Float);
//!   the serializer always prints floats with a fractional part or exponent.

pub mod bin;
mod error;
pub mod lazy;
mod parse;
mod ser;

pub use bin::{BinError, BinErrorKind};
pub use lazy::{LazyArray, LazyDoc, LazyObject, LazyValue, PayloadView};
pub use error::{JsonError, JsonErrorKind};
pub use parse::{parse_document, parse_value, Parser};
pub use ser::{to_bytes, to_string, write_document, write_value};

use bytes::Bytes;
use invalidb_common::Document;

/// Which payload encoding a producer writes. Decoding is always sniffed
/// (see [`payload_to_document`]), so the codec choice is local to the
/// producer and never has to match the consumer's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireCodec {
    /// JSON text — the universal fallback.
    Json,
    /// Binary (`IVBD`) — compact and allocation-lean; the default.
    #[default]
    Binary,
}

impl WireCodec {
    /// Encodes a document in this codec.
    pub fn encode(&self, doc: &Document) -> Bytes {
        match self {
            WireCodec::Json => document_to_payload(doc),
            WireCodec::Binary => document_to_binary_payload(doc),
        }
    }
}

/// Serializes a document as JSON text and wraps it in [`Bytes`] for the
/// event layer.
pub fn document_to_payload(doc: &Document) -> Bytes {
    Bytes::from(to_bytes(doc))
}

/// Serializes a document in the binary codec ([`bin`]) and wraps it in
/// [`Bytes`] for the event layer.
pub fn document_to_binary_payload(doc: &Document) -> Bytes {
    Bytes::from(bin::encode_document(doc))
}

/// Decodes an event-layer payload back into a document, sniffing the codec
/// from the leading bytes: `IVBD` is the binary codec, anything else is
/// JSON text. Binary errors are reported through the same [`JsonError`]
/// type (closest kind, byte offset preserved) so consumers have a single
/// decode-error path.
pub fn payload_to_document(payload: &Bytes) -> Result<Document, JsonError> {
    if bin::is_binary(payload) {
        return bin::decode_document(payload).map_err(JsonError::from);
    }
    let text =
        std::str::from_utf8(payload).map_err(|_| JsonError::new(JsonErrorKind::InvalidUtf8, 0))?;
    parse_document(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::{doc, Value};

    #[test]
    fn payload_roundtrip() {
        let d = doc! {
            "name" => "ada",
            "age" => 36i64,
            "score" => 1.5f64,
            "tags" => vec![Value::from("x"), Value::Null, Value::from(true)],
            "nested" => doc! { "a" => doc!{ "b" => 1i64 } },
        };
        let payload = document_to_payload(&d);
        let back = payload_to_document(&payload).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn binary_payload_roundtrip_via_sniffing() {
        let d = doc! {
            "name" => "ada",
            "age" => 36i64,
            "nested" => doc! { "a" => doc!{ "b" => 1i64 } },
        };
        let payload = document_to_binary_payload(&d);
        assert!(bin::is_binary(&payload));
        assert_eq!(payload_to_document(&payload).unwrap(), d);
    }

    #[test]
    fn wire_codec_selects_encoding() {
        let d = doc! { "n" => 1i64 };
        assert!(!bin::is_binary(&WireCodec::Json.encode(&d)));
        assert!(bin::is_binary(&WireCodec::Binary.encode(&d)));
        assert_eq!(payload_to_document(&WireCodec::Json.encode(&d)).unwrap(), d);
        assert_eq!(payload_to_document(&WireCodec::Binary.encode(&d)).unwrap(), d);
    }

    #[test]
    fn truncated_binary_payload_is_an_error() {
        let full = document_to_binary_payload(&doc! { "n" => 1i64, "s" => "abcdef" });
        for cut in 1..full.len() {
            let torn = Bytes::copy_from_slice(&full[..cut]);
            assert!(payload_to_document(&torn).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn invalid_utf8_payload_rejected() {
        let payload = Bytes::from_static(&[0xff, 0xfe, b'{']);
        assert!(payload_to_document(&payload).is_err());
    }
}
