//! Codec errors.

use std::fmt;

/// What went wrong while parsing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonErrorKind {
    /// Payload bytes were not valid UTF-8.
    InvalidUtf8,
    /// Unexpected end of input.
    UnexpectedEof,
    /// Unexpected character.
    UnexpectedChar(char),
    /// Malformed number literal.
    BadNumber,
    /// Malformed string escape sequence.
    BadEscape,
    /// Lone or mismatched UTF-16 surrogate in a `\u` escape.
    BadSurrogate,
    /// Nesting exceeded the depth limit (guards against stack overflow on
    /// adversarial payloads — the event layer is a trust boundary).
    TooDeep,
    /// Document root was not a JSON object.
    RootNotObject,
    /// Trailing non-whitespace input after the value.
    TrailingInput,
}

/// Parse error with byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Error category.
    pub kind: JsonErrorKind,
    /// Byte offset where the error was detected.
    pub offset: usize,
}

impl JsonError {
    pub(crate) fn new(kind: JsonErrorKind, offset: usize) -> Self {
        Self { kind, offset }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match &self.kind {
            JsonErrorKind::InvalidUtf8 => "payload is not valid UTF-8".to_owned(),
            JsonErrorKind::UnexpectedEof => "unexpected end of input".to_owned(),
            JsonErrorKind::UnexpectedChar(c) => format!("unexpected character {c:?}"),
            JsonErrorKind::BadNumber => "malformed number".to_owned(),
            JsonErrorKind::BadEscape => "malformed string escape".to_owned(),
            JsonErrorKind::BadSurrogate => "invalid UTF-16 surrogate pair".to_owned(),
            JsonErrorKind::TooDeep => "nesting too deep".to_owned(),
            JsonErrorKind::RootNotObject => "document root must be an object".to_owned(),
            JsonErrorKind::TrailingInput => "trailing input after value".to_owned(),
        };
        write!(f, "JSON parse error at byte {}: {}", self.offset, what)
    }
}

impl std::error::Error for JsonError {}
