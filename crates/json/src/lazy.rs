//! Zero-copy views over binary (`IVBD`) payloads.
//!
//! [`decode_document`](crate::bin::decode_document) materializes the whole
//! tree — every key, string and nested container becomes an owned
//! allocation even when the consumer only needs two or three envelope
//! fields. [`LazyDoc`] is the borrowed alternative: a validated window onto
//! the wire bytes that resolves field access by **skip-scanning** the
//! tag/varint layout of [`crate::bin`], allocating nothing until a subtree
//! is explicitly [`materialize`](LazyValue::materialize)d. This is what the
//! cluster's ingestion tier runs on — an after-image envelope is a handful
//! of scalar fields plus one `doc` subtree, and only that subtree needs to
//! become an owned [`Document`].
//!
//! Semantics mirror the eager decoder exactly where both are defined:
//!
//! * duplicate keys resolve **last-wins** (eager decoding inserts into a
//!   [`Document`], whose `insert` replaces in place);
//! * [`LazyDoc::get_path`] walks dotted paths with numeric array indices,
//!   matching `Document::get_path`;
//! * structural corruption (truncation, bad tags, overlong varints, over-
//!   deep nesting) surfaces as the same [`BinError`]s — never a panic.
//!
//! Two documented deviations, both on inputs the eager decoder rejects
//! outright: a lazy access never validates UTF-8 of strings it merely
//! skips over, and bytes trailing the root object go unnoticed unless
//! [`LazyDoc::materialize`] is called (which re-checks, like the eager
//! path).

use crate::bin::{
    self, BinError, BinErrorKind, BinReader, BIN_MAGIC, BIN_VERSION, MAX_DEPTH, TAG_ARRAY, TAG_FALSE,
    TAG_FLOAT, TAG_INT, TAG_NULL, TAG_OBJECT, TAG_STRING, TAG_TRUE,
};
use crate::{parse_document, JsonError};
use invalidb_common::{Document, Value};

/// A borrowed, lazily resolved view over a binary payload's root object.
///
/// Construction ([`LazyDoc::new`]) validates only the magic and version
/// header; every access re-walks the needed prefix of the object body, so
/// corruption anywhere on the walked path is still reported exactly like
/// the eager decoder would.
#[derive(Clone, Copy)]
pub struct LazyDoc<'a> {
    /// The full payload (offsets in errors are payload-relative).
    buf: &'a [u8],
}

impl<'a> LazyDoc<'a> {
    /// Wraps a binary payload, validating the `IVBD` magic and version.
    /// The object body is *not* walked here — malformed bodies surface on
    /// first access instead.
    pub fn new(payload: &'a [u8]) -> Result<LazyDoc<'a>, BinError> {
        if payload.len() < 5 {
            return Err(BinError { kind: BinErrorKind::Truncated, offset: payload.len() });
        }
        if payload[..4] != BIN_MAGIC {
            return Err(BinError { kind: BinErrorKind::BadMagic, offset: 0 });
        }
        if payload[4] != BIN_VERSION {
            return Err(BinError { kind: BinErrorKind::BadVersion(payload[4]), offset: 4 });
        }
        Ok(LazyDoc { buf: payload })
    }

    /// The root object as a [`LazyObject`].
    pub fn root(&self) -> LazyObject<'a> {
        LazyObject { buf: self.buf, pos: 5, depth: 0 }
    }

    /// Resolves a top-level field without materializing anything else.
    /// `Ok(None)` means "well-formed but no such key"; `Err` means the
    /// scan hit corruption before the object body ended.
    pub fn get(&self, key: &str) -> Result<Option<LazyValue<'a>>, BinError> {
        self.root().get(key)
    }

    /// Resolves a dotted path (`"doc.tags.0"`) through nested objects and
    /// arrays, mirroring `Document::get_path`: objects descend by key,
    /// arrays by numeric segment, scalars terminate the walk with `None`.
    pub fn get_path(&self, path: &str) -> Result<Option<LazyValue<'a>>, BinError> {
        let mut segments = path.split('.');
        let first = match segments.next() {
            Some(s) => s,
            None => return Ok(None),
        };
        let mut current = match self.get(first)? {
            Some(v) => v,
            None => return Ok(None),
        };
        for seg in segments {
            current = match current {
                LazyValue::Object(obj) => match obj.get(seg)? {
                    Some(v) => v,
                    None => return Ok(None),
                },
                LazyValue::Array(arr) => {
                    let idx: usize = match seg.parse() {
                        Ok(i) => i,
                        Err(_) => return Ok(None),
                    };
                    match arr.get(idx)? {
                        Some(v) => v,
                        None => return Ok(None),
                    }
                }
                _ => return Ok(None),
            };
        }
        Ok(Some(current))
    }

    /// Eagerly decodes the whole payload — exactly
    /// [`bin::decode_document`], trailing-bytes check included.
    pub fn materialize(&self) -> Result<Document, BinError> {
        bin::decode_document(self.buf)
    }
}

/// A borrowed value inside a binary payload. Scalars are decoded in place;
/// containers stay as lazy windows.
#[derive(Clone, Copy)]
pub enum LazyValue<'a> {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A double-precision float.
    Float(f64),
    /// A borrowed string slice (UTF-8 validated on access).
    Str(&'a str),
    /// A lazy array window.
    Array(LazyArray<'a>),
    /// A lazy object window.
    Object(LazyObject<'a>),
}

impl<'a> LazyValue<'a> {
    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&'a str> {
        match self {
            LazyValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            LazyValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            LazyValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object window, if this is an object.
    pub fn as_object(&self) -> Option<LazyObject<'a>> {
        match self {
            LazyValue::Object(o) => Some(*o),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, LazyValue::Null)
    }

    /// Converts into an owned [`Value`], decoding any contained subtree
    /// eagerly (the one place a lazy access allocates).
    pub fn materialize(&self) -> Result<Value, BinError> {
        Ok(match self {
            LazyValue::Null => Value::Null,
            LazyValue::Bool(b) => Value::Bool(*b),
            LazyValue::Int(i) => Value::Int(*i),
            LazyValue::Float(f) => Value::Float(*f),
            LazyValue::Str(s) => Value::String((*s).to_owned()),
            LazyValue::Array(arr) => Value::Array(arr.materialize()?),
            LazyValue::Object(obj) => Value::Object(obj.materialize()?),
        })
    }
}

/// A lazy window onto an encoded object body (positioned at its entry-count
/// varint). `Copy`: carrying one around costs a pointer and two integers.
#[derive(Clone, Copy)]
pub struct LazyObject<'a> {
    buf: &'a [u8],
    /// Offset of the entry-count varint.
    pos: usize,
    /// Nesting depth of this object (root = 0), bounding recursion.
    depth: usize,
}

impl<'a> LazyObject<'a> {
    /// Resolves a field by key (last duplicate wins, like eager decoding).
    /// The whole object body is skip-scanned so corruption behind the hit
    /// is still detected.
    pub fn get(&self, key: &str) -> Result<Option<LazyValue<'a>>, BinError> {
        let mut r = BinReader { buf: self.buf, pos: self.pos };
        let count = r.len_varint()?;
        let mut found = None;
        for _ in 0..count {
            let klen = r.len_varint()?;
            let kbytes = r.take(klen)?;
            if kbytes == key.as_bytes() {
                found = Some(read_lazy_value(&mut r, self.depth + 1)?);
            } else {
                skip_value(&mut r, self.depth + 1)?;
            }
        }
        Ok(found)
    }

    /// Iterates `(key, value)` entries in wire order. Each call to
    /// `next()` decodes one key slice and wraps one value lazily.
    pub fn entries(&self) -> LazyEntries<'a> {
        LazyEntries { r: BinReader { buf: self.buf, pos: self.pos }, remaining: None, depth: self.depth }
    }

    /// Number of entries on the wire (duplicates counted separately).
    pub fn len(&self) -> Result<usize, BinError> {
        let mut r = BinReader { buf: self.buf, pos: self.pos };
        r.len_varint()
    }

    /// True when the object has no entries.
    pub fn is_empty(&self) -> Result<bool, BinError> {
        Ok(self.len()? == 0)
    }

    /// Eagerly decodes this object subtree into an owned [`Document`].
    pub fn materialize(&self) -> Result<Document, BinError> {
        let mut r = BinReader { buf: self.buf, pos: self.pos };
        r.object_body(self.depth)
    }
}

/// Iterator over a [`LazyObject`]'s entries. Yields `Err` once and then
/// `None` if the body is corrupt.
pub struct LazyEntries<'a> {
    r: BinReader<'a>,
    /// `None` until the count varint is read on the first `next()`.
    remaining: Option<usize>,
    depth: usize,
}

impl<'a> Iterator for LazyEntries<'a> {
    type Item = Result<(&'a str, LazyValue<'a>), BinError>;

    fn next(&mut self) -> Option<Self::Item> {
        let remaining = match self.remaining {
            Some(n) => n,
            None => match self.r.len_varint() {
                Ok(n) => {
                    self.remaining = Some(n);
                    n
                }
                Err(e) => {
                    self.remaining = Some(0);
                    return Some(Err(e));
                }
            },
        };
        if remaining == 0 {
            return None;
        }
        self.remaining = Some(remaining - 1);
        let entry = (|| {
            let klen = self.r.len_varint()?;
            let start = self.r.pos;
            let kbytes = self.r.take(klen)?;
            let key = std::str::from_utf8(kbytes)
                .map_err(|_| BinError { kind: BinErrorKind::BadUtf8, offset: start })?;
            let value = read_lazy_value(&mut self.r, self.depth + 1)?;
            Ok((key, value))
        })();
        if entry.is_err() {
            self.remaining = Some(0); // poison: the stream position is lost
        }
        Some(entry)
    }
}

/// A lazy window onto an encoded array (positioned at its item-count
/// varint).
#[derive(Clone, Copy)]
pub struct LazyArray<'a> {
    buf: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> LazyArray<'a> {
    /// Resolves the item at `index`, skip-scanning the items before it.
    pub fn get(&self, index: usize) -> Result<Option<LazyValue<'a>>, BinError> {
        let mut r = BinReader { buf: self.buf, pos: self.pos };
        let count = r.len_varint()?;
        if index >= count {
            return Ok(None);
        }
        for _ in 0..index {
            skip_value(&mut r, self.depth + 1)?;
        }
        Ok(Some(read_lazy_value(&mut r, self.depth + 1)?))
    }

    /// Number of items on the wire.
    pub fn len(&self) -> Result<usize, BinError> {
        let mut r = BinReader { buf: self.buf, pos: self.pos };
        r.len_varint()
    }

    /// True when the array has no items.
    pub fn is_empty(&self) -> Result<bool, BinError> {
        Ok(self.len()? == 0)
    }

    /// Iterates the items in wire order.
    pub fn items(&self) -> LazyItems<'a> {
        LazyItems { r: BinReader { buf: self.buf, pos: self.pos }, remaining: None, depth: self.depth }
    }

    /// Eagerly decodes this array subtree into owned [`Value`]s.
    pub fn materialize(&self) -> Result<Vec<Value>, BinError> {
        let mut out = Vec::new();
        for item in self.items() {
            out.push(item?.materialize()?);
        }
        Ok(out)
    }
}

/// Iterator over a [`LazyArray`]'s items. Yields `Err` once and then
/// `None` if the body is corrupt.
pub struct LazyItems<'a> {
    r: BinReader<'a>,
    remaining: Option<usize>,
    depth: usize,
}

impl<'a> Iterator for LazyItems<'a> {
    type Item = Result<LazyValue<'a>, BinError>;

    fn next(&mut self) -> Option<Self::Item> {
        let remaining = match self.remaining {
            Some(n) => n,
            None => match self.r.len_varint() {
                Ok(n) => {
                    self.remaining = Some(n);
                    n
                }
                Err(e) => {
                    self.remaining = Some(0);
                    return Some(Err(e));
                }
            },
        };
        if remaining == 0 {
            return None;
        }
        self.remaining = Some(remaining - 1);
        let item = read_lazy_value(&mut self.r, self.depth + 1);
        if item.is_err() {
            self.remaining = Some(0);
        }
        Some(item)
    }
}

/// Reads one value at the cursor: scalars decode in place, containers wrap
/// lazily — and are then *skipped* so the cursor lands after the value.
fn read_lazy_value<'a>(r: &mut BinReader<'a>, depth: usize) -> Result<LazyValue<'a>, BinError> {
    if depth > MAX_DEPTH {
        return Err(BinError { kind: BinErrorKind::TooDeep, offset: r.pos });
    }
    let at = r.pos;
    Ok(match r.byte()? {
        TAG_NULL => LazyValue::Null,
        TAG_FALSE => LazyValue::Bool(false),
        TAG_TRUE => LazyValue::Bool(true),
        TAG_INT => LazyValue::Int(bin::unzigzag(r.varint()?)),
        TAG_FLOAT => {
            let b = r.take(8)?;
            LazyValue::Float(f64::from_bits(u64::from_be_bytes(b.try_into().expect("8 bytes"))))
        }
        TAG_STRING => {
            let len = r.len_varint()?;
            let start = r.pos;
            let bytes = r.take(len)?;
            LazyValue::Str(
                std::str::from_utf8(bytes)
                    .map_err(|_| BinError { kind: BinErrorKind::BadUtf8, offset: start })?,
            )
        }
        TAG_ARRAY => {
            let window = LazyArray { buf: r.buf, pos: r.pos, depth };
            skip_container_body(r, depth, false)?;
            LazyValue::Array(window)
        }
        TAG_OBJECT => {
            let window = LazyObject { buf: r.buf, pos: r.pos, depth };
            skip_container_body(r, depth, true)?;
            LazyValue::Object(window)
        }
        tag => return Err(BinError { kind: BinErrorKind::BadTag(tag), offset: at }),
    })
}

/// Advances the cursor past one encoded value without decoding strings or
/// building containers. Structural corruption (truncation, bad tags, bad
/// varints, over-deep nesting) is still detected; non-UTF-8 in skipped
/// strings is not (the eager decoder would reject it — a documented
/// deviation on inputs the eager path refuses entirely).
fn skip_value(r: &mut BinReader<'_>, depth: usize) -> Result<(), BinError> {
    if depth > MAX_DEPTH {
        return Err(BinError { kind: BinErrorKind::TooDeep, offset: r.pos });
    }
    let at = r.pos;
    match r.byte()? {
        TAG_NULL | TAG_FALSE | TAG_TRUE => {}
        TAG_INT => {
            r.varint()?;
        }
        TAG_FLOAT => {
            r.take(8)?;
        }
        TAG_STRING => {
            let len = r.len_varint()?;
            r.take(len)?;
        }
        TAG_ARRAY => skip_container_body(r, depth, false)?,
        TAG_OBJECT => skip_container_body(r, depth, true)?,
        tag => return Err(BinError { kind: BinErrorKind::BadTag(tag), offset: at }),
    }
    Ok(())
}

/// Skips a container body (cursor at the count varint). `keyed` selects
/// object layout (length-prefixed key before each value).
fn skip_container_body(r: &mut BinReader<'_>, depth: usize, keyed: bool) -> Result<(), BinError> {
    let count = r.len_varint()?;
    for _ in 0..count {
        if keyed {
            let klen = r.len_varint()?;
            r.take(klen)?;
        }
        skip_value(r, depth + 1)?;
    }
    Ok(())
}

/// A payload view with [`payload_to_document`](crate::payload_to_document)-
/// equivalent sniffing: binary payloads become zero-copy [`LazyDoc`]s, JSON
/// text falls back to one eager parse. Consumers branch on the variant to
/// run allocation-free on the binary fast path while staying correct for
/// every legacy payload.
pub enum PayloadView<'a> {
    /// A binary (`IVBD`) payload, viewed lazily.
    Binary(LazyDoc<'a>),
    /// A JSON payload, parsed eagerly (there is no lazy JSON path).
    Json(Document),
}

impl<'a> PayloadView<'a> {
    /// Sniffs the codec and builds the view. Mirrors
    /// [`payload_to_document`](crate::payload_to_document)'s error
    /// surface: both codecs report through [`JsonError`].
    pub fn new(payload: &'a [u8]) -> Result<PayloadView<'a>, JsonError> {
        if bin::is_binary(payload) {
            return Ok(PayloadView::Binary(LazyDoc::new(payload).map_err(JsonError::from)?));
        }
        let text = std::str::from_utf8(payload)
            .map_err(|_| JsonError::new(crate::JsonErrorKind::InvalidUtf8, 0))?;
        Ok(PayloadView::Json(parse_document(text)?))
    }

    /// Resolves a dotted path to an owned [`Value`] (materializing the
    /// subtree on the binary path, cloning it on the JSON path).
    pub fn get_path(&self, path: &str) -> Result<Option<Value>, JsonError> {
        match self {
            PayloadView::Binary(lazy) => match lazy.get_path(path).map_err(JsonError::from)? {
                Some(v) => Ok(Some(v.materialize().map_err(JsonError::from)?)),
                None => Ok(None),
            },
            PayloadView::Json(doc) => Ok(doc.get_path(path).cloned()),
        }
    }

    /// Decodes the full payload into an owned [`Document`] — exactly what
    /// [`payload_to_document`](crate::payload_to_document) returns.
    pub fn to_document(&self) -> Result<Document, JsonError> {
        match self {
            PayloadView::Binary(lazy) => lazy.materialize().map_err(JsonError::from),
            PayloadView::Json(doc) => Ok(doc.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bin::encode_document;
    use invalidb_common::doc;

    fn payload() -> Vec<u8> {
        encode_document(&doc! {
            "op" => "write",
            "version" => 42i64,
            "flag" => true,
            "pi" => 3.5f64,
            "nothing" => Value::Null,
            "doc" => doc! { "n" => 7i64, "tags" => vec![Value::from("a"), Value::from("b")] },
            "arr" => vec![Value::Int(1), Value::Object(doc! { "x" => 2i64 })],
        })
    }

    #[test]
    fn scalar_access_without_materializing() {
        let bytes = payload();
        let lazy = LazyDoc::new(&bytes).unwrap();
        assert_eq!(lazy.get("op").unwrap().unwrap().as_str(), Some("write"));
        assert_eq!(lazy.get("version").unwrap().unwrap().as_i64(), Some(42));
        assert_eq!(lazy.get("flag").unwrap().unwrap().as_bool(), Some(true));
        assert!(matches!(lazy.get("pi").unwrap().unwrap(), LazyValue::Float(f) if f == 3.5));
        assert!(lazy.get("nothing").unwrap().unwrap().is_null());
        assert!(lazy.get("absent").unwrap().is_none());
    }

    #[test]
    fn nested_paths_match_document_get_path() {
        let bytes = payload();
        let lazy = LazyDoc::new(&bytes).unwrap();
        let eager = bin::decode_document(&bytes).unwrap();
        for path in
            ["doc.n", "doc.tags.1", "arr.0", "arr.1.x", "doc", "arr", "doc.tags.9", "op.x", "arr.x"]
        {
            let lazy_v = lazy.get_path(path).unwrap().map(|v| v.materialize().unwrap());
            assert_eq!(lazy_v.as_ref(), eager.get_path(path), "path {path}");
        }
    }

    #[test]
    fn materialize_equals_eager_decode() {
        let bytes = payload();
        let lazy = LazyDoc::new(&bytes).unwrap();
        assert_eq!(lazy.materialize().unwrap(), bin::decode_document(&bytes).unwrap());
        let sub = lazy.get("doc").unwrap().unwrap().as_object().unwrap();
        assert_eq!(Some(&Value::Object(sub.materialize().unwrap())), lazy.materialize().unwrap().get("doc"));
    }

    #[test]
    fn entries_iterate_in_wire_order() {
        let bytes = payload();
        let lazy = LazyDoc::new(&bytes).unwrap();
        let keys: Vec<&str> = lazy.root().entries().map(|e| e.unwrap().0).collect();
        assert_eq!(keys, vec!["op", "version", "flag", "pi", "nothing", "doc", "arr"]);
    }

    #[test]
    fn header_validation() {
        assert!(matches!(LazyDoc::new(b"JSON{}"), Err(BinError { kind: BinErrorKind::BadMagic, .. })));
        assert!(matches!(LazyDoc::new(b"IVB"), Err(BinError { kind: BinErrorKind::Truncated, .. })));
        let mut bytes = payload();
        bytes[4] = 9;
        assert!(matches!(
            LazyDoc::new(&bytes),
            Err(BinError { kind: BinErrorKind::BadVersion(9), .. })
        ));
    }

    #[test]
    fn duplicate_keys_resolve_last_wins() {
        // Hand-build a body with `a` twice: eager decoding keeps the last.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&BIN_MAGIC);
        bytes.push(BIN_VERSION);
        bytes.push(2); // two entries
        for (i, v) in [1u8, 2u8].iter().enumerate() {
            bytes.push(1);
            bytes.push(b'a');
            bytes.push(TAG_INT);
            bytes.push(*v * 2); // zigzag of 1 is 2, of 2 is 4
            let _ = i;
        }
        let lazy = LazyDoc::new(&bytes).unwrap();
        let eager = bin::decode_document(&bytes).unwrap();
        assert_eq!(eager.get("a"), Some(&Value::Int(2)));
        assert_eq!(lazy.get("a").unwrap().unwrap().as_i64(), Some(2));
    }

    #[test]
    fn payload_view_sniffs_both_codecs() {
        let d = doc! { "op" => "write", "doc" => doc! { "n" => 1i64 } };
        for payload in [crate::document_to_payload(&d), crate::document_to_binary_payload(&d)] {
            let view = PayloadView::new(&payload).unwrap();
            assert_eq!(view.get_path("op").unwrap(), Some(Value::from("write")));
            assert_eq!(view.get_path("doc.n").unwrap(), Some(Value::Int(1)));
            assert_eq!(view.get_path("doc.m").unwrap(), None);
            assert_eq!(view.to_document().unwrap(), d);
        }
    }
}
