//! Recursive-descent JSON parser producing [`Value`]/[`Document`].

use crate::error::{JsonError, JsonErrorKind};
use invalidb_common::{Document, Value};

/// Maximum nesting depth accepted by the parser.
pub const MAX_DEPTH: usize = 128;

/// Parses a complete JSON value from `text` (entire input must be consumed).
pub fn parse_value(text: &str) -> Result<Value, JsonError> {
    let mut p = Parser::new(text);
    let v = p.value(0)?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err(JsonErrorKind::TrailingInput));
    }
    Ok(v)
}

/// Parses a JSON object from `text` into a [`Document`].
pub fn parse_document(text: &str) -> Result<Document, JsonError> {
    match parse_value(text)? {
        Value::Object(doc) => Ok(doc),
        _ => Err(JsonError::new(JsonErrorKind::RootNotObject, 0)),
    }
}

/// Streaming JSON parser over a borrowed string.
pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Creates a parser over the given input.
    pub fn new(text: &'a str) -> Self {
        Self { bytes: text.as_bytes(), pos: 0 }
    }

    fn err(&self, kind: JsonErrorKind) -> JsonError {
        JsonError::new(kind, self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => {
                self.pos -= 1;
                Err(self.err(JsonErrorKind::UnexpectedChar(got as char)))
            }
            None => Err(self.err(JsonErrorKind::UnexpectedEof)),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    /// Parses one JSON value at the current position.
    pub fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(JsonErrorKind::TooDeep));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.err(JsonErrorKind::UnexpectedEof)),
            Some(b'{') => self.object(depth).map(Value::Object),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Value::String),
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err(JsonErrorKind::UnexpectedChar('t')))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err(JsonErrorKind::UnexpectedChar('f')))
                }
            }
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err(JsonErrorKind::UnexpectedChar('n')))
                }
            }
            Some(b'N') => {
                if self.eat_keyword("NaN") {
                    Ok(Value::Float(f64::NAN))
                } else {
                    Err(self.err(JsonErrorKind::UnexpectedChar('N')))
                }
            }
            Some(b'I') => {
                if self.eat_keyword("Infinity") {
                    Ok(Value::Float(f64::INFINITY))
                } else {
                    Err(self.err(JsonErrorKind::UnexpectedChar('I')))
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(JsonErrorKind::UnexpectedChar(c as char))),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Document, JsonError> {
        self.expect(b'{')?;
        let mut doc = Document::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(doc);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            doc.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(doc),
                Some(c) => {
                    self.pos -= 1;
                    return Err(self.err(JsonErrorKind::UnexpectedChar(c as char)));
                }
                None => return Err(self.err(JsonErrorKind::UnexpectedEof)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                Some(c) => {
                    self.pos -= 1;
                    return Err(self.err(JsonErrorKind::UnexpectedChar(c as char)));
                }
                None => return Err(self.err(JsonErrorKind::UnexpectedEof)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is known-valid UTF-8 (constructed from &str).
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is valid UTF-8"),
                );
            }
            match self.bump() {
                None => return Err(self.err(JsonErrorKind::UnexpectedEof)),
                Some(b'"') => return Ok(out),
                Some(b'\\') => self.escape(&mut out)?,
                Some(c) if c < 0x20 => {
                    self.pos -= 1;
                    return Err(self.err(JsonErrorKind::UnexpectedChar(c as char)));
                }
                Some(_) => unreachable!("fast path consumed plain bytes"),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        match self.bump() {
            None => Err(self.err(JsonErrorKind::UnexpectedEof)),
            Some(b'"') => {
                out.push('"');
                Ok(())
            }
            Some(b'\\') => {
                out.push('\\');
                Ok(())
            }
            Some(b'/') => {
                out.push('/');
                Ok(())
            }
            Some(b'b') => {
                out.push('\u{0008}');
                Ok(())
            }
            Some(b'f') => {
                out.push('\u{000C}');
                Ok(())
            }
            Some(b'n') => {
                out.push('\n');
                Ok(())
            }
            Some(b'r') => {
                out.push('\r');
                Ok(())
            }
            Some(b't') => {
                out.push('\t');
                Ok(())
            }
            Some(b'u') => {
                let hi = self.hex4()?;
                let ch = if (0xD800..=0xDBFF).contains(&hi) {
                    // High surrogate: a low surrogate escape must follow.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.err(JsonErrorKind::BadSurrogate));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..=0xDFFF).contains(&lo) {
                        return Err(self.err(JsonErrorKind::BadSurrogate));
                    }
                    let code = 0x10000 + (((hi - 0xD800) as u32) << 10) + (lo - 0xDC00) as u32;
                    char::from_u32(code).ok_or_else(|| self.err(JsonErrorKind::BadSurrogate))?
                } else if (0xDC00..=0xDFFF).contains(&hi) {
                    return Err(self.err(JsonErrorKind::BadSurrogate));
                } else {
                    char::from_u32(hi as u32).ok_or_else(|| self.err(JsonErrorKind::BadSurrogate))?
                };
                out.push(ch);
                Ok(())
            }
            Some(_) => {
                self.pos -= 1;
                Err(self.err(JsonErrorKind::BadEscape))
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err(JsonErrorKind::UnexpectedEof))?;
            let digit = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => {
                    self.pos -= 1;
                    return Err(self.err(JsonErrorKind::BadEscape));
                }
            };
            v = (v << 4) | digit as u16;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
            if self.eat_keyword("Infinity") {
                return Ok(Value::Float(f64::NEG_INFINITY));
            }
        }
        let mut is_float = false;
        // Integer part.
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.err(JsonErrorKind::BadNumber));
        }
        // Leading-zero rule: "0" ok, "01" not.
        if self.bytes[int_start] == b'0' && self.pos - int_start > 1 {
            return Err(JsonError::new(JsonErrorKind::BadNumber, int_start));
        }
        // Fraction.
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err(JsonErrorKind::BadNumber));
            }
        }
        // Exponent.
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err(JsonErrorKind::BadNumber));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            // Out-of-range integer literal falls back to float.
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| JsonError::new(JsonErrorKind::BadNumber, start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::doc;

    #[test]
    fn scalars() {
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("false").unwrap(), Value::Bool(false));
        assert_eq!(parse_value("42").unwrap(), Value::Int(42));
        assert_eq!(parse_value("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse_value("4.25").unwrap(), Value::Float(4.25));
        assert_eq!(parse_value("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse_value("-2.5e-1").unwrap(), Value::Float(-0.25));
        assert_eq!(parse_value("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn int_float_distinction() {
        assert_eq!(parse_value("5").unwrap(), Value::Int(5));
        assert_eq!(parse_value("5.0").unwrap(), Value::Float(5.0));
        assert!(matches!(parse_value("5e0").unwrap(), Value::Float(_)));
    }

    #[test]
    fn i64_boundaries() {
        assert_eq!(parse_value("9223372036854775807").unwrap(), Value::Int(i64::MAX));
        assert_eq!(parse_value("-9223372036854775808").unwrap(), Value::Int(i64::MIN));
        // One beyond: falls back to float.
        assert!(matches!(parse_value("9223372036854775808").unwrap(), Value::Float(_)));
    }

    #[test]
    fn special_floats() {
        assert!(matches!(parse_value("NaN").unwrap(), Value::Float(f) if f.is_nan()));
        assert_eq!(parse_value("Infinity").unwrap(), Value::Float(f64::INFINITY));
        assert_eq!(parse_value("-Infinity").unwrap(), Value::Float(f64::NEG_INFINITY));
    }

    #[test]
    fn nested_structures() {
        let v = parse_value(r#" { "a" : [1, {"b": null}, "x"] , "c": {} } "#).unwrap();
        let expect = doc! {
            "a" => vec![Value::Int(1), Value::Object(doc!{ "b" => Value::Null }), Value::from("x")],
            "c" => doc! {},
        };
        assert_eq!(v, Value::Object(expect));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse_value(r#""a\"b\\c\/d\b\f\n\r\t""#).unwrap(),
            Value::String("a\"b\\c/d\u{8}\u{c}\n\r\t".into())
        );
        assert_eq!(parse_value(r#""é""#).unwrap(), Value::String("é".into()));
        // Surrogate pair: U+1F600.
        assert_eq!(parse_value(r#""😀""#).unwrap(), Value::String("😀".into()));
    }

    #[test]
    fn bad_surrogates_rejected() {
        assert!(parse_value(r#""\ud83d""#).is_err());
        assert!(parse_value(r#""\ud83dA""#).is_err());
        assert!(parse_value(r#""\udc00""#).is_err());
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse_value("{\"a\": 01}").unwrap_err();
        assert_eq!(e.kind, JsonErrorKind::BadNumber);
        assert_eq!(e.offset, 6);
        assert!(parse_value("[1, ]").is_err());
        assert!(parse_value("{\"a\" 1}").is_err());
        assert!(parse_value("tru").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("").is_err());
    }

    #[test]
    fn depth_limit_enforced() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let e = parse_value(&deep).unwrap_err();
        assert_eq!(e.kind, JsonErrorKind::TooDeep);
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse_value(&ok).is_ok());
    }

    #[test]
    fn document_root_must_be_object() {
        assert!(parse_document("[1]").is_err());
        assert!(parse_document("{\"a\": 1}").is_ok());
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let d = parse_document(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.get("a"), Some(&Value::Int(2)));
    }

    #[test]
    fn control_chars_in_strings_rejected() {
        assert!(parse_value("\"a\nb\"").is_err());
    }
}
