//! Property-based round-trip tests for the JSON codec.

use invalidb_common::{Document, Value};
use invalidb_json::{parse_document, parse_value, to_string, write_value};
use proptest::prelude::*;

/// Strategy generating arbitrary values (finite recursion, no NaN so plain
/// equality works; NaN round-trip is covered by unit tests).
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only; NaN breaks PartialEq-based assertions.
        any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(Value::Float),
        "[\\PC\u{0}-\u{7f}]{0,16}".prop_map(Value::String),
    ];
    leaf.prop_recursive(4, 32, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::vec(("[a-zA-Z0-9_.$-]{1,8}", inner), 0..6)
                .prop_map(|pairs| { Value::Object(pairs.into_iter().collect::<Document>()) }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn value_roundtrips(v in value_strategy()) {
        let mut s = String::new();
        write_value(&v, &mut s);
        let back = parse_value(&s).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn document_roundtrips(pairs in prop::collection::vec(("[a-z]{1,6}", value_strategy()), 0..8)) {
        let doc: Document = pairs.into_iter().collect();
        let back = parse_document(&to_string(&doc)).unwrap();
        prop_assert_eq!(back, doc);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,64}") {
        let _ = parse_value(&s);
    }

    #[test]
    fn strings_with_escapes_roundtrip(raw in "\\PC{0,32}") {
        let v = Value::String(raw);
        let mut s = String::new();
        write_value(&v, &mut s);
        prop_assert_eq!(parse_value(&s).unwrap(), v);
    }
}
