//! Property-based tests for the binary (`IVBD`) codec: round-trip
//! fidelity, cross-codec equivalence with the JSON text codec, and
//! torn-payload robustness.

use bytes::Bytes;
use invalidb_common::{Document, Value};
use invalidb_json::{bin, document_to_binary_payload, payload_to_document, LazyDoc, WireCodec};
use proptest::prelude::*;

/// Every dotted path addressable in `doc` (object keys and array indices),
/// in depth-first order. Keys containing `.` are skipped — the dotted-path
/// grammar cannot address them, in the eager and lazy walkers alike.
fn all_paths(doc: &Document) -> Vec<String> {
    fn walk(prefix: &str, v: &Value, out: &mut Vec<String>) {
        match v {
            Value::Object(d) => {
                for (k, vv) in d.iter() {
                    if k.contains('.') {
                        continue;
                    }
                    let p = if prefix.is_empty() { k.to_owned() } else { format!("{prefix}.{k}") };
                    out.push(p.clone());
                    walk(&p, vv, out);
                }
            }
            Value::Array(items) => {
                for (i, vv) in items.iter().enumerate() {
                    let p = format!("{prefix}.{i}");
                    out.push(p.clone());
                    walk(&p, vv, out);
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk("", &Value::Object(doc.clone()), &mut out);
    out
}

/// Arbitrary values with unicode keys and strings, empty containers
/// included. Finite floats only: NaN breaks the PartialEq-based
/// assertions (bit-exact NaN round-trip is covered by unit tests in
/// `bin.rs`).
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(Value::Float),
        "\\PC{0,16}".prop_map(Value::String),
    ];
    leaf.prop_recursive(4, 32, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::vec((key_strategy(), inner), 0..6)
                .prop_map(|pairs| Value::Object(pairs.into_iter().collect::<Document>())),
        ]
    })
}

/// Keys exercise the full unicode range (minus unassigned/control), not
/// just ASCII identifiers.
fn key_strategy() -> impl Strategy<Value = String> {
    "\\PC{1,12}"
}

fn document_strategy() -> impl Strategy<Value = Document> {
    prop::collection::vec((key_strategy(), value_strategy()), 0..8)
        .prop_map(|pairs| pairs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn binary_document_roundtrips(doc in document_strategy()) {
        let payload = document_to_binary_payload(&doc);
        prop_assert!(bin::is_binary(&payload));
        let back = payload_to_document(&payload).unwrap();
        prop_assert_eq!(back, doc);
    }

    /// Both codecs must describe the same document: decoding the JSON
    /// encoding and decoding the binary encoding yield identical results,
    /// and the binary encoder is deterministic (two encodings of the same
    /// document are byte-identical — a consumer that re-publishes a
    /// decoded notification cannot introduce wire-level drift).
    #[test]
    fn cross_codec_equivalence(doc in document_strategy()) {
        let json = WireCodec::Json.encode(&doc);
        let binary = WireCodec::Binary.encode(&doc);
        let from_json = payload_to_document(&json).unwrap();
        let from_binary = payload_to_document(&binary).unwrap();
        prop_assert_eq!(&from_json, &from_binary);
        prop_assert_eq!(&from_json, &doc);
        prop_assert_eq!(
            document_to_binary_payload(&from_binary),
            binary,
            "binary encoding must be deterministic"
        );
    }

    /// Every proper prefix of a valid binary payload is an error — never a
    /// panic, never a silently-wrong document.
    #[test]
    fn truncated_binary_payload_errors_never_panics(doc in document_strategy()) {
        let full = document_to_binary_payload(&doc);
        for cut in 0..full.len() {
            let torn = Bytes::copy_from_slice(&full[..cut]);
            prop_assert!(
                payload_to_document(&torn).is_err(),
                "prefix of {} bytes decoded",
                cut
            );
        }
    }

    /// Arbitrary bytes behind the magic must decode or fail cleanly.
    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(body in prop::collection::vec(any::<u8>(), 0..128)) {
        let mut raw = b"IVBD".to_vec();
        raw.extend_from_slice(&body);
        let _ = payload_to_document(&Bytes::from(raw));
    }

    /// The lazy view agrees with eager decoding on every addressable path
    /// of an arbitrary document — `None`s included — and its full
    /// materialization is the eager result.
    #[test]
    fn lazy_paths_agree_with_eager_decode(doc in document_strategy()) {
        let payload = document_to_binary_payload(&doc);
        let lazy = LazyDoc::new(&payload).unwrap();
        let eager = payload_to_document(&payload).unwrap();
        prop_assert_eq!(&lazy.materialize().unwrap(), &eager);
        let mut paths = all_paths(&eager);
        paths.push("__absent__".into());
        paths.push("__absent__.x.0".into());
        for path in &paths {
            let lazy_v = match lazy.get_path(path) {
                Ok(v) => v.map(|v| v.materialize().unwrap()),
                Err(e) => return Err(TestCaseError::fail(format!("path {path}: {e:?}"))),
            };
            prop_assert_eq!(lazy_v.as_ref(), eager.get_path(path), "path {}", path);
        }
    }

    /// Lazy access over every proper prefix of a valid payload: header
    /// validation or path walks may error, but must never panic, and a
    /// full materialization of a torn payload must never succeed.
    #[test]
    fn lazy_access_on_truncated_payload_never_panics(doc in document_strategy()) {
        let full = document_to_binary_payload(&doc);
        let paths = all_paths(&doc);
        for cut in 0..full.len() {
            if let Ok(lazy) = LazyDoc::new(&full[..cut]) {
                prop_assert!(lazy.materialize().is_err(), "prefix of {} bytes materialized", cut);
                for path in &paths {
                    if let Ok(Some(v)) = lazy.get_path(path) {
                        let _ = v.materialize();
                    }
                }
                for entry in lazy.root().entries() {
                    if entry.is_err() {
                        break;
                    }
                }
            }
        }
    }

    /// Bit flips behind the header: lazy walks must fail cleanly or agree
    /// with the eager decoder. Whenever the eager decoder accepts the
    /// corrupted payload, the entry walk must reproduce its document
    /// (last duplicate wins, like eager insertion).
    #[test]
    fn lazy_access_on_corrupted_payload_never_panics(
        doc in document_strategy(),
        pos_fraction in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut raw = document_to_binary_payload(&doc).to_vec();
        if raw.len() <= bin::BIN_MAGIC.len() + 1 {
            return Ok(());
        }
        let idx = bin::BIN_MAGIC.len()
            + ((raw.len() - bin::BIN_MAGIC.len() - 1) as f64 * pos_fraction) as usize;
        raw[idx] ^= 1 << bit;
        let lazy = match LazyDoc::new(&raw) {
            Ok(l) => l,
            Err(_) => return Ok(()), // header corruption: rejected up front
        };
        for path in all_paths(&doc) {
            if let Ok(Some(v)) = lazy.get_path(&path) {
                let _ = v.materialize();
            }
        }
        if let Ok(eager) = payload_to_document(&Bytes::from(raw.clone())) {
            let mut walked = Document::new();
            for entry in lazy.root().entries() {
                let (key, value) = entry.expect("eager-decodable payload, lazy walk failed");
                walked.insert(key, value.materialize().expect("eager-decodable value"));
            }
            prop_assert_eq!(walked, eager);
        }
    }

    /// Bit flips inside a valid payload must decode or fail cleanly; if
    /// they decode, re-encoding must be stable (no amplification of
    /// corruption into non-canonical states).
    #[test]
    fn corrupted_binary_payload_never_panics(
        doc in document_strategy(),
        pos_fraction in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut raw = document_to_binary_payload(&doc).to_vec();
        if raw.len() <= bin::BIN_MAGIC.len() + 1 {
            return Ok(());
        }
        let idx = bin::BIN_MAGIC.len()
            + ((raw.len() - bin::BIN_MAGIC.len() - 1) as f64 * pos_fraction) as usize;
        raw[idx] ^= 1 << bit;
        if let Ok(decoded) = payload_to_document(&Bytes::from(raw)) {
            let reencoded = document_to_binary_payload(&decoded);
            prop_assert_eq!(payload_to_document(&reencoded).unwrap(), decoded);
        }
    }
}
