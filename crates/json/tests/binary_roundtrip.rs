//! Property-based tests for the binary (`IVBD`) codec: round-trip
//! fidelity, cross-codec equivalence with the JSON text codec, and
//! torn-payload robustness.

use bytes::Bytes;
use invalidb_common::{Document, Value};
use invalidb_json::{bin, document_to_binary_payload, payload_to_document, WireCodec};
use proptest::prelude::*;

/// Arbitrary values with unicode keys and strings, empty containers
/// included. Finite floats only: NaN breaks the PartialEq-based
/// assertions (bit-exact NaN round-trip is covered by unit tests in
/// `bin.rs`).
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_filter("finite", |f| f.is_finite()).prop_map(Value::Float),
        "\\PC{0,16}".prop_map(Value::String),
    ];
    leaf.prop_recursive(4, 32, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::vec((key_strategy(), inner), 0..6)
                .prop_map(|pairs| Value::Object(pairs.into_iter().collect::<Document>())),
        ]
    })
}

/// Keys exercise the full unicode range (minus unassigned/control), not
/// just ASCII identifiers.
fn key_strategy() -> impl Strategy<Value = String> {
    "\\PC{1,12}"
}

fn document_strategy() -> impl Strategy<Value = Document> {
    prop::collection::vec((key_strategy(), value_strategy()), 0..8)
        .prop_map(|pairs| pairs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn binary_document_roundtrips(doc in document_strategy()) {
        let payload = document_to_binary_payload(&doc);
        prop_assert!(bin::is_binary(&payload));
        let back = payload_to_document(&payload).unwrap();
        prop_assert_eq!(back, doc);
    }

    /// Both codecs must describe the same document: decoding the JSON
    /// encoding and decoding the binary encoding yield identical results,
    /// and the binary encoder is deterministic (two encodings of the same
    /// document are byte-identical — a consumer that re-publishes a
    /// decoded notification cannot introduce wire-level drift).
    #[test]
    fn cross_codec_equivalence(doc in document_strategy()) {
        let json = WireCodec::Json.encode(&doc);
        let binary = WireCodec::Binary.encode(&doc);
        let from_json = payload_to_document(&json).unwrap();
        let from_binary = payload_to_document(&binary).unwrap();
        prop_assert_eq!(&from_json, &from_binary);
        prop_assert_eq!(&from_json, &doc);
        prop_assert_eq!(
            document_to_binary_payload(&from_binary),
            binary,
            "binary encoding must be deterministic"
        );
    }

    /// Every proper prefix of a valid binary payload is an error — never a
    /// panic, never a silently-wrong document.
    #[test]
    fn truncated_binary_payload_errors_never_panics(doc in document_strategy()) {
        let full = document_to_binary_payload(&doc);
        for cut in 0..full.len() {
            let torn = Bytes::copy_from_slice(&full[..cut]);
            prop_assert!(
                payload_to_document(&torn).is_err(),
                "prefix of {} bytes decoded",
                cut
            );
        }
    }

    /// Arbitrary bytes behind the magic must decode or fail cleanly.
    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(body in prop::collection::vec(any::<u8>(), 0..128)) {
        let mut raw = b"IVBD".to_vec();
        raw.extend_from_slice(&body);
        let _ = payload_to_document(&Bytes::from(raw));
    }

    /// Bit flips inside a valid payload must decode or fail cleanly; if
    /// they decode, re-encoding must be stable (no amplification of
    /// corruption into non-canonical states).
    #[test]
    fn corrupted_binary_payload_never_panics(
        doc in document_strategy(),
        pos_fraction in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut raw = document_to_binary_payload(&doc).to_vec();
        if raw.len() <= bin::BIN_MAGIC.len() + 1 {
            return Ok(());
        }
        let idx = bin::BIN_MAGIC.len()
            + ((raw.len() - bin::BIN_MAGIC.len() - 1) as f64 * pos_fraction) as usize;
        raw[idx] ^= 1 << bit;
        if let Ok(decoded) = payload_to_document(&Bytes::from(raw)) {
            let reencoded = document_to_binary_payload(&decoded);
            prop_assert_eq!(payload_to_document(&reencoded).unwrap(), decoded);
        }
    }
}
