//! Property tests for the sorted-window maintenance (§5.2) — the invariant
//! called out in DESIGN.md: *any op sequence processed incrementally equals
//! recomputation from scratch when no renewal fired*, and the emitted edit
//! scripts keep a client list identical to the window's visible slice.

use invalidb_common::{doc, Document, Key, QuerySpec, ResultItem, SortDirection, Version};
use invalidb_core::window::{apply_events, SortedWindow, WindowItem};
use invalidb_query::{MongoQueryEngine, PreparedQuery, QueryEngine};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    /// Upsert key with a new sort value.
    Put(i64, i64),
    /// Delete key.
    Del(i64),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            ((0..20i64), (0..50i64)).prop_map(|(k, s)| Op::Put(k, s)),
            (0..20i64).prop_map(Op::Del),
        ],
        0..80,
    )
}

fn prepared(offset: u64, limit: u64) -> Arc<dyn PreparedQuery> {
    let spec = QuerySpec::filter("t", doc! {})
        .sorted_by("s", SortDirection::Asc)
        .with_offset(offset)
        .with_limit(limit);
    MongoQueryEngine.prepare(&spec).unwrap()
}

fn doc_of(s: i64) -> Document {
    doc! { "s" => s }
}

/// Authoritative database state.
#[derive(Default, Clone)]
struct Db {
    live: BTreeMap<i64, (Version, i64)>,
    tombstones: BTreeMap<i64, Version>,
}

impl Db {
    fn put(&mut self, k: i64, s: i64) -> Version {
        let v = self.next_version(k);
        self.tombstones.remove(&k);
        self.live.insert(k, (v, s));
        v
    }

    fn del(&mut self, k: i64) -> Option<Version> {
        let (v, _) = self.live.remove(&k)?;
        self.tombstones.insert(k, v + 1);
        Some(v + 1)
    }

    fn next_version(&self, k: i64) -> Version {
        self.live
            .get(&k)
            .map(|(v, _)| v + 1)
            .or_else(|| self.tombstones.get(&k).map(|v| v + 1))
            .unwrap_or(1)
    }

    /// The rewritten bootstrap result: sorted ascending by (s, key), first
    /// `n` items.
    fn bootstrap(&self, n: usize) -> Vec<ResultItem> {
        let mut items: Vec<(i64, Version, i64)> =
            self.live.iter().map(|(k, (v, s))| (*k, *v, *s)).collect();
        items.sort_by_key(|(k, _, s)| (*s, *k));
        items.into_iter().take(n).map(|(k, v, s)| ResultItem::new(Key::of(k), v, doc_of(s))).collect()
    }

    /// The true visible window `[offset, offset+limit)`.
    fn visible(&self, offset: usize, limit: usize) -> Vec<i64> {
        let mut items: Vec<(i64, i64)> = self.live.iter().map(|(k, (_, s))| (*k, *s)).collect();
        items.sort_by_key(|(k, s)| (*s, *k));
        items.into_iter().skip(offset).take(limit).map(|(k, _)| k).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Incremental window maintenance equals from-scratch recomputation —
    /// with renewals (reseed) allowed whenever the window reports a
    /// maintenance error — and the client replica tracks it exactly.
    #[test]
    fn incremental_equals_recompute(
        seed_items in prop::collection::btree_map(0..20i64, 0..50i64, 0..15),
        ops in ops_strategy(),
        offset in 0u64..4,
        limit in 1u64..5,
        slack in 0u64..4,
    ) {
        let mut db = Db::default();
        for (k, s) in &seed_items {
            db.put(*k, *s);
        }
        let prepared = prepared(offset, limit);
        let fetch = (offset + limit + slack) as usize;
        let mut window = SortedWindow::new(Arc::clone(&prepared), slack, &db.bootstrap(fetch));
        let mut client: Vec<WindowItem> = window.snapshot_visible();
        let mut renewals = 0u32;

        for op in &ops {
            let outcome = match *op {
                Op::Put(k, s) => {
                    let v = db.put(k, s);
                    window.apply(&Key::of(k), v, Some(&doc_of(s)))
                }
                Op::Del(k) => match db.del(k) {
                    Some(v) => window.apply(&Key::of(k), v, None),
                    None => continue,
                },
            };
            let events = if outcome.error.is_some() {
                renewals += 1;
                window.reseed(slack, &db.bootstrap(fetch), &client)
            } else {
                outcome.events
            };
            apply_events(&mut client, &events);

            // Invariant 1: the window's visible slice equals the truth.
            let visible: Vec<i64> = window
                .visible()
                .iter()
                .map(|i| i.key.0.as_i64().unwrap())
                .collect();
            prop_assert_eq!(&visible, &db.visible(offset as usize, limit as usize), "after {:?}", op);

            // Invariant 2: the client replica equals the visible slice.
            let client_keys: Vec<i64> = client.iter().map(|i| i.key.0.as_i64().unwrap()).collect();
            prop_assert_eq!(client_keys, visible, "client after {:?}", op);
        }
        // Sanity: renewals only happen for bounded windows.
        if slack > 0 && db.live.len() < (offset + limit) as usize {
            let _ = renewals;
        }
    }

    /// Stale versions never change the window.
    #[test]
    fn stale_applies_are_noops(
        seed_items in prop::collection::btree_map(0..10i64, 0..50i64, 3..10),
        k in 0..10i64,
        s_new in 0..50i64,
    ) {
        let mut db = Db::default();
        for (key, s) in &seed_items {
            db.put(*key, *s);
        }
        let prepared = prepared(0, 3);
        let mut window = SortedWindow::new(Arc::clone(&prepared), 2, &db.bootstrap(5));
        // Bump the key twice in the DB, apply only the newest, then replay
        // the older version: nothing may change.
        let _v1 = db.put(k, s_new);
        let v2 = db.put(k, s_new + 1);
        let _ = window.apply(&Key::of(k), v2, Some(&doc_of(s_new + 1)));
        let before: Vec<WindowItem> = window.visible().to_vec();
        let out = window.apply(&Key::of(k), v2 - 1, Some(&doc_of(s_new)));
        prop_assert!(out.events.is_empty());
        prop_assert!(out.error.is_none());
        prop_assert_eq!(window.visible(), &before[..]);
    }
}
