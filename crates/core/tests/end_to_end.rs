//! End-to-end cluster tests: everything crosses the event layer as opaque
//! JSON payloads, exactly like a production deployment.

use bytes::Bytes;
use invalidb_broker::{notify_topic, Broker, CLUSTER_TOPIC};
use invalidb_common::{
    doc, AfterImage, ClusterMessage, Document, Key, MatchType, Notification, NotificationKind,
    QuerySpec, ResultItem, SortDirection, SubscriptionId, SubscriptionRequest, TenantId,
};
use invalidb_core::{Cluster, ClusterConfig};
use std::time::Duration;

const TENANT: &str = "app";

fn publish(broker: &Broker, msg: &ClusterMessage) {
    broker.publish(CLUSTER_TOPIC, invalidb_json::document_to_payload(&msg.to_document()));
}

fn subscribe_msg(spec: &QuerySpec, sub: u64, initial: Vec<ResultItem>, slack: u64) -> ClusterMessage {
    ClusterMessage::Subscribe(SubscriptionRequest {
        tenant: TenantId::new(TENANT),
        subscription: SubscriptionId(sub),
        query_hash: spec.stable_hash(),
        spec: spec.clone(),
        initial,
        slack,
        ttl_micros: 60_000_000,
        renewal: false,
    })
}

fn write_msg(collection: &str, key: Key, version: u64, doc: Option<Document>) -> ClusterMessage {
    ClusterMessage::Write(AfterImage {
        tenant: TenantId::new(TENANT),
        collection: collection.into(),
        key,
        version,
        doc,
        written_at: 7,
        trace: None,
    })
}

fn decode(payload: Bytes) -> Option<Notification> {
    let d = invalidb_json::payload_to_document(&payload).ok()?;
    if d.get("type").and_then(|v| v.as_str()) == Some("heartbeat") {
        return None;
    }
    Notification::from_document(&d).ok()
}

/// Collects `n` non-heartbeat notifications (with timeout).
fn collect(sub: &invalidb_broker::Subscription, n: usize) -> Vec<Notification> {
    let mut out = Vec::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while out.len() < n && std::time::Instant::now() < deadline {
        if let Some(payload) = sub.recv_timeout(Duration::from_millis(100)) {
            if let Some(n) = decode(payload) {
                out.push(n);
            }
        }
    }
    out
}

#[test]
fn unsorted_query_full_roundtrip_on_2x2_grid() {
    let broker = Broker::new();
    let notify = broker.subscribe(&notify_topic(TENANT));
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(2, 2));

    let spec = QuerySpec::filter("users", doc! { "age" => doc! { "$gte" => 18i64 } });
    publish(&broker, &subscribe_msg(&spec, 1, vec![], 0));
    let initial = collect(&notify, 1);
    assert!(
        matches!(initial[0].kind, NotificationKind::InitialResult { ref items } if items.is_empty())
    );

    // Writes across many keys: all partitions exercised, exactly one
    // notification per matching write (no duplicates from the grid).
    for i in 0..20i64 {
        let age = if i % 2 == 0 { 30 } else { 10 };
        publish(&broker, &write_msg("users", Key::of(i), 1, Some(doc! { "age" => age })));
    }
    let notes = collect(&notify, 10);
    assert_eq!(notes.len(), 10, "exactly the 10 matching writes notify");
    for n in &notes {
        assert_eq!(n.subscription, SubscriptionId(1));
        match &n.kind {
            NotificationKind::Change(c) => {
                assert_eq!(c.match_type, MatchType::Add);
                assert_eq!(c.item.doc.as_ref().unwrap().get("age").unwrap().as_i64(), Some(30));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    // No extra notifications trickle in (each write matched on one node).
    std::thread::sleep(Duration::from_millis(200));
    assert!(collect_available(&notify).is_empty());
    cluster.shutdown();
}

fn collect_available(sub: &invalidb_broker::Subscription) -> Vec<Notification> {
    let mut out = Vec::new();
    while let Some(p) = sub.try_recv() {
        if let Some(n) = decode(p) {
            out.push(n);
        }
    }
    out
}

#[test]
fn sorted_query_roundtrip_with_change_index() {
    let broker = Broker::new();
    let notify = broker.subscribe(&notify_topic(TENANT));
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(2, 2));

    // Top-3 leaderboard by score descending.
    let spec =
        QuerySpec::filter("players", doc! {}).sorted_by("score", SortDirection::Desc).with_limit(3);
    let initial: Vec<ResultItem> =
        (0..5i64).map(|i| ResultItem::new(Key::of(i), 1, doc! { "score" => 100 - i * 10 })).collect();
    publish(&broker, &subscribe_msg(&spec, 9, initial, 2));
    let first = collect(&notify, 1);
    match &first[0].kind {
        NotificationKind::InitialResult { items } => {
            assert_eq!(items.len(), 3, "trimmed to the limit");
            assert_eq!(items[0].index, Some(0));
            assert_eq!(items[0].doc.as_ref().unwrap().get("score").unwrap().as_i64(), Some(100));
        }
        other => panic!("expected initial result, got {other:?}"),
    }

    // Player 4 (score 60, outside top 3) surges to 95: enters at index 1.
    publish(&broker, &write_msg("players", Key::of(4i64), 2, Some(doc! { "score" => 95i64 })));
    let notes = collect(&notify, 2);
    let kinds: Vec<MatchType> = notes
        .iter()
        .filter_map(|n| match &n.kind {
            NotificationKind::Change(c) => Some(c.match_type),
            _ => None,
        })
        .collect();
    assert!(kinds.contains(&MatchType::Add), "player 4 enters: {kinds:?}");
    assert!(kinds.contains(&MatchType::Remove), "player 2 drops out: {kinds:?}");
    let add = notes
        .iter()
        .find_map(|n| match &n.kind {
            NotificationKind::Change(c) if c.match_type == MatchType::Add => Some(c),
            _ => None,
        })
        .unwrap();
    assert_eq!(add.item.index, Some(1));

    // Player 0 (leader) drops to 85: moves within the window → changeIndex.
    publish(&broker, &write_msg("players", Key::of(0i64), 2, Some(doc! { "score" => 86i64 })));
    let notes = collect(&notify, 1);
    match &notes[0].kind {
        NotificationKind::Change(c) => {
            assert_eq!(c.match_type, MatchType::ChangeIndex);
            assert_eq!(c.old_index, Some(0));
            assert_eq!(c.item.index, Some(2));
        }
        other => panic!("expected changeIndex, got {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn maintenance_error_and_renewal_cycle() {
    let broker = Broker::new();
    let notify = broker.subscribe(&notify_topic(TENANT));
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(1, 1));

    let spec = QuerySpec::filter("t", doc! {}).sorted_by("n", SortDirection::Asc).with_limit(2);
    // Bootstrap with slack 1: window = 3 of the 5 matching items.
    let initial: Vec<ResultItem> =
        (0..3i64).map(|i| ResultItem::new(Key::of(i), 1, doc! { "n" => i })).collect();
    publish(&broker, &subscribe_msg(&spec, 5, initial, 1));
    collect(&notify, 1); // initial

    // Delete item 0: slack absorbs it (1 enters visible... window refills).
    publish(&broker, &write_msg("t", Key::of(0i64), 2, None));
    let notes = collect(&notify, 2);
    assert_eq!(notes.len(), 2, "remove + slack item enters: {notes:?}");

    // Delete item 1: window drops below limit with knowledge incomplete →
    // maintenance error (renewal request).
    publish(&broker, &write_msg("t", Key::of(1i64), 2, None));
    let notes = collect(&notify, 1);
    assert!(
        matches!(notes[0].kind, NotificationKind::Error(_)),
        "expected renewal request, got {:?}",
        notes[0].kind
    );

    // Application server renews: re-subscribes with a fresh result.
    let fresh: Vec<ResultItem> =
        (2..5i64).map(|i| ResultItem::new(Key::of(i), 1, doc! { "n" => i })).collect();
    publish(&broker, &subscribe_msg(&spec, 5, fresh, 1));
    // Client held [1, 2] visible... last valid visible was [2, 3]; fresh
    // visible is [2, 3] → the delta depends on timing; at minimum the
    // query must be maintainable again:
    std::thread::sleep(Duration::from_millis(300));
    while notify.try_recv().is_some() {}
    publish(&broker, &write_msg("t", Key::of(2i64), 2, None));
    let notes = collect(&notify, 1);
    assert!(
        notes.iter().any(|n| matches!(n.kind, NotificationKind::Change(_))),
        "query maintains incrementally after renewal: {notes:?}"
    );
    cluster.shutdown();
}

#[test]
fn heartbeats_flow_to_tenant_topics() {
    let broker = Broker::new();
    let notify = broker.subscribe(&notify_topic(TENANT));
    let mut cfg = ClusterConfig::new(1, 1);
    cfg.heartbeat_interval = Duration::from_millis(30);
    cfg.tick_interval = Duration::from_millis(10);
    let cluster = Cluster::start(broker.clone(), cfg);

    let spec = QuerySpec::filter("t", doc! {});
    publish(&broker, &subscribe_msg(&spec, 1, vec![], 0));
    let mut heartbeats = 0;
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while heartbeats < 3 && std::time::Instant::now() < deadline {
        if let Some(p) = notify.recv_timeout(Duration::from_millis(100)) {
            let d = invalidb_json::payload_to_document(&p).unwrap();
            if d.get("type").and_then(|v| v.as_str()) == Some("heartbeat") {
                heartbeats += 1;
            }
        }
    }
    assert!(heartbeats >= 3, "heartbeats arrive periodically");
    cluster.shutdown();
}

#[test]
fn write_subscription_race_closed_by_retention_under_chaos() {
    // Delayed event-layer delivery: the subscription can overtake the write
    // or vice versa; retention replay + staleness avoidance must converge to
    // exactly one add notification either way.
    for seed in 0..10 {
        let broker = Broker::with_chaos(invalidb_broker::ChaosConfig {
            seed,
            delay: Some((Duration::ZERO, Duration::from_millis(20))),
            drop_probability: 0.0,
            scope: Default::default(),
        });
        let notify = broker.subscribe(&notify_topic(TENANT));
        let cluster = Cluster::start(broker.clone(), ClusterConfig::new(1, 1));

        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 0i64 } });
        // Write and subscription race through the chaotic broker. The write
        // is NOT in the initial result (simulating the write-query race
        // having resolved with the query reading before the write).
        publish(&broker, &write_msg("t", Key::of("raced"), 1, Some(doc! { "n" => 1i64 })));
        publish(&broker, &subscribe_msg(&spec, 1, vec![], 0));

        let notes = collect(&notify, 2); // initial + add
        let adds: Vec<&Notification> = notes
            .iter()
            .filter(|n| matches!(&n.kind, NotificationKind::Change(c) if c.match_type == MatchType::Add))
            .collect();
        assert_eq!(adds.len(), 1, "seed {seed}: exactly one add, got {notes:?}");
        cluster.shutdown();
    }
}

#[test]
fn cluster_death_leaves_publishers_unharmed() {
    let broker = Broker::new();
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(1, 1));
    cluster.shutdown(); // "worst case: the InvaliDB cluster is taken down"
                        // Requests against the event layer remain unanswered, but nothing errors.
    let spec = QuerySpec::filter("t", doc! {});
    publish(&broker, &subscribe_msg(&spec, 1, vec![], 0));
    publish(&broker, &write_msg("t", Key::of(1i64), 1, Some(doc! {})));
}

#[test]
fn malformed_payloads_are_counted_not_fatal() {
    let broker = Broker::new();
    let notify = broker.subscribe(&notify_topic(TENANT));
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(1, 1));
    broker.publish(CLUSTER_TOPIC, Bytes::from_static(b"this is not json"));
    broker.publish(CLUSTER_TOPIC, Bytes::from_static(b"{\"op\": \"bogus\"}"));
    // The cluster keeps working.
    let spec = QuerySpec::filter("t", doc! {});
    publish(&broker, &subscribe_msg(&spec, 1, vec![], 0));
    let notes = collect(&notify, 1);
    assert!(matches!(notes[0].kind, NotificationKind::InitialResult { .. }));
    assert_eq!(cluster.decode_errors(), 2);
    cluster.shutdown();
}

#[test]
fn torn_binary_payloads_are_counted_not_fatal() {
    let broker = Broker::new();
    let notify = broker.subscribe(&notify_topic(TENANT));
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(1, 1));

    // A valid binary write envelope, torn mid-payload (e.g. a producer
    // died mid-write): counted as a decode error, never a panic.
    let msg = write_msg("t", Key::of("torn"), 1, Some(doc! { "n" => 1i64 }));
    let full = invalidb_json::document_to_binary_payload(&msg.to_document());
    broker.publish(CLUSTER_TOPIC, Bytes::copy_from_slice(&full[..full.len() / 2]));
    // Bare magic with nothing behind it is a decode error too.
    broker.publish(CLUSTER_TOPIC, Bytes::from_static(b"IVBD"));

    // The cluster keeps working, binary and JSON alike.
    let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 0i64 } });
    publish(&broker, &subscribe_msg(&spec, 1, vec![], 0));
    broker.publish(
        CLUSTER_TOPIC,
        invalidb_json::document_to_binary_payload(
            &write_msg("t", Key::of("ok"), 1, Some(doc! { "n" => 5i64 })).to_document(),
        ),
    );
    let notes = collect(&notify, 2); // initial + add
    assert!(matches!(notes[0].kind, NotificationKind::InitialResult { .. }));
    assert!(matches!(&notes[1].kind, NotificationKind::Change(c) if c.match_type == MatchType::Add));
    assert_eq!(cluster.decode_errors(), 2);
    cluster.shutdown();
}

#[test]
fn multi_tenant_topics_are_isolated() {
    let broker = Broker::new();
    let notify_a = broker.subscribe(&notify_topic("tenant-a"));
    let notify_b = broker.subscribe(&notify_topic("tenant-b"));
    let cluster = Cluster::start(broker.clone(), ClusterConfig::new(2, 2));

    let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 0i64 } });
    for (tenant, sub) in [("tenant-a", 1u64), ("tenant-b", 2)] {
        let msg = ClusterMessage::Subscribe(SubscriptionRequest {
            tenant: TenantId::new(tenant),
            subscription: SubscriptionId(sub),
            query_hash: spec.stable_hash(),
            spec: spec.clone(),
            initial: vec![],
            slack: 0,
            ttl_micros: 60_000_000,
            renewal: false,
        });
        publish(&broker, &msg);
    }
    collect(&notify_a, 1);
    collect(&notify_b, 1);
    // A write from tenant-a only notifies tenant-a.
    let msg = ClusterMessage::Write(AfterImage {
        tenant: TenantId::new("tenant-a"),
        collection: "t".into(),
        key: Key::of(1i64),
        version: 1,
        doc: Some(doc! { "n" => 5i64 }),
        written_at: 0,
        trace: None,
    });
    publish(&broker, &msg);
    let a = collect(&notify_a, 1);
    assert_eq!(a.len(), 1);
    std::thread::sleep(Duration::from_millis(200));
    assert!(collect_available(&notify_b).is_empty(), "tenant-b sees nothing");
    cluster.shutdown();
}

/// Mini-batch matching is a pure optimization: a burst of writes drained
/// as one topology batch must produce **byte-identical** notifications —
/// content and order, per subscription — to the same writes processed one
/// message per turn, under both envelope codecs.
#[test]
fn batched_writes_notify_byte_identically_to_serial() {
    use invalidb_json::WireCodec;
    use std::collections::HashMap;

    for codec in [WireCodec::Json, WireCodec::Binary] {
        let run = |max_batch: usize| -> HashMap<u64, Vec<Bytes>> {
            let broker = Broker::new();
            let notify = broker.subscribe(&notify_topic(TENANT));
            // A single chain of tasks (1x1 grid, one task per stage) makes
            // per-subscription order fully deterministic; batching may only
            // change how many messages share a scheduling turn.
            let cfg = ClusterConfig::builder(1, 1)
                .query_ingest_nodes(1)
                .write_ingest_nodes(1)
                .sorting_tasks(1)
                .wire_codec(codec)
                .max_batch(max_batch)
                .build()
                .unwrap();
            let cluster = Cluster::start(broker.clone(), cfg);
            let publish = |msg: &ClusterMessage| {
                broker.publish(CLUSTER_TOPIC, codec.encode(&msg.to_document()));
            };

            let unsorted = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 25i64 } });
            let sorted =
                QuerySpec::filter("t", doc! {}).sorted_by("n", SortDirection::Desc).with_limit(3);
            publish(&subscribe_msg(&unsorted, 1, vec![], 0));
            publish(&subscribe_msg(&sorted, 2, vec![], 4));
            collect(&notify, 2); // both initial results

            // A deterministic burst published back-to-back so the batched
            // run actually drains multi-message turns: repeated keys (runs
            // split within a batch), updates moving records across the
            // filter boundary, and deletes.
            let mut versions: HashMap<i64, u64> = HashMap::new();
            for i in 0..60i64 {
                let key = i % 7;
                let v = versions.entry(key).or_insert(0);
                *v += 1;
                let msg = if i % 9 == 8 {
                    write_msg("t", Key::of(key), *v, None)
                } else {
                    write_msg("t", Key::of(key), *v, Some(doc! { "n" => (i * 13) % 50 }))
                };
                publish(&msg);
            }

            // Collect raw payloads until quiescent, grouped by subscription
            // (heartbeats are unsubscription-addressed and timing-dependent,
            // so they are excluded from the comparison).
            let mut out: HashMap<u64, Vec<Bytes>> = HashMap::new();
            let mut idle = 0;
            while idle < 8 {
                match notify.recv_timeout(Duration::from_millis(100)) {
                    Some(p) => {
                        if let Some(n) = decode(p.clone()) {
                            idle = 0;
                            out.entry(n.subscription.0).or_default().push(p);
                        }
                    }
                    None => idle += 1,
                }
            }
            cluster.shutdown();
            out
        };

        let serial = run(1);
        let batched = run(32);
        assert!(
            serial.values().map(Vec::len).sum::<usize>() > 10,
            "workload produced too few notifications to be meaningful"
        );
        let mut subs: Vec<&u64> = serial.keys().chain(batched.keys()).collect();
        subs.sort();
        subs.dedup();
        for sub in subs {
            let s = serial.get(sub).map(Vec::as_slice).unwrap_or_default();
            let b = batched.get(sub).map(Vec::as_slice).unwrap_or_default();
            assert_eq!(
                s.len(),
                b.len(),
                "{codec:?} subscription {sub}: serial {} vs batched {} notifications",
                s.len(),
                b.len()
            );
            for (i, (sp, bp)) in s.iter().zip(b).enumerate() {
                assert_eq!(
                    sp, bp,
                    "{codec:?} subscription {sub}: notification {i} differs byte-wise"
                );
            }
        }
    }
}

/// The multi-query index is a pure optimization: with and without it, the
/// same workload must produce exactly the same notifications.
#[test]
fn query_index_is_transparent() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let run = |indexed: bool| -> Vec<String> {
        let broker = Broker::new();
        let notify = broker.subscribe(&notify_topic(TENANT));
        let mut cfg = ClusterConfig::new(2, 2);
        cfg.multi_query_index = indexed;
        let cluster = Cluster::start(broker.clone(), cfg);

        // A mix of indexable range queries and non-indexable shapes.
        let mut specs = Vec::new();
        for i in 0..10i64 {
            specs.push(QuerySpec::filter(
                "t",
                doc! { "n" => doc! { "$gte" => i * 10, "$lt" => i * 10 + 10 } },
            ));
        }
        specs.push(QuerySpec::filter(
            "t",
            doc! { "$or" => vec![
                invalidb_common::Value::Object(doc! { "n" => 5i64 }),
                invalidb_common::Value::Object(doc! { "tag" => "x" }),
            ]},
        ));
        specs.push(QuerySpec::filter("t", doc! { "n" => doc! { "$ne" => 50i64 } }));
        for (i, spec) in specs.iter().enumerate() {
            publish(&broker, &subscribe_msg(spec, i as u64 + 1, vec![], 0));
        }
        // Deterministic write mix: inserts, updates (moving records across
        // ranges), deletes.
        let mut rng = StdRng::seed_from_u64(77);
        let mut versions = std::collections::HashMap::new();
        for _ in 0..120 {
            let key = rng.gen_range(0..15i64);
            let v = versions.entry(key).or_insert(0u64);
            *v += 1;
            let msg = if rng.gen_bool(0.2) {
                write_msg("t", Key::of(key), *v, None)
            } else {
                let n = rng.gen_range(0..100i64);
                write_msg("t", Key::of(key), *v, Some(doc! { "n" => n, "tag" => "x" }))
            };
            publish(&broker, &msg);
        }
        // Collect until quiescent. Heartbeats keep arriving forever and
        // must not reset the idle counter.
        let mut out = Vec::new();
        let mut idle = 0;
        while idle < 8 {
            match notify.recv_timeout(Duration::from_millis(100)) {
                Some(p) => {
                    if let Some(n) = decode(p) {
                        idle = 0;
                        if let NotificationKind::Change(c) = &n.kind {
                            out.push(format!(
                                "{} {} {} v{}",
                                n.subscription.0, c.match_type, c.item.key, c.item.version
                            ));
                        }
                    }
                }
                None => idle += 1,
            }
        }
        cluster.shutdown();
        out.sort();
        out
    };

    let with_index = run(true);
    let without_index = run(false);
    assert!(!with_index.is_empty());
    assert_eq!(with_index, without_index, "index changed observable behaviour");
}

/// Equivalence proof for the sublinear-matching optimizations: conjunctive
/// anchoring, equality lanes and the shared predicate cache must be
/// invisible in the output. The same workload — heavy on conjunctions,
/// `$eq`/`$in` shapes and *duplicated* filters (shared across
/// subscriptions and spelled differently) — must notify identically with
/// the index enabled and in force-scan mode.
#[test]
fn conjunctive_and_shared_shapes_notify_identically_to_force_scan() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let run = |indexed: bool| -> Vec<String> {
        let broker = Broker::new();
        let notify = broker.subscribe(&notify_topic(TENANT));
        // Single chain of tasks: with one matching cell and one sorting
        // task, per-subscription notification content (including sorted
        // index positions) is fully deterministic, so any difference below
        // is the optimization's fault, not scheduling.
        let mut cfg = ClusterConfig::builder(1, 1)
            .query_ingest_nodes(1)
            .write_ingest_nodes(1)
            .sorting_tasks(1)
            .build()
            .unwrap();
        cfg.multi_query_index = indexed;
        let cluster = Cluster::start(broker.clone(), cfg);

        let statuses = ["open", "closed", "pending"];
        let mut specs = Vec::new();
        // Conjunctive: equality anchor + range residual.
        for (i, status) in statuses.iter().enumerate() {
            specs.push(QuerySpec::filter(
                "t",
                doc! { "status" => *status, "n" => doc! { "$lt" => (i as i64 + 1) * 30 } },
            ));
        }
        // Eq-heavy and $in shapes.
        specs.push(QuerySpec::filter("t", doc! { "status" => "open" }));
        specs.push(QuerySpec::filter(
            "t",
            doc! { "status" => doc! { "$in" => vec!["open", "closed"] } },
        ));
        // Duplicated filter, spelled two ways: both normalize to one query
        // hash, so two subscriptions share one group.
        specs.push(QuerySpec::filter(
            "t",
            doc! { "status" => "open", "n" => doc! { "$gte" => 10i64 } },
        ));
        specs.push(QuerySpec::filter(
            "t",
            doc! { "$and" => vec![
                invalidb_common::Value::Object(doc! { "n" => doc! { "$gte" => 10i64 } }),
                invalidb_common::Value::Object(doc! { "status" => doc! { "$eq" => "open" } }),
            ]},
        ));
        // Multi-op range condition (split into atoms, combined anchor) —
        // matched via array fan-out too.
        specs.push(QuerySpec::filter("t", doc! { "n" => doc! { "$gt" => 5i64, "$lt" => 40i64 } }));
        // A sorted conjunctive query exercises the staged path.
        specs.push(
            QuerySpec::filter("t", doc! { "status" => "open" })
                .sorted_by("n", SortDirection::Asc)
                .with_limit(5),
        );
        for (i, spec) in specs.iter().enumerate() {
            publish(&broker, &subscribe_msg(spec, i as u64 + 1, vec![], 2));
        }
        let mut rng = StdRng::seed_from_u64(123);
        let mut versions = std::collections::HashMap::new();
        for round in 0..120 {
            let key = rng.gen_range(0..12i64);
            let v = versions.entry(key).or_insert(0u64);
            *v += 1;
            let msg = if rng.gen_bool(0.15) {
                write_msg("t", Key::of(key), *v, None)
            } else {
                let status = statuses[rng.gen_range(0..statuses.len())];
                let doc = if round % 10 == 9 {
                    // Array-valued attribute: fan-out semantics.
                    doc! {
                        "status" => status,
                        "n" => vec![rng.gen_range(0..30i64), rng.gen_range(30..90i64)],
                    }
                } else {
                    doc! { "status" => status, "n" => rng.gen_range(0..90i64) }
                };
                write_msg("t", Key::of(key), *v, Some(doc))
            };
            publish(&broker, &msg);
        }
        let mut out = Vec::new();
        let mut idle = 0;
        while idle < 8 {
            match notify.recv_timeout(Duration::from_millis(100)) {
                Some(p) => {
                    if let Some(n) = decode(p) {
                        idle = 0;
                        if let NotificationKind::Change(c) = &n.kind {
                            out.push(format!(
                                "{} {} {} v{} idx{:?}",
                                n.subscription.0,
                                c.match_type,
                                c.item.key,
                                c.item.version,
                                c.item.index
                            ));
                        }
                    }
                }
                None => idle += 1,
            }
        }
        cluster.shutdown();
        out.sort();
        out
    };

    let with_index = run(true);
    let force_scan = run(false);
    assert!(with_index.len() > 50, "workload too small to be meaningful");
    assert_eq!(with_index, force_scan, "shared-execution optimizations changed behaviour");
}
