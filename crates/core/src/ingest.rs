//! Zero-copy envelope decoding for the ingestion tier.
//!
//! The hot message on the cluster topic is the write after-image, and the
//! eager decode path pays for it twice: `payload_to_document` materializes
//! the *entire* envelope (including the embedded record state), then
//! `ClusterMessage::from_document` clones the `doc` subtree again into the
//! [`AfterImage`]. [`decode_cluster_message`] keeps the same observable
//! result while doing neither: binary (`IVBD`) write envelopes are walked
//! once through a borrowed [`LazyDoc`] view, materializing only the three
//! subtrees the after-image actually owns (`key`, `doc`, `trace`) straight
//! into their final places. JSON payloads and control ops (subscribe /
//! unsubscribe / extendTtl — rare, and structurally dominated by the
//! initial result) fall back to the eager decoder.
//!
//! Equivalence contract: for every payload, the fast path either produces
//! the exact message the eager path would, or bows out and lets the eager
//! path run (so malformed payloads are still counted as decode errors by
//! the caller exactly as before).

use invalidb_common::{ClusterMessage, Key, TenantId, TraceContext};
use invalidb_json::lazy::{LazyDoc, LazyValue};

/// Decodes an event-layer payload into a [`ClusterMessage`], zero-copy for
/// binary write envelopes. Returns `None` when the payload is malformed
/// under *both* paths — the same outcomes as
/// `payload_to_document(..).ok().and_then(|d| ClusterMessage::from_document(&d).ok())`.
pub fn decode_cluster_message(payload: &[u8]) -> Option<ClusterMessage> {
    if let Some(msg) = try_decode_binary_write(payload) {
        return Some(msg);
    }
    let bytes = bytes::Bytes::copy_from_slice(payload);
    let doc = invalidb_json::payload_to_document(&bytes).ok()?;
    ClusterMessage::from_document(&doc).ok()
}

/// Borrowed-`Bytes` variant of [`decode_cluster_message`] that avoids the
/// defensive copy on the eager fallback.
pub fn decode_cluster_payload(payload: &bytes::Bytes) -> Option<ClusterMessage> {
    if let Some(msg) = try_decode_binary_write(payload) {
        return Some(msg);
    }
    let doc = invalidb_json::payload_to_document(payload).ok()?;
    ClusterMessage::from_document(&doc).ok()
}

/// The fast path: one skip-scan pass over a binary write envelope.
/// `None` means "not a well-formed binary write" — the caller falls back
/// to the eager decoder, which reproduces the old error accounting.
fn try_decode_binary_write(payload: &[u8]) -> Option<ClusterMessage> {
    if !invalidb_json::bin::is_binary(payload) {
        return None;
    }
    let lazy = LazyDoc::new(payload).ok()?;

    // One pass over the envelope fields; later duplicates overwrite, which
    // is exactly the last-duplicate-wins rule of the eager decoder.
    let mut is_write = false;
    let mut tenant: Option<String> = None;
    let mut collection: Option<String> = None;
    let mut key: Option<Key> = None;
    let mut version: Option<i64> = None;
    let mut written_at: u64 = 0;
    let mut doc = None;
    let mut trace: Option<TraceContext> = None;
    for entry in lazy.root().entries() {
        let (k, v) = entry.ok()?;
        match k {
            "op" => is_write = v.as_str() == Some("write"),
            "tenant" => tenant = Some(v.as_str()?.to_owned()),
            "collection" => collection = Some(v.as_str()?.to_owned()),
            "key" => key = Some(Key(v.materialize().ok()?)),
            "version" => version = Some(lazy_i64(&v)?),
            "writtenAt" => written_at = lazy_i64(&v).unwrap_or(0) as u64,
            "doc" => {
                doc = match v {
                    LazyValue::Null => Some(None),
                    LazyValue::Object(obj) => Some(Some(obj.materialize().ok()?)),
                    _ => return None, // eager path rejects non-object `doc`
                }
            }
            "trace" => {
                let td = v.as_object()?.materialize().ok()?;
                trace = Some(TraceContext::from_document(&td).ok()?);
            }
            _ => {}
        }
    }
    if !is_write {
        return None;
    }
    Some(ClusterMessage::Write(invalidb_common::AfterImage {
        tenant: TenantId(tenant?),
        collection: collection?,
        key: key?,
        version: version? as invalidb_common::Version,
        doc: doc.unwrap_or(None),
        written_at,
        trace,
    }))
}

/// Mirrors `Value::as_i64`: integers, plus floats with no fractional part.
fn lazy_i64(v: &LazyValue<'_>) -> Option<i64> {
    match v {
        LazyValue::Int(i) => Some(*i),
        LazyValue::Float(f) if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f < i64::MAX as f64 => {
            Some(*f as i64)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::{doc, AfterImage, QueryHash, SubscriptionId, Value};
    use invalidb_json::WireCodec;

    fn eager(payload: &bytes::Bytes) -> Option<ClusterMessage> {
        let d = invalidb_json::payload_to_document(payload).ok()?;
        ClusterMessage::from_document(&d).ok()
    }

    fn sample_messages() -> Vec<ClusterMessage> {
        let mut trace = TraceContext { trace_id: 7, stamps: Vec::new() };
        trace.stamp_at(invalidb_common::Stage::AppServer, 100);
        vec![
            ClusterMessage::Write(AfterImage {
                tenant: TenantId::new("app"),
                collection: "users".into(),
                key: Key::of("u1"),
                version: 3,
                doc: Some(doc! { "n" => 9i64, "tags" => vec![Value::from("a")] }),
                written_at: 1234,
                trace: None,
            }),
            ClusterMessage::Write(AfterImage {
                tenant: TenantId::new("app"),
                collection: "users".into(),
                key: Key::of(5i64),
                version: 8,
                doc: None,
                written_at: 0,
                trace: Some(trace),
            }),
            ClusterMessage::Unsubscribe {
                tenant: TenantId::new("app"),
                subscription: SubscriptionId(4),
                query_hash: QueryHash(11),
            },
        ]
    }

    #[test]
    fn fast_path_agrees_with_eager_for_both_codecs() {
        for msg in sample_messages() {
            for codec in [WireCodec::Json, WireCodec::Binary] {
                let payload = codec.encode(&msg.to_document());
                assert_eq!(decode_cluster_payload(&payload), eager(&payload), "{msg:?}");
                assert_eq!(decode_cluster_payload(&payload).as_ref(), Some(&msg));
            }
        }
    }

    #[test]
    fn binary_writes_take_the_lazy_path() {
        let ClusterMessage::Write(img) = &sample_messages()[0] else { unreachable!() };
        let payload = WireCodec::Binary.encode(&ClusterMessage::Write(img.clone()).to_document());
        assert!(try_decode_binary_write(&payload).is_some());
        // Control ops and JSON fall through to the eager decoder.
        let unsub = &sample_messages()[2];
        let ctrl = WireCodec::Binary.encode(&unsub.to_document());
        assert!(try_decode_binary_write(&ctrl).is_none());
        let json = WireCodec::Json.encode(&ClusterMessage::Write(img.clone()).to_document());
        assert!(try_decode_binary_write(&json).is_none());
    }

    #[test]
    fn malformed_payloads_decode_to_none_like_eager() {
        let msg = &sample_messages()[0];
        let full = WireCodec::Binary.encode(&msg.to_document());
        for cut in 1..full.len() {
            let torn = bytes::Bytes::copy_from_slice(&full[..cut]);
            assert_eq!(decode_cluster_payload(&torn), eager(&torn), "cut at {cut}");
        }
    }
}
