//! The notification sink: serializes outbound messages and publishes them
//! to the event layer, plus heartbeat emission (§5.1).
//!
//! The first notification for any real-time query is the initial result; it
//! is emitted here directly from the subscription request (trimmed to the
//! original offset/limit window, since the request carries the *rewritten*
//! bootstrap result). In the absence of heartbeat messages an application
//! server terminates affected subscriptions with an error, so the notifier
//! periodically pings every tenant topic it has seen.

use crate::config::ClusterConfig;
use crate::event::{Event, OutMsg};
use invalidb_broker::{notify_topic, BrokerHandle};
use invalidb_common::{
    doc, Clock, Notification, NotificationKind, Stage, SubscriptionRequest, TenantId, Timestamp,
};
use invalidb_stream::{Bolt, BoltContext};
use std::collections::HashMap;
use std::sync::Arc;

/// The notifier bolt.
pub struct Notifier {
    broker: BrokerHandle,
    config: ClusterConfig,
    clock: Arc<dyn Clock>,
    /// Tenants seen, with the time of their last heartbeat.
    tenants: HashMap<TenantId, Timestamp>,
}

impl Notifier {
    /// Creates the notifier.
    pub fn new(broker: BrokerHandle, config: ClusterConfig, clock: Arc<dyn Clock>) -> Self {
        Self { broker, config, clock, tenants: HashMap::new() }
    }

    fn publish(&self, notification: &Notification) {
        self.config.metrics.inc("notifier.published");
        // Traced notifications get the notifier stamp right before they are
        // serialized onto the event layer; the clone only happens for
        // sampled traces.
        if notification.trace.is_some() {
            let mut stamped = notification.clone();
            if let Some(trace) = stamped.trace.as_mut() {
                trace.stamp(Stage::Notifier);
            }
            let payload = self.config.wire_codec.encode(&stamped.to_document());
            self.broker.publish(&notify_topic(&stamped.tenant.0), payload);
            return;
        }
        let payload = self.config.wire_codec.encode(&notification.to_document());
        self.broker.publish(&notify_topic(&notification.tenant.0), payload);
    }

    fn initial_result(&mut self, req: &SubscriptionRequest) {
        self.remember(req.tenant.clone());
        if req.renewal {
            // Silent re-registration (failover replay): the client already
            // holds a live result, so re-emitting the cached bootstrap
            // snapshot would clobber it with stale state.
            self.config.metrics.inc("notifier.silent_renewals");
            return;
        }
        if req.spec.needs_aggregation_stage() {
            // Aggregate queries: the aggregation stage emits the initial
            // aggregate value instead of an item list.
            return;
        }
        // Trim the bootstrap result to the client-visible window.
        let skip = req.spec.offset as usize;
        let take = req.spec.limit.map(|l| l as usize).unwrap_or(usize::MAX);
        let sorted = !req.spec.sort.is_empty();
        let items = req
            .initial
            .iter()
            .skip(skip)
            .take(take)
            .enumerate()
            .map(|(i, item)| {
                let mut item = item.clone();
                item.index = sorted.then_some(i as u64);
                item
            })
            .collect();
        self.publish(&Notification {
            tenant: req.tenant.clone(),
            subscription: req.subscription,
            kind: NotificationKind::InitialResult { items },
            caused_by_write_at: 0,
            trace: None,
        });
    }

    fn remember(&mut self, tenant: TenantId) {
        self.tenants.entry(tenant).or_insert_with(|| self.clock.now());
    }

    fn heartbeat(&mut self) {
        let now = self.clock.now();
        let interval = self.config.heartbeat_interval;
        for (tenant, last) in self.tenants.iter_mut() {
            if now.since(*last) >= interval {
                *last = now;
                let payload = self.config.wire_codec.encode(&doc! {
                    "type" => "heartbeat",
                    "tenant" => tenant.0.clone(),
                });
                self.broker.publish(&notify_topic(&tenant.0), payload);
            }
        }
    }
}

impl Bolt<Event> for Notifier {
    fn execute(&mut self, input: Event, _ctx: &mut BoltContext<'_, Event>) {
        match input {
            Event::Subscribe(req) => self.initial_result(&req),
            Event::Out(msg) => match &*msg {
                OutMsg::Notify(n) => {
                    self.remember(n.tenant.clone());
                    self.publish(n);
                }
                OutMsg::Heartbeat { tenant } => {
                    let payload = self.config.wire_codec.encode(&doc! {
                        "type" => "heartbeat",
                        "tenant" => tenant.0.clone(),
                    });
                    self.broker.publish(&notify_topic(&tenant.0), payload);
                }
            },
            _ => {}
        }
    }

    fn tick(&mut self, _ctx: &mut BoltContext<'_, Event>) {
        self.heartbeat();
    }
}
