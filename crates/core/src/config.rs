//! Cluster configuration.

use invalidb_common::{ConfigError, Stage, TraceContext};
use invalidb_obs::MetricsRegistry;
use invalidb_query::{MongoQueryEngine, QueryEngine};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Identity of the worker process hosting this cluster in a multi-process
/// deployment: the name registered with the coordinator plus the *live*
/// assignment epoch (shared with the worker control loop, so trace stamps
/// always carry the epoch in force at processing time, not the epoch at
/// topology build time).
///
/// When set on a [`ClusterConfig`], sampled traces are stamped with this
/// identity at the ingestion and filtering stages — a cross-process trace
/// then names the workerd cell that matched the write.
#[derive(Debug, Clone)]
pub struct WorkerIdentity {
    name: Arc<str>,
    epoch: Arc<AtomicU64>,
}

impl WorkerIdentity {
    /// Creates an identity from the registered worker name and the live
    /// epoch cell (shared with whatever advances the epoch on `Assign`).
    pub fn new(name: impl Into<String>, epoch: Arc<AtomicU64>) -> WorkerIdentity {
        WorkerIdentity { name: name.into().into(), epoch }
    }

    /// The worker name as registered with the coordinator.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The assignment epoch currently in force.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Stamps `stage` on a sampled trace, annotated with this identity.
    pub fn stamp(&self, trace: &mut TraceContext, stage: Stage) {
        trace.stamp_worker(stage, &self.name, self.epoch());
    }
}

/// Configuration of an InvaliDB cluster.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of query partitions (grid rows). Scales the number of
    /// sustainable concurrent queries (§6.2).
    pub query_partitions: usize,
    /// Number of write partitions (grid columns). Scales sustainable write
    /// throughput (§6.3).
    pub write_partitions: usize,
    /// Parallelism of the sorting stage (scaled independently, §5.2).
    pub sorting_tasks: usize,
    /// Parallelism of the aggregation stage (extension, §8.1).
    pub aggregation_tasks: usize,
    /// Stateless query-ingestion nodes (the evaluation used 1).
    pub query_ingest_nodes: usize,
    /// Stateless write-ingestion nodes (the evaluation used 4).
    pub write_ingest_nodes: usize,
    /// Write-stream retention time: how long matching nodes keep received
    /// after-images for replay on subscription (§5.1; Baqend runs a few
    /// seconds).
    pub retention: Duration,
    /// Interval between heartbeat messages to application servers.
    pub heartbeat_interval: Duration,
    /// The pluggable query engine (§5.3).
    pub engine: Arc<dyn QueryEngine>,
    /// Per-task input queue capacity (backpressure bound).
    pub queue_capacity: usize,
    /// Tick interval of the underlying topology.
    pub tick_interval: Duration,
    /// Enable the multi-query index (interval trees over single-attribute
    /// range/equality filters) in the matching nodes — the thesis's
    /// multi-query optimization. Disable to force the naive
    /// evaluate-every-query path (ablation).
    pub multi_query_index: bool,
    /// Optional synthetic CPU cost per query evaluation, used by the
    /// benchmark harness to emulate the paper's per-node throttling (§6.1)
    /// so saturation knees appear at laptop-friendly workload sizes.
    pub synthetic_match_cost: Option<Duration>,
    /// The metrics registry the cluster reports into. Defaults to a fresh
    /// registry; pass a shared one to aggregate several components (e.g.
    /// cluster + app server) into a single snapshot.
    pub metrics: MetricsRegistry,
    /// Optional bind address (e.g. `"127.0.0.1:9464"`) for the admin
    /// endpoint serving `/metrics`, `/healthz`, `/queries` and `/flight`
    /// over HTTP. `None` (the default) disables the endpoint.
    pub admin_addr: Option<String>,
    /// Codec for the envelopes the cluster produces (notifications,
    /// initial results, heartbeats). Consumers always sniff the codec from
    /// the payload, so this is purely a producer-side knob; the default is
    /// the binary (`IVBD`) codec.
    pub wire_codec: invalidb_json::WireCodec,
    /// How many buffered messages a topology task drains per scheduling
    /// turn before it checks the clock again (batch execution). Higher
    /// values amortize channel wakeups under load; `1` reproduces the old
    /// one-message-per-turn behavior.
    pub max_batch: usize,
    /// Identity of the hosting worker process in a multi-process
    /// deployment. When set, sampled traces are stamped with the worker
    /// name and live epoch at the ingestion and filtering stages. `None`
    /// (the default) for single-process clusters.
    pub worker_identity: Option<WorkerIdentity>,
}

impl ClusterConfig {
    /// A `query_partitions` × `write_partitions` cluster with defaults
    /// matching the paper's evaluation setup.
    pub fn new(query_partitions: usize, write_partitions: usize) -> Self {
        Self {
            query_partitions,
            write_partitions,
            sorting_tasks: 2,
            aggregation_tasks: 1,
            query_ingest_nodes: 1,
            write_ingest_nodes: 4,
            retention: Duration::from_secs(2),
            heartbeat_interval: Duration::from_millis(500),
            engine: Arc::new(MongoQueryEngine),
            queue_capacity: 8192,
            tick_interval: Duration::from_millis(50),
            multi_query_index: true,
            synthetic_match_cost: None,
            metrics: MetricsRegistry::new(),
            admin_addr: None,
            wire_codec: invalidb_json::WireCodec::default(),
            max_batch: 32,
            worker_identity: None,
        }
    }

    /// A validating builder for the same settings; rejects inconsistent
    /// combinations (zero partitions, zero queue capacity, …) at
    /// construction time instead of panicking deep inside `Cluster::start`.
    pub fn builder(query_partitions: usize, write_partitions: usize) -> ClusterConfigBuilder {
        ClusterConfigBuilder { config: ClusterConfig::new(query_partitions, write_partitions) }
    }

    /// Overrides the query engine.
    pub fn with_engine(mut self, engine: Arc<dyn QueryEngine>) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the retention window.
    pub fn with_retention(mut self, retention: Duration) -> Self {
        self.retention = retention;
        self
    }
}

/// Builder returned by [`ClusterConfig::builder`]. Each setter overrides
/// one field; [`ClusterConfigBuilder::build`] validates the combination.
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    config: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Sets the sorting-stage parallelism.
    pub fn sorting_tasks(mut self, n: usize) -> Self {
        self.config.sorting_tasks = n;
        self
    }

    /// Sets the aggregation-stage parallelism.
    pub fn aggregation_tasks(mut self, n: usize) -> Self {
        self.config.aggregation_tasks = n;
        self
    }

    /// Sets the number of query-ingestion nodes.
    pub fn query_ingest_nodes(mut self, n: usize) -> Self {
        self.config.query_ingest_nodes = n;
        self
    }

    /// Sets the number of write-ingestion nodes.
    pub fn write_ingest_nodes(mut self, n: usize) -> Self {
        self.config.write_ingest_nodes = n;
        self
    }

    /// Sets the write-stream retention window.
    pub fn retention(mut self, retention: Duration) -> Self {
        self.config.retention = retention;
        self
    }

    /// Sets the heartbeat interval.
    pub fn heartbeat_interval(mut self, interval: Duration) -> Self {
        self.config.heartbeat_interval = interval;
        self
    }

    /// Sets the pluggable query engine.
    pub fn engine(mut self, engine: Arc<dyn QueryEngine>) -> Self {
        self.config.engine = engine;
        self
    }

    /// Sets the per-task input queue capacity.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Sets the topology tick interval.
    pub fn tick_interval(mut self, interval: Duration) -> Self {
        self.config.tick_interval = interval;
        self
    }

    /// Enables or disables the multi-query index.
    pub fn multi_query_index(mut self, enabled: bool) -> Self {
        self.config.multi_query_index = enabled;
        self
    }

    /// Sets the synthetic per-evaluation CPU cost (benchmarking).
    pub fn synthetic_match_cost(mut self, cost: Option<Duration>) -> Self {
        self.config.synthetic_match_cost = cost;
        self
    }

    /// Uses a shared metrics registry instead of a fresh one.
    pub fn metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.config.metrics = metrics;
        self
    }

    /// Binds the admin endpoint (`/metrics`, `/healthz`, `/queries`,
    /// `/flight`) to the given address, e.g. `"127.0.0.1:0"`.
    pub fn admin_addr(mut self, addr: impl Into<String>) -> Self {
        self.config.admin_addr = Some(addr.into());
        self
    }

    /// Codec for produced envelopes (decoding always sniffs).
    pub fn wire_codec(mut self, codec: invalidb_json::WireCodec) -> Self {
        self.config.wire_codec = codec;
        self
    }

    /// Messages a topology task drains per scheduling turn.
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.config.max_batch = max_batch;
        self
    }

    /// Identifies the hosting worker process; sampled traces stamped by
    /// this cluster then carry its name and live assignment epoch.
    pub fn worker_identity(mut self, identity: WorkerIdentity) -> Self {
        self.config.worker_identity = Some(identity);
        self
    }

    /// Validates the settings and returns the config.
    pub fn build(self) -> Result<ClusterConfig, ConfigError> {
        let c = &self.config;
        if c.query_partitions == 0 {
            return Err(ConfigError::new("query_partitions", "must be at least 1"));
        }
        if c.write_partitions == 0 {
            return Err(ConfigError::new("write_partitions", "must be at least 1"));
        }
        if c.sorting_tasks == 0 {
            return Err(ConfigError::new("sorting_tasks", "must be at least 1"));
        }
        if c.aggregation_tasks == 0 {
            return Err(ConfigError::new("aggregation_tasks", "must be at least 1"));
        }
        if c.query_ingest_nodes == 0 {
            return Err(ConfigError::new("query_ingest_nodes", "must be at least 1"));
        }
        if c.write_ingest_nodes == 0 {
            return Err(ConfigError::new("write_ingest_nodes", "must be at least 1"));
        }
        if c.queue_capacity == 0 {
            return Err(ConfigError::new("queue_capacity", "must be at least 1"));
        }
        if c.tick_interval.is_zero() {
            return Err(ConfigError::new("tick_interval", "must be non-zero"));
        }
        if c.max_batch == 0 {
            return Err(ConfigError::new("max_batch", "must be at least 1"));
        }
        Ok(self.config)
    }
}

impl std::fmt::Debug for ClusterConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterConfig")
            .field("query_partitions", &self.query_partitions)
            .field("write_partitions", &self.write_partitions)
            .field("sorting_tasks", &self.sorting_tasks)
            .field("retention", &self.retention)
            .field("engine", &self.engine.name())
            .field("worker_identity", &self.worker_identity.as_ref().map(WorkerIdentity::name))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_new() {
        let built = ClusterConfig::builder(2, 3).build().unwrap();
        let plain = ClusterConfig::new(2, 3);
        assert_eq!(built.query_partitions, plain.query_partitions);
        assert_eq!(built.write_partitions, plain.write_partitions);
        assert_eq!(built.sorting_tasks, plain.sorting_tasks);
        assert_eq!(built.retention, plain.retention);
        assert_eq!(built.queue_capacity, plain.queue_capacity);
    }

    #[test]
    fn builder_rejects_zero_partitions() {
        let err = ClusterConfig::builder(0, 2).build().unwrap_err();
        assert_eq!(err.field, "query_partitions");
        let err = ClusterConfig::builder(2, 0).build().unwrap_err();
        assert_eq!(err.field, "write_partitions");
    }

    #[test]
    fn builder_rejects_zero_parallelism_and_capacity() {
        assert!(ClusterConfig::builder(1, 1).sorting_tasks(0).build().is_err());
        assert!(ClusterConfig::builder(1, 1).aggregation_tasks(0).build().is_err());
        assert!(ClusterConfig::builder(1, 1).query_ingest_nodes(0).build().is_err());
        assert!(ClusterConfig::builder(1, 1).write_ingest_nodes(0).build().is_err());
        assert!(ClusterConfig::builder(1, 1).queue_capacity(0).build().is_err());
        assert!(ClusterConfig::builder(1, 1).tick_interval(Duration::ZERO).build().is_err());
        assert!(ClusterConfig::builder(1, 1).max_batch(0).build().is_err());
    }

    #[test]
    fn builder_setters_apply() {
        let cfg = ClusterConfig::builder(1, 1)
            .sorting_tasks(5)
            .retention(Duration::from_secs(9))
            .queue_capacity(64)
            .multi_query_index(false)
            .admin_addr("127.0.0.1:0")
            .build()
            .unwrap();
        assert_eq!(cfg.sorting_tasks, 5);
        assert_eq!(cfg.retention, Duration::from_secs(9));
        assert_eq!(cfg.queue_capacity, 64);
        assert!(!cfg.multi_query_index);
        assert_eq!(cfg.admin_addr.as_deref(), Some("127.0.0.1:0"));
    }
}
