//! Cluster configuration.

use invalidb_query::{MongoQueryEngine, QueryEngine};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of an InvaliDB cluster.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of query partitions (grid rows). Scales the number of
    /// sustainable concurrent queries (§6.2).
    pub query_partitions: usize,
    /// Number of write partitions (grid columns). Scales sustainable write
    /// throughput (§6.3).
    pub write_partitions: usize,
    /// Parallelism of the sorting stage (scaled independently, §5.2).
    pub sorting_tasks: usize,
    /// Parallelism of the aggregation stage (extension, §8.1).
    pub aggregation_tasks: usize,
    /// Stateless query-ingestion nodes (the evaluation used 1).
    pub query_ingest_nodes: usize,
    /// Stateless write-ingestion nodes (the evaluation used 4).
    pub write_ingest_nodes: usize,
    /// Write-stream retention time: how long matching nodes keep received
    /// after-images for replay on subscription (§5.1; Baqend runs a few
    /// seconds).
    pub retention: Duration,
    /// Interval between heartbeat messages to application servers.
    pub heartbeat_interval: Duration,
    /// The pluggable query engine (§5.3).
    pub engine: Arc<dyn QueryEngine>,
    /// Per-task input queue capacity (backpressure bound).
    pub queue_capacity: usize,
    /// Tick interval of the underlying topology.
    pub tick_interval: Duration,
    /// Enable the multi-query index (interval trees over single-attribute
    /// range/equality filters) in the matching nodes — the thesis's
    /// multi-query optimization. Disable to force the naive
    /// evaluate-every-query path (ablation).
    pub multi_query_index: bool,
    /// Optional synthetic CPU cost per query evaluation, used by the
    /// benchmark harness to emulate the paper's per-node throttling (§6.1)
    /// so saturation knees appear at laptop-friendly workload sizes.
    pub synthetic_match_cost: Option<Duration>,
}

impl ClusterConfig {
    /// A `query_partitions` × `write_partitions` cluster with defaults
    /// matching the paper's evaluation setup.
    pub fn new(query_partitions: usize, write_partitions: usize) -> Self {
        Self {
            query_partitions,
            write_partitions,
            sorting_tasks: 2,
            aggregation_tasks: 1,
            query_ingest_nodes: 1,
            write_ingest_nodes: 4,
            retention: Duration::from_secs(2),
            heartbeat_interval: Duration::from_millis(500),
            engine: Arc::new(MongoQueryEngine),
            queue_capacity: 8192,
            tick_interval: Duration::from_millis(50),
            multi_query_index: true,
            synthetic_match_cost: None,
        }
    }

    /// Overrides the query engine.
    pub fn with_engine(mut self, engine: Arc<dyn QueryEngine>) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the retention window.
    pub fn with_retention(mut self, retention: Duration) -> Self {
        self.retention = retention;
        self
    }
}

impl std::fmt::Debug for ClusterConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterConfig")
            .field("query_partitions", &self.query_partitions)
            .field("write_partitions", &self.write_partitions)
            .field("sorting_tasks", &self.sorting_tasks)
            .field("retention", &self.retention)
            .field("engine", &self.engine.name())
            .finish()
    }
}
