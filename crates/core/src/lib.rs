//! The InvaliDB cluster — the paper's primary contribution (§5).
//!
//! An [`Cluster`] hosts the real-time matching workload on a stream topology
//! (`invalidb-stream`), reachable only through the event layer
//! (`invalidb-broker`). Message flow:
//!
//! ```text
//!            event layer (topic "invalidb.cluster")
//!                          │
//!                      [ingress]                  (decode opaque payloads)
//!                 ┌────────┴────────┐
//!          [query-ingest]    [write-ingest]       (stateless, hash & route)
//!                 │                 │
//!                 ├──── row ──► [matching grid QP × WP] ◄── column ──┤
//!                 │                 │  filtering stage (§5.1)
//!                 │                 ▼
//!                 ├─────────► [sorting stage]     (per-query order, §5.2)
//!                 │                 │
//!                 ▼                 ▼
//!                [notifier] ──► event layer (topics "invalidb.notify.*")
//! ```
//!
//! * the **filtering stage** is the QP × WP grid of matching nodes: each
//!   node holds a subset of queries and sees a fraction of the write
//!   stream; it performs staleness avoidance and write-stream retention and
//!   emits `add`/`change`/`remove` transitions;
//! * unsorted filter queries are *self-maintainable*: their notifications
//!   go straight to the notifier;
//! * sorted queries (order/limit/offset) flow into the **sorting stage**,
//!   which maintains the `offset + result + slack` window, detects
//!   positional changes (`changeIndex`), raises *query maintenance errors*
//!   when the slack is exhausted, and replays incremental deltas after a
//!   renewal.

pub mod aggregation;
pub mod cluster;
pub mod config;
pub mod event;
pub mod ingest;
pub mod matching;
pub mod notifier;
pub mod query_index;
pub mod sorting;
pub mod window;

pub use cluster::{CellHost, CellSet, Cluster, FullGrid};
pub use config::{ClusterConfig, ClusterConfigBuilder, WorkerIdentity};
pub use event::{Event, FilterChange, FilterChangeKind, OutMsg};
pub use window::{SortedWindow, VisibleEvent, WindowOutcome};
