//! Sorted-result window maintenance (§5.2, "Sorted Filter Queries").
//!
//! A [`SortedWindow`] is the per-query state a sorting-stage node keeps for
//! a sorted filter query with limit/offset: *all items in the offset, the
//! actual result, and `slack` known items beyond the limit* — exactly the
//! auxiliary data of Figure 3. Incoming filtering-stage changes mutate the
//! window; the client-visible slice `[offset, offset+limit)` is diffed
//! before/after and the difference is emitted as an *edit script* of
//! `add` / `change` / `changeIndex` / `remove` events whose indices are
//! valid when applied sequentially to the client's local result list.
//!
//! When the window can no longer prove what the visible result is — a
//! removal shrinks it below `offset+limit` while items beyond the horizon
//! had been discarded — a **query maintenance error** is raised: the query
//! must be renewed from a fresh database result ([`SortedWindow::reseed`]),
//! after which the incremental delta from the last valid visible state is
//! emitted.

use invalidb_common::{Document, Key, ResultItem, Version};
use invalidb_query::PreparedQuery;
use std::sync::Arc;

/// One record inside the maintained window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowItem {
    /// Primary key.
    pub key: Key,
    /// Record version.
    pub version: Version,
    /// Record content.
    pub doc: Document,
}

/// A client-visible result change with list positions.
#[derive(Debug, Clone, PartialEq)]
pub enum VisibleEvent {
    /// Insert `item` at `index`.
    Add {
        /// The entering record.
        item: WindowItem,
        /// Insert position in the client's list.
        index: usize,
    },
    /// Replace the item at `index` (same position, new content).
    Change {
        /// The updated record.
        item: WindowItem,
        /// Position in the client's list.
        index: usize,
    },
    /// The item moved: remove at `old_index`, insert at `index`.
    ChangeIndex {
        /// The updated record.
        item: WindowItem,
        /// Position to remove from.
        old_index: usize,
        /// Position to insert at.
        index: usize,
    },
    /// Remove the item at `old_index`.
    Remove {
        /// Key of the leaving record.
        key: Key,
        /// Version that caused the removal.
        version: Version,
        /// Position to remove from.
        old_index: usize,
    },
}

/// Result of applying one write to the window.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowOutcome {
    /// Client-visible edit script (empty when nothing visible changed).
    pub events: Vec<VisibleEvent>,
    /// Set when the query became unmaintainable (slack exhausted).
    pub error: Option<String>,
}

/// Maintained state for one sorted query.
pub struct SortedWindow {
    prepared: Arc<dyn PreparedQuery>,
    offset: usize,
    limit: Option<usize>,
    /// `offset + limit + slack` for bounded queries; unbounded keep all.
    cap: Option<usize>,
    items: Vec<WindowItem>,
    /// True while the window provably contains *all* matching items.
    complete: bool,
}

impl SortedWindow {
    /// Builds a window from the bootstrap query result (the rewritten query:
    /// offset removed, limit extended by offset and `slack`, §5.2).
    pub fn new(prepared: Arc<dyn PreparedQuery>, slack: u64, initial: &[ResultItem]) -> Self {
        let spec = prepared.spec();
        let offset = spec.offset as usize;
        let limit = spec.limit.map(|l| l as usize);
        let cap = limit.map(|l| offset + l + slack as usize);
        let mut items: Vec<WindowItem> = initial
            .iter()
            .filter_map(|r| {
                r.doc.as_ref().map(|doc| WindowItem {
                    key: r.key.clone(),
                    version: r.version,
                    doc: doc.clone(),
                })
            })
            .collect();
        items.sort_by(|a, b| prepared.cmp_items((&a.key, &a.doc), (&b.key, &b.doc)));
        items.dedup_by(|a, b| a.key == b.key);
        // The window is complete iff the bootstrap result did not fill the
        // rewritten limit (the database had nothing more to give).
        let complete = cap.is_none_or(|c| items.len() < c);
        Self { prepared, offset, limit, cap, items, complete }
    }

    /// Number of items currently maintained (offset + result + slack).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items are maintained.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Current slack: maintained items beyond `offset + limit` — the number
    /// of subsequent removes that can be absorbed (§5.2).
    pub fn current_slack(&self) -> usize {
        match self.limit {
            Some(l) => self.items.len().saturating_sub(self.offset + l),
            None => usize::MAX,
        }
    }

    /// Whether the window still provably holds every matching item.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The client-visible slice `[offset, offset+limit)`.
    pub fn visible(&self) -> &[WindowItem] {
        let start = self.offset.min(self.items.len());
        let end = match self.limit {
            Some(l) => (self.offset + l).min(self.items.len()),
            None => self.items.len(),
        };
        &self.items[start..end]
    }

    /// Snapshot of the visible slice (kept by the sorting node across a
    /// maintenance error so the renewal delta can be computed).
    pub fn snapshot_visible(&self) -> Vec<WindowItem> {
        self.visible().to_vec()
    }

    /// Applies one write (after-image or tombstone) to the window.
    pub fn apply(&mut self, key: &Key, version: Version, doc: Option<&Document>) -> WindowOutcome {
        // Version guard: replay and renewal can cross paths; never move a
        // record backwards.
        if let Some(pos) = self.position_of(key) {
            if self.items[pos].version >= version {
                return WindowOutcome::default();
            }
        }
        let before = self.snapshot_visible();
        let matching = doc.is_some_and(|d| self.prepared.matches(d));
        let pos = self.position_of(key);
        match (matching, pos) {
            (false, None) => return WindowOutcome::default(),
            (false, Some(p)) => {
                self.items.remove(p);
            }
            (true, existing) => {
                if let Some(p) = existing {
                    self.items.remove(p);
                }
                let item = WindowItem {
                    key: key.clone(),
                    version,
                    doc: doc.expect("matching implies doc").clone(),
                };
                let insert_at = self.insert_position(&item);
                // Invariant: every *unknown* matching item sorts after the
                // window's last item (items only ever leave the window off
                // its end). An arrival sorting at the very end of an
                // incomplete window is therefore ambiguous — unknown items
                // may belong between — and must be discarded, whether it is
                // new or an updated member that moved past the horizon.
                let beyond_horizon = !self.complete && insert_at == self.items.len();
                if !beyond_horizon {
                    self.items.insert(insert_at, item);
                    if let Some(cap) = self.cap {
                        if self.items.len() > cap {
                            self.items.pop();
                            self.complete = false;
                        }
                    }
                }
            }
        }
        if let Some(err) = self.maintenance_error() {
            return WindowOutcome { events: Vec::new(), error: Some(err) };
        }
        WindowOutcome { events: diff_visible_hinted(&before, self.visible(), Some(key)), error: None }
    }

    /// Replaces the window content from a fresh bootstrap result (query
    /// renewal) and returns the edit script from `last_visible` — the
    /// client's last valid state — to the new visible slice.
    pub fn reseed(
        &mut self,
        slack: u64,
        initial: &[ResultItem],
        last_visible: &[WindowItem],
    ) -> Vec<VisibleEvent> {
        let fresh = SortedWindow::new(Arc::clone(&self.prepared), slack, initial);
        self.cap = fresh.cap;
        self.items = fresh.items;
        self.complete = fresh.complete;
        diff_visible(last_visible, self.visible())
    }

    fn maintenance_error(&self) -> Option<String> {
        let limit = self.limit?;
        if !self.complete && self.items.len() < self.offset + limit {
            Some(format!(
                "slack exhausted: {} items maintained, {} required, window incomplete",
                self.items.len(),
                self.offset + limit
            ))
        } else {
            None
        }
    }

    fn position_of(&self, key: &Key) -> Option<usize> {
        self.items.iter().position(|i| &i.key == key)
    }

    fn insert_position(&self, item: &WindowItem) -> usize {
        self.items
            .binary_search_by(|probe| {
                self.prepared.cmp_items((&probe.key, &probe.doc), (&item.key, &item.doc))
            })
            .unwrap_or_else(|p| p)
    }
}

/// Computes the edit script turning `before` into `after`.
///
/// The script is sequentially applicable to a client-side list: removals
/// are emitted first (descending positions), then per-position inserts and
/// moves (ascending).
pub fn diff_visible(before: &[WindowItem], after: &[WindowItem]) -> Vec<VisibleEvent> {
    diff_visible_hinted(before, after, None)
}

/// Like [`diff_visible`], with a hint naming the single written key. A write
/// can reorder at most that one item among survivors, so the hint lets the
/// script attribute `changeIndex` to the item that actually changed (the
/// paper's semantics: "result member was updated and changed its position")
/// instead of to whichever survivor the generic walk reaches first.
pub fn diff_visible_hinted(
    before: &[WindowItem],
    after: &[WindowItem],
    hint: Option<&Key>,
) -> Vec<VisibleEvent> {
    let mut events = Vec::new();
    let mut work: Vec<(Key, Version)> = before.iter().map(|i| (i.key.clone(), i.version)).collect();
    // 1. Removals, highest index first so earlier indices stay valid.
    for i in (0..work.len()).rev() {
        if !after.iter().any(|a| a.key == work[i].0) {
            let (key, version) = work.remove(i);
            events.push(VisibleEvent::Remove { key, version, old_index: i });
        }
    }
    // 2. If the written item survived and moved, emit its move first.
    if let Some(hint) = hint {
        let cur = work.iter().position(|(k, _)| k == hint);
        let target = after.iter().position(|a| &a.key == hint);
        if let (Some(cur), Some(tgt)) = (cur, target) {
            if cur != tgt && tgt <= work.len() {
                let item = after[tgt].clone();
                work.remove(cur);
                work.insert(tgt.min(work.len()), (item.key.clone(), item.version));
                events.push(VisibleEvent::ChangeIndex { item, old_index: cur, index: tgt });
            }
        }
    }
    // 3. Walk the target list; insert or move to each remaining position.
    for (i, target) in after.iter().enumerate() {
        if let Some((key, version)) = work.get(i) {
            if *key == target.key {
                if *version != target.version {
                    events.push(VisibleEvent::Change { item: target.clone(), index: i });
                    work[i].1 = target.version;
                }
                continue;
            }
        }
        match work.iter().position(|(k, _)| *k == target.key) {
            Some(j) => {
                // The item exists later in the list: it moved here.
                work.remove(j);
                work.insert(i, (target.key.clone(), target.version));
                events.push(VisibleEvent::ChangeIndex { item: target.clone(), old_index: j, index: i });
            }
            None => {
                work.insert(i, (target.key.clone(), target.version));
                events.push(VisibleEvent::Add { item: target.clone(), index: i });
            }
        }
    }
    events
}

/// Applies an edit script to a client-side list — the client algorithm the
/// indices are designed for (used by `invalidb-client` and by tests).
pub fn apply_events(list: &mut Vec<WindowItem>, events: &[VisibleEvent]) {
    for ev in events {
        match ev {
            VisibleEvent::Add { item, index } => {
                list.insert((*index).min(list.len()), item.clone());
            }
            VisibleEvent::Change { item, index } => {
                if let Some(slot) = list.get_mut(*index) {
                    *slot = item.clone();
                }
            }
            VisibleEvent::ChangeIndex { item, old_index, index } => {
                if *old_index < list.len() {
                    list.remove(*old_index);
                }
                list.insert((*index).min(list.len()), item.clone());
            }
            VisibleEvent::Remove { old_index, .. } => {
                if *old_index < list.len() {
                    list.remove(*old_index);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::{doc, QuerySpec, SortDirection};
    use invalidb_query::{MongoQueryEngine, QueryEngine};

    fn prepared(offset: u64, limit: u64) -> Arc<dyn PreparedQuery> {
        let spec = QuerySpec::filter("articles", doc! {})
            .sorted_by("year", SortDirection::Desc)
            .with_offset(offset)
            .with_limit(limit);
        MongoQueryEngine.prepare(&spec).unwrap()
    }

    fn item(id: i64, year: i64, version: Version) -> ResultItem {
        ResultItem::new(Key::of(id), version, doc! { "title" => format!("art-{id}"), "year" => year })
    }

    /// Figure 3's data: offset 2, limit 3, slack 1 → 6 bootstrap items.
    fn figure3_window() -> SortedWindow {
        let initial = vec![
            item(5, 2018, 1),
            item(8, 2018, 1),
            item(3, 2017, 1),
            item(4, 2017, 1),
            item(7, 2016, 1),
            item(9, 2016, 1),
        ];
        SortedWindow::new(prepared(2, 3), 1, &initial)
    }

    fn visible_ids(w: &SortedWindow) -> Vec<i64> {
        w.visible()
            .iter()
            .map(|i| match &i.key.0 {
                invalidb_common::Value::Int(v) => *v,
                _ => panic!(),
            })
            .collect()
    }

    #[test]
    fn figure3_initial_window() {
        let w = figure3_window();
        assert_eq!(w.len(), 6);
        assert_eq!(visible_ids(&w), vec![3, 4, 7], "result = BaaS, Query Languages, Streams");
        assert_eq!(w.current_slack(), 1);
        assert!(!w.is_complete(), "bootstrap filled the rewritten limit");
    }

    #[test]
    fn figure3_offset_removal_shifts_result() {
        // Deleting 'No SQL!' (id 8, offset): 'BaaS' moves into the offset,
        // 'SaaS' (id 9, beyond limit) moves into the result.
        let mut w = figure3_window();
        let out = w.apply(&Key::of(8i64), 2, None);
        assert!(out.error.is_none());
        assert_eq!(visible_ids(&w), vec![4, 7, 9]);
        // Client sees: remove of 3 at index 0 (moved into offset), add of 9
        // at the end.
        assert_eq!(out.events.len(), 2);
        assert!(matches!(&out.events[0], VisibleEvent::Remove { old_index: 0, .. }));
        assert!(matches!(&out.events[1], VisibleEvent::Add { index: 2, .. }));
        assert_eq!(w.current_slack(), 0, "slack used up");
    }

    #[test]
    fn figure3_add_to_offset_pushes_result() {
        // A new 2019 article enters the offset: last offset item moves into
        // the result, last result item moves beyond the limit.
        let mut w = figure3_window();
        let new_doc = doc! { "title" => "fresh", "year" => 2019i64 };
        let out = w.apply(&Key::of(100i64), 1, Some(&new_doc));
        assert!(out.error.is_none());
        assert_eq!(visible_ids(&w), vec![8, 3, 4]);
        // 7 leaves the visible window, 8 enters at the top.
        assert!(matches!(&out.events[0], VisibleEvent::Remove { old_index: 2, .. }));
        assert!(matches!(&out.events[1], VisibleEvent::Add { index: 0, .. }));
        // Window was at cap: one item fell off the end.
        assert_eq!(w.len(), 6);
        assert!(!w.is_complete());
    }

    #[test]
    fn slack_exhaustion_raises_maintenance_error() {
        let mut w = figure3_window();
        assert!(w.apply(&Key::of(9i64), 2, None).error.is_none(), "slack absorbs first remove");
        let out = w.apply(&Key::of(7i64), 2, None);
        assert!(out.error.is_some(), "second remove exhausts the window");
        assert!(out.events.is_empty(), "no visible events on error");
    }

    #[test]
    fn complete_window_never_errors() {
        // Only 3 matching items exist for offset 2 + limit 3 + slack 1 = 6:
        // the window is complete and may shrink freely.
        let initial = vec![item(1, 2018, 1), item(2, 2017, 1), item(3, 2016, 1)];
        let mut w = SortedWindow::new(prepared(2, 3), 1, &initial);
        assert!(w.is_complete());
        assert_eq!(visible_ids(&w), vec![3]);
        let out = w.apply(&Key::of(3i64), 2, None);
        assert!(out.error.is_none());
        assert_eq!(visible_ids(&w), Vec::<i64>::new());
        let out = w.apply(&Key::of(2i64), 2, None);
        assert!(out.error.is_none());
        let out = w.apply(&Key::of(1i64), 2, None);
        assert!(out.error.is_none());
        assert!(w.is_empty());
    }

    #[test]
    fn update_within_result_emits_change() {
        let mut w = figure3_window();
        // Update id 4's title only (sort key unchanged): same position.
        let out = w.apply(&Key::of(4i64), 2, Some(&doc! { "title" => "renamed", "year" => 2017i64 }));
        assert_eq!(out.events.len(), 1);
        assert!(matches!(&out.events[0], VisibleEvent::Change { index: 1, .. }));
    }

    #[test]
    fn update_moving_item_emits_change_index() {
        let mut w = figure3_window();
        // id 7 (year 2016, visible index 2) jumps to 2017.5-equivalent: use
        // 2017 and key ordering. Give it year 2018 → moves into the offset;
        // visible: remove 7, add 9.
        let out = w.apply(&Key::of(7i64), 2, Some(&doc! { "title" => "x", "year" => 2018i64 }));
        assert!(out.error.is_none());
        assert_eq!(visible_ids(&w), vec![8, 3, 4]);
        // Moves across the offset boundary are remove+add, not changeIndex.
        assert!(out.events.iter().any(|e| matches!(e, VisibleEvent::Remove { .. })));
        assert!(out.events.iter().any(|e| matches!(e, VisibleEvent::Add { .. })));

        // Now a move *within* the visible range: swap 3 and 4 by year bump.
        let mut w = figure3_window();
        let out = w.apply(
            &Key::of(4i64),
            2,
            Some(&doc! { "title" => "x", "year" => 2017i64, "boost" => 1i64 }),
        );
        // Same year, key 4 > key 3: no move. Instead bump year to 2017 with
        // key 2 — insert a fresh item that lands between.
        drop(out);
        let out = w.apply(&Key::of(3i64), 2, Some(&doc! { "title" => "x", "year" => 2016i64 }));
        // id 3 drops from 2017 to 2016: moves below id 4/7 but above 9
        // (key 3 < 7? canonical: year desc then key asc → 2016 items: 7, 9;
        // id 3 sorts before 7). Visible before: [3,4,7] after: [4,3,7]...
        assert!(out.error.is_none());
        assert_eq!(visible_ids(&w), vec![4, 3, 7]);
        assert!(
            out.events.iter().any(|e| matches!(e, VisibleEvent::ChangeIndex { .. })),
            "in-window move is a changeIndex: {:?}",
            out.events
        );
    }

    #[test]
    fn stale_version_ignored() {
        let mut w = figure3_window();
        let out = w.apply(&Key::of(4i64), 1, Some(&doc! { "title" => "stale", "year" => 1999i64 }));
        assert!(out.events.is_empty());
        assert_eq!(visible_ids(&w), vec![3, 4, 7]);
    }

    #[test]
    fn irrelevant_write_is_noop() {
        let mut w = figure3_window();
        // Unknown key sorting beyond the horizon while window is at cap.
        let out = w.apply(&Key::of(555i64), 1, Some(&doc! { "title" => "old", "year" => 1990i64 }));
        assert!(out.events.is_empty());
        assert!(!w.is_complete());
        // Unknown key, not matching (no doc = delete of unknown).
        let out = w.apply(&Key::of(556i64), 1, None);
        assert!(out.events.is_empty());
    }

    #[test]
    fn unbounded_sorted_query_keeps_everything() {
        let spec = QuerySpec::filter("t", doc! {}).sorted_by("n", SortDirection::Asc);
        let prepared = MongoQueryEngine.prepare(&spec).unwrap();
        let mut w = SortedWindow::new(prepared, 0, &[]);
        assert!(w.is_complete());
        for i in 0..50i64 {
            let out = w.apply(&Key::of(i), 1, Some(&doc! { "n" => 50 - i }));
            assert!(out.error.is_none());
            assert_eq!(out.events.len(), 1);
        }
        assert_eq!(w.len(), 50);
        assert_eq!(w.visible().len(), 50);
        // Ordered ascending by n.
        let ns: Vec<i64> =
            w.visible().iter().map(|i| i.doc.get("n").unwrap().as_i64().unwrap()).collect();
        let mut sorted = ns.clone();
        sorted.sort_unstable();
        assert_eq!(ns, sorted);
    }

    #[test]
    fn reseed_emits_delta_from_last_valid_state() {
        let mut w = figure3_window();
        let last = w.snapshot_visible();
        // Renewal returns a fresh result where id 4 is gone and id 11 is new.
        let fresh = vec![
            item(5, 2018, 1),
            item(8, 2018, 1),
            item(3, 2017, 1),
            item(11, 2017, 1),
            item(7, 2016, 1),
            item(9, 2016, 1),
        ];
        let events = w.reseed(1, &fresh, &last);
        assert_eq!(visible_ids(&w), vec![3, 11, 7]);
        // Client held [3, 4, 7]: one remove (4), one add (11).
        let mut client: Vec<WindowItem> = last;
        apply_events(&mut client, &events);
        let ids: Vec<String> = client.iter().map(|i| i.key.to_string()).collect();
        assert_eq!(ids, vec!["3", "11", "7"]);
    }

    #[test]
    fn client_replay_matches_window_through_random_ops() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xBA0E);
        for trial in 0..50 {
            let mut w = figure3_window();
            let mut client = w.snapshot_visible();
            let mut versions = std::collections::HashMap::new();
            for (id, v) in [(5i64, 1u64), (8, 1), (3, 1), (4, 1), (7, 1), (9, 1)] {
                versions.insert(id, v);
            }
            for _step in 0..60 {
                let id = rng.gen_range(0..15i64);
                let ver = versions.entry(id).or_insert(0);
                *ver += 1;
                let out = if rng.gen_bool(0.25) {
                    w.apply(&Key::of(id), *ver, None)
                } else {
                    let year = rng.gen_range(2014..2021i64);
                    w.apply(&Key::of(id), *ver, Some(&doc! { "title" => "t", "year" => year }))
                };
                if out.error.is_some() {
                    break; // renewal path covered elsewhere
                }
                apply_events(&mut client, &out.events);
                let expect: Vec<&Key> = w.visible().iter().map(|i| &i.key).collect();
                let got: Vec<&Key> = client.iter().map(|i| &i.key).collect();
                assert_eq!(got, expect, "trial {trial} diverged");
            }
        }
    }
}
