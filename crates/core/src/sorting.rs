//! The sorting stage (§5.2).
//!
//! Sorting nodes receive filtering-stage output *partitioned by query* —
//! each sorted query is owned by exactly one sorting task (fields grouping
//! on the query hash), which therefore holds the query's full
//! offset+result+slack window and can detect positional changes
//! (`changeIndex`), boundary crossings, and maintenance errors.

use crate::config::ClusterConfig;
use crate::event::{Event, FilterChange, OutMsg};
use crate::window::{apply_events, SortedWindow, VisibleEvent, WindowItem};
use invalidb_common::{
    ChangeItem, Clock, MaintenanceError, MatchType, Notification, NotificationKind, QueryHash,
    ResultItem, Stage, SubscriptionId, SubscriptionRequest, TenantId, Timestamp, TraceContext,
};
use invalidb_obs::SlowQueryScratch;
use invalidb_query::PreparedQuery;
use invalidb_stream::{Bolt, BoltContext};
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

struct SubState {
    tenant: TenantId,
    expires_at: Timestamp,
}

struct SortGroup {
    /// Human-readable rendering of the query spec, captured at subscribe
    /// time for the slow-query log.
    spec_display: String,
    prepared: Arc<dyn PreparedQuery>,
    window: SortedWindow,
    /// What subscribed clients currently hold (maintained by applying the
    /// same edit scripts that are sent out).
    client_state: Vec<WindowItem>,
    /// False after a maintenance error, until renewal re-activates.
    active: bool,
    /// Filter changes that arrived while deactivated, in arrival order.
    /// The renewal's fresh snapshot is read from the store *before* the
    /// Subscribe is published, so a change generated from a later write
    /// can still reach this task first (it travels on the matching
    /// channel, the Subscribe on the query-ingest channel). Discarding it
    /// would freeze its key at the snapshot's state forever; instead it
    /// is replayed — version-guarded — right after the reseed.
    pending: Vec<Arc<FilterChange>>,
    slack: u64,
    subscriptions: HashMap<SubscriptionId, SubState>,
}

/// Bound on buffered filter changes per deactivated query. On overflow
/// the oldest buffered change is shed: the next renewal's snapshot is
/// read later than anything shed, so it covers the loss.
const PENDING_CAP: usize = 4096;

/// The sorting-stage bolt.
pub struct SortingNode {
    task: usize,
    config: ClusterConfig,
    clock: Arc<dyn Clock>,
    groups: HashMap<(TenantId, QueryHash), SortGroup>,
    /// Observability: maintenance errors raised.
    maintenance_errors: u64,
    /// Locally accumulated slow-query charges, flushed to the shared log
    /// on tick so the per-filter-change hot path never takes its lock.
    slow_scratch: SlowQueryScratch,
    /// Cluster-shared gauge of sort windows serving more than one
    /// subscription (shared sort windows: normalization collapses
    /// equivalent specs onto one query hash, so their subscriptions attach
    /// to one maintained window). Published as a tick delta, like the
    /// matching stage's `matching.index.*` gauges.
    metric_shared: Arc<AtomicU64>,
    last_shared: u64,
}

impl SortingNode {
    /// Creates the sorting node for task index `task`.
    pub fn new(task: usize, config: ClusterConfig, clock: Arc<dyn Clock>) -> Self {
        let metric_shared = config.metrics.gauge("matching.index.shared_windows");
        Self {
            task,
            config,
            clock,
            groups: HashMap::new(),
            maintenance_errors: 0,
            slow_scratch: SlowQueryScratch::new(),
            metric_shared,
            last_shared: 0,
        }
    }

    /// Number of sorted queries owned by this node.
    pub fn active_queries(&self) -> usize {
        self.groups.len()
    }

    /// Maintenance errors raised so far.
    pub fn maintenance_errors(&self) -> u64 {
        self.maintenance_errors
    }

    fn handle_subscribe(&mut self, req: &SubscriptionRequest, ctx: &mut BoltContext<'_, Event>) {
        if !req.spec.needs_sorting_stage() {
            return; // unsorted queries live entirely in the filtering stage
        }
        let now = self.clock.now();
        let expires_at = now.after(std::time::Duration::from_micros(req.ttl_micros));
        let group_key = (req.tenant.clone(), req.query_hash);
        if let Some(group) = self.groups.get_mut(&group_key) {
            group
                .subscriptions
                .insert(req.subscription, SubState { tenant: req.tenant.clone(), expires_at });
            if group.active {
                // Late joiner: its initial result (fresh from the database)
                // may differ from the group's maintained window. Send the
                // correction delta to this subscription only.
                let fresh = SortedWindow::new(Arc::clone(&group.prepared), req.slack, &req.initial);
                let delta = crate::window::diff_visible(fresh.visible(), &group.client_state);
                let tenant = req.tenant.clone();
                for ev in &delta {
                    ctx.emit(to_notification_event(&tenant, req.subscription, ev, 0, None));
                }
            } else {
                // Renewal: re-seed from the fresh result. On the wire a
                // renewal is indistinguishable from a fresh subscribe, so
                // the notifier has already re-sent the initial result and
                // the client's list is reset wholesale — emitting a delta
                // from the pre-error state on top of that replacement
                // would corrupt the client's list.
                let _ = group.window.reseed(req.slack, &req.initial, &group.client_state);
                group.active = true;
                group.slack = req.slack;
                group.client_state = group.window.snapshot_visible();
                // Replay changes buffered while deactivated. Per-key FIFO
                // order is preserved, and the window's version guard drops
                // whatever the fresh snapshot already reflects. A nested
                // maintenance error mid-replay re-buffers the remainder
                // for the next renewal.
                let pending = std::mem::take(&mut group.pending);
                for fc in pending {
                    if group.active {
                        Self::apply_filter_change(
                            group,
                            &fc,
                            &self.config,
                            &mut self.maintenance_errors,
                            &mut self.slow_scratch,
                            ctx,
                        );
                    } else {
                        group.pending.push(fc);
                    }
                }
            }
            return;
        }
        let prepared = match self.config.engine.prepare(&req.spec) {
            Ok(p) => p,
            Err(_) => return, // the filtering stage already reported this
        };
        let window = SortedWindow::new(Arc::clone(&prepared), req.slack, &req.initial);
        let client_state = window.snapshot_visible();
        let mut subscriptions = HashMap::new();
        subscriptions.insert(req.subscription, SubState { tenant: req.tenant.clone(), expires_at });
        self.groups.insert(
            group_key,
            SortGroup {
                spec_display: req.spec.to_string(),
                prepared,
                window,
                client_state,
                active: true,
                pending: Vec::new(),
                slack: req.slack,
                subscriptions,
            },
        );
    }

    fn handle_filter_change(&mut self, fc: &Arc<FilterChange>, ctx: &mut BoltContext<'_, Event>) {
        let group = match self.groups.get_mut(&(fc.tenant.clone(), fc.query_hash)) {
            Some(g) => g,
            None => return, // unknown query
        };
        if !group.active {
            // Awaiting renewal: buffer instead of discarding — the
            // renewal's snapshot may have been read before the write that
            // produced this change (see the `pending` field).
            if group.pending.len() >= PENDING_CAP {
                group.pending.remove(0);
                self.config.metrics.inc("sorting.pending_shed");
            }
            group.pending.push(Arc::clone(fc));
            return;
        }
        Self::apply_filter_change(
            group,
            fc,
            &self.config,
            &mut self.maintenance_errors,
            &mut self.slow_scratch,
            ctx,
        );
    }

    /// Applies one filter change to an active group's window, emitting the
    /// visible edit script (or a maintenance error, which deactivates).
    fn apply_filter_change(
        group: &mut SortGroup,
        fc: &FilterChange,
        config: &ClusterConfig,
        maintenance_errors: &mut u64,
        slow_scratch: &mut SlowQueryScratch,
        ctx: &mut BoltContext<'_, Event>,
    ) {
        // Slow-query accounting: the window maintenance below is the
        // sorting stage's per-query cost.
        let started = std::time::Instant::now();
        let outcome = group.window.apply(&fc.key, fc.version, fc.doc.as_ref());
        // Stamp the sorting stage once per filter change on sampled traces.
        let trace: Option<TraceContext> = fc.trace.clone().map(|mut t| {
            t.stamp(Stage::Sorting);
            t
        });
        if let Some(reason) = outcome.error {
            // Query maintenance error: deactivate and ask for renewal. The
            // client's list stays at the last valid state (client_state).
            group.active = false;
            *maintenance_errors += 1;
            config.metrics.inc("sorting.maintenance_errors");
            for (sub, state) in &group.subscriptions {
                ctx.emit(Event::Out(Arc::new(OutMsg::Notify(Notification {
                    tenant: state.tenant.clone(),
                    subscription: *sub,
                    kind: NotificationKind::Error(MaintenanceError { reason: reason.clone() }),
                    caused_by_write_at: fc.written_at,
                    trace: trace.clone(),
                }))));
            }
            slow_scratch.charge(
                &fc.tenant.0,
                fc.query_hash.0,
                || group.spec_display.clone(),
                started.elapsed().as_micros() as u64,
            );
            return;
        }
        Self::broadcast(group, &outcome.events, fc.written_at, trace.as_ref(), ctx);
        apply_events(&mut group.client_state, &outcome.events);
        slow_scratch.charge(
            &fc.tenant.0,
            fc.query_hash.0,
            || group.spec_display.clone(),
            started.elapsed().as_micros() as u64,
        );
    }

    fn broadcast(
        group: &SortGroup,
        events: &[VisibleEvent],
        written_at: u64,
        trace: Option<&TraceContext>,
        ctx: &mut BoltContext<'_, Event>,
    ) {
        for ev in events {
            for (sub, state) in &group.subscriptions {
                ctx.emit(to_notification_event(&state.tenant, *sub, ev, written_at, trace));
            }
        }
        let _ = &group.slack;
    }

    fn handle_unsubscribe(
        &mut self,
        tenant: &TenantId,
        query_hash: QueryHash,
        subscription: SubscriptionId,
    ) {
        if let Some(group) = self.groups.get_mut(&(tenant.clone(), query_hash)) {
            group.subscriptions.remove(&subscription);
            if group.subscriptions.is_empty() {
                self.groups.remove(&(tenant.clone(), query_hash));
            }
        }
    }

    fn handle_extend_ttl(
        &mut self,
        tenant: &TenantId,
        query_hash: QueryHash,
        subscription: SubscriptionId,
        ttl_micros: u64,
    ) {
        let now = self.clock.now();
        if let Some(group) = self.groups.get_mut(&(tenant.clone(), query_hash)) {
            if let Some(sub) = group.subscriptions.get_mut(&subscription) {
                sub.expires_at = now.after(std::time::Duration::from_micros(ttl_micros));
            }
        }
    }

    fn expire(&mut self) {
        let now = self.clock.now();
        self.groups.retain(|_, group| {
            group.subscriptions.retain(|_, sub| sub.expires_at > now);
            !group.subscriptions.is_empty()
        });
    }
}

/// Converts a window edit-script event into a per-subscription notification.
fn to_notification_event(
    tenant: &TenantId,
    subscription: SubscriptionId,
    ev: &VisibleEvent,
    written_at: u64,
    trace: Option<&TraceContext>,
) -> Event {
    let kind = match ev {
        VisibleEvent::Add { item, index } => NotificationKind::Change(ChangeItem {
            match_type: MatchType::Add,
            item: ResultItem {
                key: item.key.clone(),
                version: item.version,
                doc: Some(item.doc.clone()),
                index: Some(*index as u64),
            },
            old_index: None,
        }),
        VisibleEvent::Change { item, index } => NotificationKind::Change(ChangeItem {
            match_type: MatchType::Change,
            item: ResultItem {
                key: item.key.clone(),
                version: item.version,
                doc: Some(item.doc.clone()),
                index: Some(*index as u64),
            },
            old_index: None,
        }),
        VisibleEvent::ChangeIndex { item, old_index, index } => NotificationKind::Change(ChangeItem {
            match_type: MatchType::ChangeIndex,
            item: ResultItem {
                key: item.key.clone(),
                version: item.version,
                doc: Some(item.doc.clone()),
                index: Some(*index as u64),
            },
            old_index: Some(*old_index as u64),
        }),
        VisibleEvent::Remove { key, version, old_index } => NotificationKind::Change(ChangeItem {
            match_type: MatchType::Remove,
            item: ResultItem { key: key.clone(), version: *version, doc: None, index: None },
            old_index: Some(*old_index as u64),
        }),
    };
    Event::Out(Arc::new(OutMsg::Notify(Notification {
        tenant: tenant.clone(),
        subscription,
        kind,
        caused_by_write_at: written_at,
        trace: trace.cloned(),
    })))
}

impl Bolt<Event> for SortingNode {
    fn execute(&mut self, input: Event, ctx: &mut BoltContext<'_, Event>) {
        match input {
            Event::Subscribe(req) => self.handle_subscribe(&req, ctx),
            Event::FilterChange(fc) => self.handle_filter_change(&fc, ctx),
            Event::Unsubscribe { tenant, query_hash, subscription } => {
                self.handle_unsubscribe(&tenant, query_hash, subscription)
            }
            Event::ExtendTtl { tenant, query_hash, subscription, ttl_micros } => {
                self.handle_extend_ttl(&tenant, query_hash, subscription, ttl_micros)
            }
            Event::Write(_) | Event::Out(_) => {}
        }
    }

    fn tick(&mut self, _ctx: &mut BoltContext<'_, Event>) {
        self.expire();
        self.slow_scratch.flush(&self.config.metrics.slow_queries());
        // Per-task gauge, refreshed once per tick like the matching grid's.
        self.config
            .metrics
            .set_gauge(&format!("sorting.{}.active_queries", self.task), self.groups.len() as u64);
        let shared = self.groups.values().filter(|g| g.subscriptions.len() >= 2).count() as u64;
        crate::matching::publish_gauge_delta(&self.metric_shared, &mut self.last_shared, shared);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FilterChangeKind;
    use invalidb_common::{doc, Document, Key, MatchType, MockClock, QuerySpec, SortDirection};
    use invalidb_stream::{Grouping, Source, TopologyBuilder};
    use parking_lot::Mutex;
    use std::time::Duration;

    struct Harness {
        tx: crossbeam::channel::Sender<Event>,
        out: Arc<Mutex<Vec<Event>>>,
        _topo: invalidb_stream::RunningTopology,
    }

    struct ChanSource(crossbeam::channel::Receiver<Event>);
    impl Source<Event> for ChanSource {
        fn poll(&mut self, timeout: Duration) -> Vec<Event> {
            match self.0.recv_timeout(timeout) {
                Ok(e) => {
                    let mut out = vec![e];
                    out.extend(self.0.try_iter());
                    out
                }
                Err(_) => Vec::new(),
            }
        }
    }

    struct Collector(Arc<Mutex<Vec<Event>>>);
    impl Bolt<Event> for Collector {
        fn execute(&mut self, input: Event, _ctx: &mut BoltContext<'_, Event>) {
            self.0.lock().push(input);
        }
    }

    fn harness(config: ClusterConfig) -> Harness {
        let (tx, rx) = crossbeam::channel::unbounded();
        let out = Arc::new(Mutex::new(Vec::new()));
        let clock = MockClock::new();
        let mut b = TopologyBuilder::new();
        b.add_source("src", ChanSource(rx));
        let cfg = config.clone();
        b.add_bolt("node", 1, move |task| {
            Box::new(SortingNode::new(task, cfg.clone(), Arc::new(clock.clone())))
        });
        let out2 = Arc::clone(&out);
        b.add_bolt("sink", 1, move |_| Box::new(Collector(Arc::clone(&out2))));
        b.connect("src", "node", Grouping::Broadcast);
        b.connect("node", "sink", Grouping::Shuffle);
        Harness { tx, out, _topo: b.start() }
    }

    fn subscribe_event(spec: &QuerySpec, slack: u64, initial: Vec<ResultItem>) -> Event {
        subscribe_as(spec, 1, slack, initial)
    }

    fn subscribe_as(spec: &QuerySpec, sub: u64, slack: u64, initial: Vec<ResultItem>) -> Event {
        Event::Subscribe(Arc::new(SubscriptionRequest {
            tenant: TenantId::new("app"),
            subscription: SubscriptionId(sub),
            query_hash: spec.stable_hash(),
            spec: spec.clone(),
            initial,
            slack,
            ttl_micros: 60_000_000,
            renewal: false,
        }))
    }

    fn change_event(spec: &QuerySpec, kind: FilterChangeKind, key: &str, version: u64, doc: Option<Document>) -> Event {
        Event::FilterChange(Arc::new(FilterChange {
            tenant: TenantId::new("app"),
            query_hash: spec.stable_hash(),
            kind,
            key: Key::of(key),
            version,
            doc,
            written_at: 7,
            trace: None,
        }))
    }

    fn item(key: &str, version: u64, n: i64) -> ResultItem {
        ResultItem {
            key: Key::of(key),
            version,
            doc: Some(doc! { "n" => n }),
            index: None,
        }
    }

    fn notifications(h: &Harness, n: usize) -> Vec<Notification> {
        for _ in 0..400 {
            if h.out.lock().len() >= n {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        h.out
            .lock()
            .iter()
            .filter_map(|e| match e {
                Event::Out(msg) => match &**msg {
                    OutMsg::Notify(note) => Some(note.clone()),
                    _ => None,
                },
                _ => None,
            })
            .collect()
    }

    /// Regression test for the inactive-discard race: a filter change that
    /// reaches the sorting task while its query awaits renewal must be
    /// buffered and replayed after the reseed — the renewal's snapshot is
    /// read from the store before the Subscribe is published, so the change
    /// may postdate the snapshot and be the key's only chance to surface.
    #[test]
    fn changes_buffered_while_awaiting_renewal_replay_after_reseed() {
        let h = harness(ClusterConfig::new(1, 1));
        let spec = QuerySpec::filter("t", Document::new())
            .sorted_by("n", SortDirection::Asc)
            .with_limit(2);

        // Seed with zero slack and a full (hence incomplete) window: the
        // first remove exhausts the window and raises a maintenance error.
        h.tx.send(subscribe_event(&spec, 0, vec![item("k1", 1, 1), item("k2", 1, 2)])).unwrap();
        h.tx.send(change_event(&spec, FilterChangeKind::Remove, "k1", 2, None)).unwrap();
        let notes = notifications(&h, 1);
        assert_eq!(notes.len(), 1, "remove on an exhausted window must error: {notes:?}");
        assert!(
            matches!(notes[0].kind, NotificationKind::Error(_)),
            "expected maintenance error, got {:?}",
            notes[0].kind
        );

        // While the query is deactivated, two changes race the renewal:
        // one already covered by the upcoming snapshot (k2@1, stale) and
        // one that postdates it (k3). Both were silently discarded before.
        h.tx.send(change_event(
            &spec,
            FilterChangeKind::Change,
            "k2",
            1,
            Some(doc! { "n" => 2i64 }),
        ))
        .unwrap();
        h.tx.send(change_event(&spec, FilterChangeKind::Add, "k3", 1, Some(doc! { "n" => 3i64 })))
            .unwrap();

        // Renewal: fresh snapshot read before k3's write reached the store.
        // Ample slack, window complete (1 item < cap).
        h.tx.send(subscribe_event(&spec, 2, vec![item("k2", 1, 2)])).unwrap();

        let notes = notifications(&h, 2);
        assert_eq!(notes.len(), 2, "exactly the buffered fresh change must surface: {notes:?}");
        match &notes[1].kind {
            NotificationKind::Change(change) => {
                assert_eq!(change.match_type, MatchType::Add);
                assert_eq!(change.item.key, Key::of("k3"));
                assert_eq!(change.item.index, Some(1));
            }
            other => panic!("expected buffered add to replay, got {other:?}"),
        }
    }

    /// Shared-sort-window churn: two subscriptions share one window (same
    /// normalized query hash). One member leaves while the window is
    /// deactivated awaiting renewal; the survivor's renewal must re-seed
    /// the window, replay the `pending` buffer, and keep delivering
    /// ordered notifications — the window dies only with its last member.
    #[test]
    fn shared_window_survives_member_churn_mid_renewal() {
        let mut cfg = ClusterConfig::new(1, 1);
        cfg.tick_interval = Duration::from_millis(10);
        let metrics = cfg.metrics.clone();
        let h = harness(cfg);
        let spec = QuerySpec::filter("t", Document::new())
            .sorted_by("n", SortDirection::Asc)
            .with_limit(2);

        // Two subscribers, one shared window.
        h.tx.send(subscribe_as(&spec, 1, 0, vec![item("k1", 1, 1), item("k2", 1, 2)])).unwrap();
        h.tx.send(subscribe_as(&spec, 2, 0, vec![item("k1", 1, 1), item("k2", 1, 2)])).unwrap();
        // The shared-windows gauge sees the group once both are attached.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if metrics.snapshot().gauges.get("matching.index.shared_windows").copied() == Some(1) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "shared_windows gauge never rose");
            std::thread::sleep(Duration::from_millis(5));
        }

        // Exhaust the zero-slack window: maintenance error deactivates the
        // group and notifies both members.
        h.tx.send(change_event(&spec, FilterChangeKind::Remove, "k1", 2, None)).unwrap();
        let notes = notifications(&h, 2);
        assert_eq!(notes.len(), 2, "both members get the maintenance error: {notes:?}");
        assert!(notes.iter().all(|n| matches!(n.kind, NotificationKind::Error(_))));
        let erred: std::collections::HashSet<u64> =
            notes.iter().map(|n| n.subscription.0).collect();
        assert_eq!(erred, std::collections::HashSet::from([1, 2]));

        // While deactivated: a change postdating the upcoming snapshot is
        // buffered, and member 1 leaves mid-renewal.
        h.tx.send(change_event(&spec, FilterChangeKind::Add, "k3", 1, Some(doc! { "n" => 3i64 })))
            .unwrap();
        h.tx.send(Event::Unsubscribe {
            tenant: TenantId::new("app"),
            query_hash: spec.stable_hash(),
            subscription: SubscriptionId(1),
        })
        .unwrap();

        // The survivor renews: reseed + pending replay must still work.
        h.tx.send(subscribe_as(&spec, 2, 2, vec![item("k2", 1, 2)])).unwrap();
        let notes = notifications(&h, 3);
        assert_eq!(notes.len(), 3, "replay reaches only the survivor: {notes:?}");
        let replayed = &notes[2];
        assert_eq!(replayed.subscription, SubscriptionId(2), "departed member gets nothing");
        match &replayed.kind {
            NotificationKind::Change(change) => {
                assert_eq!(change.match_type, MatchType::Add);
                assert_eq!(change.item.key, Key::of("k3"));
                assert_eq!(change.item.index, Some(1), "ordered position maintained");
            }
            other => panic!("expected buffered add to replay, got {other:?}"),
        }

        // Ordered maintenance continues for the survivor after churn.
        h.tx.send(change_event(&spec, FilterChangeKind::Add, "k0", 1, Some(doc! { "n" => 0i64 })))
            .unwrap();
        let notes = notifications(&h, 4);
        let last = notes.last().unwrap();
        assert_eq!(last.subscription, SubscriptionId(2));
        match &last.kind {
            NotificationKind::Change(change) => {
                assert_eq!(change.item.key, Key::of("k0"));
                assert_eq!(change.item.index, Some(0), "sorts ahead of the window");
            }
            other => panic!("expected ordered add, got {other:?}"),
        }

        // With one member left the window no longer counts as shared.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            if metrics.snapshot().gauges.get("matching.index.shared_windows").copied()
                == Some(0)
            {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "shared_windows gauge never fell");
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}
