//! The sorting stage (§5.2).
//!
//! Sorting nodes receive filtering-stage output *partitioned by query* —
//! each sorted query is owned by exactly one sorting task (fields grouping
//! on the query hash), which therefore holds the query's full
//! offset+result+slack window and can detect positional changes
//! (`changeIndex`), boundary crossings, and maintenance errors.

use crate::config::ClusterConfig;
use crate::event::{Event, FilterChange, OutMsg};
use crate::window::{apply_events, SortedWindow, VisibleEvent, WindowItem};
use invalidb_common::{
    ChangeItem, Clock, MaintenanceError, MatchType, Notification, NotificationKind, QueryHash,
    ResultItem, Stage, SubscriptionId, SubscriptionRequest, TenantId, Timestamp, TraceContext,
};
use invalidb_obs::SlowQueryScratch;
use invalidb_query::PreparedQuery;
use invalidb_stream::{Bolt, BoltContext};
use std::collections::HashMap;
use std::sync::Arc;

struct SubState {
    tenant: TenantId,
    expires_at: Timestamp,
}

struct SortGroup {
    /// Human-readable rendering of the query spec, captured at subscribe
    /// time for the slow-query log.
    spec_display: String,
    prepared: Arc<dyn PreparedQuery>,
    window: SortedWindow,
    /// What subscribed clients currently hold (maintained by applying the
    /// same edit scripts that are sent out).
    client_state: Vec<WindowItem>,
    /// False after a maintenance error, until renewal re-activates.
    active: bool,
    slack: u64,
    subscriptions: HashMap<SubscriptionId, SubState>,
}

/// The sorting-stage bolt.
pub struct SortingNode {
    task: usize,
    config: ClusterConfig,
    clock: Arc<dyn Clock>,
    groups: HashMap<(TenantId, QueryHash), SortGroup>,
    /// Observability: maintenance errors raised.
    maintenance_errors: u64,
    /// Locally accumulated slow-query charges, flushed to the shared log
    /// on tick so the per-filter-change hot path never takes its lock.
    slow_scratch: SlowQueryScratch,
}

impl SortingNode {
    /// Creates the sorting node for task index `task`.
    pub fn new(task: usize, config: ClusterConfig, clock: Arc<dyn Clock>) -> Self {
        Self {
            task,
            config,
            clock,
            groups: HashMap::new(),
            maintenance_errors: 0,
            slow_scratch: SlowQueryScratch::new(),
        }
    }

    /// Number of sorted queries owned by this node.
    pub fn active_queries(&self) -> usize {
        self.groups.len()
    }

    /// Maintenance errors raised so far.
    pub fn maintenance_errors(&self) -> u64 {
        self.maintenance_errors
    }

    fn handle_subscribe(&mut self, req: &SubscriptionRequest, ctx: &mut BoltContext<'_, Event>) {
        if !req.spec.needs_sorting_stage() {
            return; // unsorted queries live entirely in the filtering stage
        }
        let now = self.clock.now();
        let expires_at = now.after(std::time::Duration::from_micros(req.ttl_micros));
        let group_key = (req.tenant.clone(), req.query_hash);
        if let Some(group) = self.groups.get_mut(&group_key) {
            group
                .subscriptions
                .insert(req.subscription, SubState { tenant: req.tenant.clone(), expires_at });
            if group.active {
                // Late joiner: its initial result (fresh from the database)
                // may differ from the group's maintained window. Send the
                // correction delta to this subscription only.
                let fresh = SortedWindow::new(Arc::clone(&group.prepared), req.slack, &req.initial);
                let delta = crate::window::diff_visible(fresh.visible(), &group.client_state);
                let tenant = req.tenant.clone();
                for ev in &delta {
                    ctx.emit(to_notification_event(&tenant, req.subscription, ev, 0, None));
                }
            } else {
                // Renewal: re-seed from the fresh result. On the wire a
                // renewal is indistinguishable from a fresh subscribe, so
                // the notifier has already re-sent the initial result and
                // the client's list is reset wholesale — emitting a delta
                // from the pre-error state on top of that replacement
                // would corrupt the client's list.
                let _ = group.window.reseed(req.slack, &req.initial, &group.client_state);
                group.active = true;
                group.slack = req.slack;
                group.client_state = group.window.snapshot_visible();
            }
            return;
        }
        let prepared = match self.config.engine.prepare(&req.spec) {
            Ok(p) => p,
            Err(_) => return, // the filtering stage already reported this
        };
        let window = SortedWindow::new(Arc::clone(&prepared), req.slack, &req.initial);
        let client_state = window.snapshot_visible();
        let mut subscriptions = HashMap::new();
        subscriptions.insert(req.subscription, SubState { tenant: req.tenant.clone(), expires_at });
        self.groups.insert(
            group_key,
            SortGroup {
                spec_display: req.spec.to_string(),
                prepared,
                window,
                client_state,
                active: true,
                slack: req.slack,
                subscriptions,
            },
        );
    }

    fn handle_filter_change(&mut self, fc: &FilterChange, ctx: &mut BoltContext<'_, Event>) {
        let group = match self.groups.get_mut(&(fc.tenant.clone(), fc.query_hash)) {
            Some(g) if g.active => g,
            _ => return, // inactive (awaiting renewal) or unknown
        };
        // Slow-query accounting: the window maintenance below is the
        // sorting stage's per-query cost.
        let started = std::time::Instant::now();
        let outcome = group.window.apply(&fc.key, fc.version, fc.doc.as_ref());
        // Stamp the sorting stage once per filter change on sampled traces.
        let trace: Option<TraceContext> = fc.trace.clone().map(|mut t| {
            t.stamp(Stage::Sorting);
            t
        });
        if let Some(reason) = outcome.error {
            // Query maintenance error: deactivate and ask for renewal. The
            // client's list stays at the last valid state (client_state).
            group.active = false;
            self.maintenance_errors += 1;
            self.config.metrics.inc("sorting.maintenance_errors");
            for (sub, state) in &group.subscriptions {
                ctx.emit(Event::Out(Arc::new(OutMsg::Notify(Notification {
                    tenant: state.tenant.clone(),
                    subscription: *sub,
                    kind: NotificationKind::Error(MaintenanceError { reason: reason.clone() }),
                    caused_by_write_at: fc.written_at,
                    trace: trace.clone(),
                }))));
            }
            self.slow_scratch.charge(
                &fc.tenant.0,
                fc.query_hash.0,
                || group.spec_display.clone(),
                started.elapsed().as_micros() as u64,
            );
            return;
        }
        Self::broadcast(group, &outcome.events, fc.written_at, trace.as_ref(), ctx);
        apply_events(&mut group.client_state, &outcome.events);
        self.slow_scratch.charge(
            &fc.tenant.0,
            fc.query_hash.0,
            || group.spec_display.clone(),
            started.elapsed().as_micros() as u64,
        );
    }

    fn broadcast(
        group: &SortGroup,
        events: &[VisibleEvent],
        written_at: u64,
        trace: Option<&TraceContext>,
        ctx: &mut BoltContext<'_, Event>,
    ) {
        for ev in events {
            for (sub, state) in &group.subscriptions {
                ctx.emit(to_notification_event(&state.tenant, *sub, ev, written_at, trace));
            }
        }
        let _ = &group.slack;
    }

    fn handle_unsubscribe(
        &mut self,
        tenant: &TenantId,
        query_hash: QueryHash,
        subscription: SubscriptionId,
    ) {
        if let Some(group) = self.groups.get_mut(&(tenant.clone(), query_hash)) {
            group.subscriptions.remove(&subscription);
            if group.subscriptions.is_empty() {
                self.groups.remove(&(tenant.clone(), query_hash));
            }
        }
    }

    fn handle_extend_ttl(
        &mut self,
        tenant: &TenantId,
        query_hash: QueryHash,
        subscription: SubscriptionId,
        ttl_micros: u64,
    ) {
        let now = self.clock.now();
        if let Some(group) = self.groups.get_mut(&(tenant.clone(), query_hash)) {
            if let Some(sub) = group.subscriptions.get_mut(&subscription) {
                sub.expires_at = now.after(std::time::Duration::from_micros(ttl_micros));
            }
        }
    }

    fn expire(&mut self) {
        let now = self.clock.now();
        self.groups.retain(|_, group| {
            group.subscriptions.retain(|_, sub| sub.expires_at > now);
            !group.subscriptions.is_empty()
        });
    }
}

/// Converts a window edit-script event into a per-subscription notification.
fn to_notification_event(
    tenant: &TenantId,
    subscription: SubscriptionId,
    ev: &VisibleEvent,
    written_at: u64,
    trace: Option<&TraceContext>,
) -> Event {
    let kind = match ev {
        VisibleEvent::Add { item, index } => NotificationKind::Change(ChangeItem {
            match_type: MatchType::Add,
            item: ResultItem {
                key: item.key.clone(),
                version: item.version,
                doc: Some(item.doc.clone()),
                index: Some(*index as u64),
            },
            old_index: None,
        }),
        VisibleEvent::Change { item, index } => NotificationKind::Change(ChangeItem {
            match_type: MatchType::Change,
            item: ResultItem {
                key: item.key.clone(),
                version: item.version,
                doc: Some(item.doc.clone()),
                index: Some(*index as u64),
            },
            old_index: None,
        }),
        VisibleEvent::ChangeIndex { item, old_index, index } => NotificationKind::Change(ChangeItem {
            match_type: MatchType::ChangeIndex,
            item: ResultItem {
                key: item.key.clone(),
                version: item.version,
                doc: Some(item.doc.clone()),
                index: Some(*index as u64),
            },
            old_index: Some(*old_index as u64),
        }),
        VisibleEvent::Remove { key, version, old_index } => NotificationKind::Change(ChangeItem {
            match_type: MatchType::Remove,
            item: ResultItem { key: key.clone(), version: *version, doc: None, index: None },
            old_index: Some(*old_index as u64),
        }),
    };
    Event::Out(Arc::new(OutMsg::Notify(Notification {
        tenant: tenant.clone(),
        subscription,
        kind,
        caused_by_write_at: written_at,
        trace: trace.cloned(),
    })))
}

impl Bolt<Event> for SortingNode {
    fn execute(&mut self, input: Event, ctx: &mut BoltContext<'_, Event>) {
        match input {
            Event::Subscribe(req) => self.handle_subscribe(&req, ctx),
            Event::FilterChange(fc) => self.handle_filter_change(&fc, ctx),
            Event::Unsubscribe { tenant, query_hash, subscription } => {
                self.handle_unsubscribe(&tenant, query_hash, subscription)
            }
            Event::ExtendTtl { tenant, query_hash, subscription, ttl_micros } => {
                self.handle_extend_ttl(&tenant, query_hash, subscription, ttl_micros)
            }
            Event::Write(_) | Event::Out(_) => {}
        }
    }

    fn tick(&mut self, _ctx: &mut BoltContext<'_, Event>) {
        self.expire();
        self.slow_scratch.flush(&self.config.metrics.slow_queries());
        // Per-task gauge, refreshed once per tick like the matching grid's.
        self.config
            .metrics
            .set_gauge(&format!("sorting.{}.active_queries", self.task), self.groups.len() as u64);
    }
}
