//! Cluster assembly: wires ingestion, the matching grid, the sorting stage
//! and the notifier into one stream topology connected to the event layer.

use crate::aggregation::AggregationNode;
use crate::config::ClusterConfig;
use crate::event::Event;
use crate::matching::MatchingNode;
use crate::notifier::Notifier;
use crate::sorting::SortingNode;
use invalidb_broker::{BrokerHandle, CLUSTER_TOPIC};
use invalidb_common::partition::partition_of;
use invalidb_common::{ClusterMessage, GridShape, Stage, SystemClock};
use invalidb_obs::{
    AdminConfig, AdminServer, FlightRecorder, MetricsRegistry, MetricsSnapshot, SlowQueryLog,
};
use invalidb_stream::{
    Bolt, BoltContext, Grouping, RunningTopology, Source, TopologyBuilder, TopologyConfig,
    TopologyMetrics,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A running InvaliDB cluster.
///
/// The cluster is reachable *only* through the event layer: publish
/// [`ClusterMessage`]s (JSON documents) to [`CLUSTER_TOPIC`]; notifications
/// arrive on per-tenant `invalidb.notify.<tenant>` topics. Dropping the
/// handle shuts the cluster down — application servers and the database are
/// unaffected (isolated failure domain, §5).
pub struct Cluster {
    topology: Option<RunningTopology>,
    grid: GridShape,
    decode_errors: Arc<AtomicU64>,
    registry: MetricsRegistry,
    admin: Option<AdminServer>,
}

impl Cluster {
    /// Starts a cluster with the given configuration, attached to an event
    /// layer — an in-process [`invalidb_broker::Broker`], a
    /// [`BrokerHandle`], or any other [`invalidb_broker::EventLayer`]
    /// implementation (e.g. `invalidb-net`'s TCP-backed `RemoteBroker`).
    pub fn start(broker: impl Into<BrokerHandle>, config: ClusterConfig) -> Cluster {
        let broker: BrokerHandle = broker.into();
        let grid = GridShape::new(config.query_partitions, config.write_partitions);
        let clock = Arc::new(SystemClock::new());
        let decode_errors = Arc::new(AtomicU64::new(0));

        let mut b = TopologyBuilder::<Event>::new().with_config(TopologyConfig {
            queue_capacity: config.queue_capacity,
            tick_interval: config.tick_interval,
            source_poll_timeout: Duration::from_millis(10),
            max_batch: config.max_batch,
        });

        // Ingress: decode opaque event-layer payloads into cluster events.
        b.add_source(
            "ingress",
            IngressSource {
                subscription: broker.subscribe(CLUSTER_TOPIC),
                decode_errors: Arc::clone(&decode_errors),
                metrics: config.metrics.clone(),
            },
        );

        // Stateless ingestion tiers (§5.1): they "merely receive data items,
        // compute their partitions by hashing static attributes, and forward
        // the items to the corresponding matching nodes" — the hashing lives
        // in the grouping functions of their outgoing connections.
        b.add_bolt("query-ingest", config.query_ingest_nodes.max(1), |_| Box::new(Forwarder));
        b.add_bolt("write-ingest", config.write_ingest_nodes.max(1), |_| Box::new(Forwarder));

        // The QP × WP matching grid (filtering stage).
        {
            let config = config.clone();
            let clock = clock.clone();
            b.add_bolt("matching", grid.nodes(), move |task| {
                Box::new(MatchingNode::new(task, grid, config.clone(), clock.clone() as _))
            });
        }

        // Sorting stage, partitioned by query.
        {
            let config = config.clone();
            let clock = clock.clone();
            b.add_bolt("sorting", config.sorting_tasks.max(1), move |task| {
                Box::new(SortingNode::new(task, config.clone(), clock.clone() as _))
            });
        }

        // Aggregation stage (extension, §8.1), partitioned by query.
        {
            let config = config.clone();
            let clock = clock.clone();
            b.add_bolt("aggregation", config.aggregation_tasks.max(1), move |_| {
                Box::new(AggregationNode::new(config.clone(), clock.clone() as _))
            });
        }

        // Notification sink.
        {
            let config = config.clone();
            let broker = broker.clone();
            let clock = clock.clone();
            b.add_bolt("notifier", 1, move |_| {
                Box::new(Notifier::new(broker.clone(), config.clone(), clock.clone() as _))
            });
        }

        // Split ingress traffic to the two ingestion tiers.
        b.connect(
            "ingress",
            "query-ingest",
            Grouping::direct(|e: &Event, n| match e {
                Event::Subscribe(req) => vec![partition_of(req.query_hash.0, n)],
                Event::Unsubscribe { query_hash, .. } | Event::ExtendTtl { query_hash, .. } => {
                    vec![partition_of(query_hash.0, n)]
                }
                _ => vec![],
            }),
        );
        b.connect(
            "ingress",
            "write-ingest",
            Grouping::direct(|e: &Event, n| match e {
                Event::Write(img) => vec![partition_of(img.key.stable_hash(), n)],
                _ => vec![],
            }),
        );

        // Query ingestion → notifier FIRST: emits route in declaration order,
        // so the initial result is enqueued at the (single, FIFO) notifier
        // before the matching/sorting nodes even receive the subscription —
        // no change notification can overtake the initial result.
        b.connect(
            "query-ingest",
            "notifier",
            Grouping::direct(|e: &Event, _n| match e {
                Event::Subscribe(_) => vec![0],
                _ => vec![],
            }),
        );
        // Query ingestion → the full grid row of the query partition.
        {
            let grid_rows = grid;
            b.connect(
                "query-ingest",
                "matching",
                Grouping::direct(move |e: &Event, _n| match e {
                    Event::Subscribe(req) => grid_rows.tasks_for_query(req.query_hash),
                    Event::Unsubscribe { query_hash, .. } | Event::ExtendTtl { query_hash, .. } => {
                        grid_rows.tasks_for_query(*query_hash)
                    }
                    _ => vec![],
                }),
            );
        }
        // Query ingestion → sorting (sorted queries own exactly one task).
        b.connect(
            "query-ingest",
            "sorting",
            Grouping::direct(|e: &Event, n| match e {
                Event::Subscribe(req) if req.spec.needs_sorting_stage() => {
                    vec![partition_of(req.query_hash.0, n)]
                }
                Event::Unsubscribe { query_hash, .. } | Event::ExtendTtl { query_hash, .. } => {
                    vec![partition_of(query_hash.0, n)]
                }
                _ => vec![],
            }),
        );
        // Query ingestion → aggregation (aggregate queries own one task).
        b.connect(
            "query-ingest",
            "aggregation",
            Grouping::direct(|e: &Event, n| match e {
                Event::Subscribe(req) if req.spec.needs_aggregation_stage() => {
                    vec![partition_of(req.query_hash.0, n)]
                }
                Event::Unsubscribe { query_hash, .. } | Event::ExtendTtl { query_hash, .. } => {
                    vec![partition_of(query_hash.0, n)]
                }
                _ => vec![],
            }),
        );

        // Write ingestion → the full grid column of the write partition.
        {
            let grid_cols = grid;
            b.connect(
                "write-ingest",
                "matching",
                Grouping::direct(move |e: &Event, _n| match e {
                    Event::Write(img) => grid_cols.tasks_for_key(&img.key),
                    _ => vec![],
                }),
            );
        }

        // Filtering stage → sorting stage (partitioned by query hash) and
        // → notifier (finished notifications of self-maintainable queries).
        b.connect(
            "matching",
            "sorting",
            Grouping::direct(|e: &Event, n| match e {
                Event::FilterChange(fc) => vec![partition_of(fc.query_hash.0, n)],
                _ => vec![],
            }),
        );
        b.connect(
            "matching",
            "aggregation",
            Grouping::direct(|e: &Event, n| match e {
                Event::FilterChange(fc) => vec![partition_of(fc.query_hash.0, n)],
                _ => vec![],
            }),
        );
        b.connect(
            "matching",
            "notifier",
            Grouping::direct(|e: &Event, _n| match e {
                Event::Out(_) => vec![0],
                _ => vec![],
            }),
        );
        b.connect(
            "sorting",
            "notifier",
            Grouping::direct(|e: &Event, _n| match e {
                Event::Out(_) => vec![0],
                _ => vec![],
            }),
        );
        b.connect(
            "aggregation",
            "notifier",
            Grouping::direct(|e: &Event, _n| match e {
                Event::Out(_) => vec![0],
                _ => vec![],
            }),
        );

        let registry = config.metrics.clone();
        let topology = b.start();
        registry.attach_topology("cluster", Arc::clone(topology.metrics()));
        // Optional admin plane. A failed bind does not abort the cluster
        // (the pipeline is the product; the admin endpoint is a window into
        // it) but is recorded so it cannot go unnoticed.
        let admin = config.admin_addr.as_deref().and_then(|addr| {
            match AdminServer::bind(addr, registry.clone(), AdminConfig::default()) {
                Ok(server) => Some(server),
                Err(_) => {
                    registry.inc("admin.bind_errors");
                    None
                }
            }
        });
        Cluster { topology: Some(topology), grid, decode_errors, registry, admin }
    }

    /// The grid shape this cluster runs.
    pub fn grid(&self) -> GridShape {
        self.grid
    }

    /// A point-in-time snapshot of every cluster metric: per-stage latency
    /// histograms (when tracing is enabled), matched/filtered/dropped
    /// counters, per-partition gauges, and the topology's per-component
    /// processed/emitted counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The live registry this cluster reports into (shared with whatever
    /// was passed via [`ClusterConfig::builder`]'s `metrics` setter).
    pub fn registry(&self) -> MetricsRegistry {
        self.registry.clone()
    }

    /// Raw topology metrics (per-component processed/emitted counters).
    pub fn topology_metrics(&self) -> Arc<TopologyMetrics> {
        Arc::clone(self.topology.as_ref().expect("running").metrics())
    }

    /// Count of event-layer payloads that failed to decode.
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors.load(Ordering::Relaxed)
    }

    /// The slow-query log: per-query cost accounting fed by the matching
    /// and sorting stages. `top(k)` returns the heaviest queries.
    pub fn slow_queries(&self) -> SlowQueryLog {
        self.registry.slow_queries()
    }

    /// The flight recorder: a bounded ring of recent structured pipeline
    /// events (reconnects, drops, decode errors, health transitions).
    pub fn flight(&self) -> FlightRecorder {
        self.registry.flight()
    }

    /// Where the admin endpoint actually listens (useful with a `:0` bind),
    /// or `None` when [`ClusterConfig::admin_addr`] was unset or the bind
    /// failed (counted as `admin.bind_errors`).
    pub fn admin_addr(&self) -> Option<std::net::SocketAddr> {
        self.admin.as_ref().map(|a| a.local_addr())
    }

    /// The hosted admin server, when one is running.
    pub fn admin(&self) -> Option<&AdminServer> {
        self.admin.as_ref()
    }

    /// Stops the cluster, draining in-flight work.
    pub fn shutdown(mut self) {
        if let Some(mut admin) = self.admin.take() {
            admin.shutdown();
        }
        if let Some(t) = self.topology.take() {
            t.shutdown();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        if let Some(t) = self.topology.take() {
            t.shutdown();
        }
    }
}

/// Decodes event-layer payloads into topology events.
struct IngressSource {
    subscription: invalidb_broker::Subscription,
    decode_errors: Arc<AtomicU64>,
    metrics: MetricsRegistry,
}

impl Source<Event> for IngressSource {
    fn poll(&mut self, timeout: Duration) -> Vec<Event> {
        let first = match self.subscription.recv_timeout(timeout) {
            Some(payload) => payload,
            None => return Vec::new(),
        };
        let mut out = Vec::with_capacity(8);
        let mut decode = |payload: bytes::Bytes| match invalidb_json::payload_to_document(&payload)
            .ok()
            .and_then(|d| ClusterMessage::from_document(&d).ok())
        {
            Some(mut msg) => {
                // Sampled traces get their ingestion stamp the moment the
                // envelope is decoded off the event layer.
                if let ClusterMessage::Write(img) = &mut msg {
                    if let Some(trace) = img.trace.as_mut() {
                        trace.stamp(Stage::Ingestion);
                        self.metrics.inc("ingress.traced_writes");
                    }
                }
                out.push(msg.into());
            }
            None => {
                self.decode_errors.fetch_add(1, Ordering::Relaxed);
                self.metrics.inc("ingress.decode_errors");
            }
        };
        decode(first);
        while let Some(payload) = self.subscription.try_recv() {
            decode(payload);
        }
        out
    }
}

impl From<ClusterMessage> for Event {
    fn from(msg: ClusterMessage) -> Self {
        match msg {
            ClusterMessage::Subscribe(req) => Event::Subscribe(Arc::new(req)),
            ClusterMessage::Unsubscribe { tenant, subscription, query_hash } => {
                Event::Unsubscribe { tenant, subscription, query_hash }
            }
            ClusterMessage::ExtendTtl { tenant, subscription, query_hash, ttl_micros } => {
                Event::ExtendTtl { tenant, subscription, query_hash, ttl_micros }
            }
            ClusterMessage::Write(img) => Event::Write(Arc::new(img)),
        }
    }
}

/// Stateless pass-through bolt (ingestion tier).
struct Forwarder;

impl Bolt<Event> for Forwarder {
    fn execute(&mut self, input: Event, ctx: &mut BoltContext<'_, Event>) {
        ctx.emit(input);
    }
}
