//! Cluster assembly: wires ingestion, the matching grid, the sorting stage
//! and the notifier into one stream topology connected to the event layer.
//!
//! Cell hosting is abstracted behind [`CellHost`]: the classic in-process
//! deployment hosts the [`FullGrid`], while a multi-process worker hosts a
//! [`CellSet`] — only its assigned cells receive events, and staged
//! (sorted/aggregate) output from cells whose query-partition row lives on
//! another worker is shuffled through the event layer instead of an
//! in-process channel.

use crate::aggregation::AggregationNode;
use crate::config::ClusterConfig;
use crate::event::{Event, FilterChange};
use crate::matching::MatchingNode;
use crate::notifier::Notifier;
use crate::sorting::SortingNode;
use invalidb_broker::{shuffle_topic, BrokerHandle, CLUSTER_TOPIC};
use invalidb_common::partition::partition_of;
use invalidb_common::{ClusterMessage, GridCoord, GridShape, Stage, SystemClock};
use invalidb_obs::{
    AdminConfig, AdminServer, FlightRecorder, MetricsRegistry, MetricsSnapshot, SlowQueryLog,
};
use invalidb_stream::{
    Bolt, BoltContext, Grouping, RunningTopology, Source, TopologyBuilder, TopologyConfig,
    TopologyMetrics,
};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Decides which matching-grid cells this process hosts.
///
/// The 2-D grid (§5.1) is position-addressed: cell `(qp, wp)` sees every
/// (query, write) pair for its partitions regardless of where it runs. A
/// `CellHost` tells the topology which cells are local, so the same
/// assembly code serves both the single-process grid and a remote worker
/// hosting an assigned subset.
pub trait CellHost: Send + Sync {
    /// True when the matching cell with this task index runs here.
    fn owns_cell(&self, task: usize) -> bool;
    /// True when query-partition row `qp` is *anchored* here: the row owner
    /// hosts the row's sorting/aggregation state and emits its initial
    /// results. By convention the owner of cell `(qp, 0)` owns the row.
    fn owns_row(&self, qp: usize) -> bool;
    /// True when every cell of the grid is hosted here (no shuffle needed).
    fn is_complete(&self) -> bool;
}

/// The classic single-process host: every cell of the grid lives here.
pub struct FullGrid;

impl CellHost for FullGrid {
    fn owns_cell(&self, _task: usize) -> bool {
        true
    }
    fn owns_row(&self, _qp: usize) -> bool {
        true
    }
    fn is_complete(&self) -> bool {
        true
    }
}

/// A subset host for multi-process deployment: hosts exactly the matching
/// cells named by their task indices (row-major, see
/// [`GridShape::task_index`]).
#[derive(Debug, Clone)]
pub struct CellSet {
    grid: GridShape,
    cells: BTreeSet<usize>,
}

impl CellSet {
    /// Creates a host for the given cells of a grid. Out-of-range indices
    /// are rejected.
    pub fn new(grid: GridShape, cells: impl IntoIterator<Item = usize>) -> CellSet {
        let cells: BTreeSet<usize> = cells.into_iter().collect();
        assert!(
            cells.iter().all(|&t| t < grid.nodes()),
            "cell index out of range for {}x{} grid",
            grid.query_partitions,
            grid.write_partitions
        );
        CellSet { grid, cells }
    }

    /// The hosted cell indices, ascending.
    pub fn cells(&self) -> impl Iterator<Item = usize> + '_ {
        self.cells.iter().copied()
    }
}

impl CellHost for CellSet {
    fn owns_cell(&self, task: usize) -> bool {
        self.cells.contains(&task)
    }
    fn owns_row(&self, qp: usize) -> bool {
        qp < self.grid.query_partitions
            && self.cells.contains(&self.grid.task_index(GridCoord { qp, wp: 0 }))
    }
    fn is_complete(&self) -> bool {
        self.cells.len() == self.grid.nodes()
    }
}

/// A running InvaliDB cluster.
///
/// The cluster is reachable *only* through the event layer: publish
/// [`ClusterMessage`]s (JSON documents) to [`CLUSTER_TOPIC`]; notifications
/// arrive on per-tenant `invalidb.notify.<tenant>` topics. Dropping the
/// handle shuts the cluster down — application servers and the database are
/// unaffected (isolated failure domain, §5).
pub struct Cluster {
    topology: Option<RunningTopology>,
    grid: GridShape,
    decode_errors: Arc<AtomicU64>,
    registry: MetricsRegistry,
    admin: Option<AdminServer>,
}

impl Cluster {
    /// Starts a cluster with the given configuration, attached to an event
    /// layer — an in-process [`invalidb_broker::Broker`], a
    /// [`BrokerHandle`], or any other [`invalidb_broker::EventLayer`]
    /// implementation (e.g. `invalidb-net`'s TCP-backed `RemoteBroker`).
    pub fn start(broker: impl Into<BrokerHandle>, config: ClusterConfig) -> Cluster {
        Cluster::start_with_host(broker, config, Arc::new(FullGrid))
    }

    /// Starts a cluster hosting only the cells a [`CellHost`] claims.
    ///
    /// With [`FullGrid`] this is exactly [`Cluster::start`]. With a
    /// [`CellSet`] the topology still declares every matching task (unowned
    /// ones stay empty — they never receive an event), but routing is
    /// filtered to owned cells, initial results and the sorting/aggregation
    /// stages run only for owned rows, and staged output from owned cells
    /// whose row is anchored elsewhere leaves through the per-row shuffle
    /// topic ([`invalidb_broker::shuffle_topic`]).
    pub fn start_with_host(
        broker: impl Into<BrokerHandle>,
        config: ClusterConfig,
        host: Arc<dyn CellHost>,
    ) -> Cluster {
        let broker: BrokerHandle = broker.into();
        let grid = GridShape::new(config.query_partitions, config.write_partitions);
        let clock = Arc::new(SystemClock::new());
        let decode_errors = Arc::new(AtomicU64::new(0));
        let complete = host.is_complete();

        let mut b = TopologyBuilder::<Event>::new().with_config(TopologyConfig {
            queue_capacity: config.queue_capacity,
            tick_interval: config.tick_interval,
            source_poll_timeout: Duration::from_millis(10),
            max_batch: config.max_batch,
        });

        // Ingress: decode opaque event-layer payloads into cluster events.
        b.add_source(
            "ingress",
            IngressSource {
                subscription: broker.subscribe(CLUSTER_TOPIC),
                decode_errors: Arc::clone(&decode_errors),
                metrics: config.metrics.clone(),
                identity: config.worker_identity.clone(),
            },
        );

        // Shuffle ingress (subset hosts only): staged output published by
        // *other* workers' matching cells for rows anchored here.
        if !complete {
            let subscriptions = (0..grid.query_partitions)
                .filter(|&qp| host.owns_row(qp))
                .map(|qp| broker.subscribe(&shuffle_topic(qp)))
                .collect::<Vec<_>>();
            b.add_source(
                "shuffle-ingress",
                ShuffleIngress {
                    subscriptions,
                    decode_errors: Arc::clone(&decode_errors),
                    metrics: config.metrics.clone(),
                },
            );
        }

        // Stateless ingestion tiers (§5.1): they "merely receive data items,
        // compute their partitions by hashing static attributes, and forward
        // the items to the corresponding matching nodes" — the hashing lives
        // in the grouping functions of their outgoing connections.
        b.add_bolt("query-ingest", config.query_ingest_nodes.max(1), |_| Box::new(Forwarder));
        b.add_bolt("write-ingest", config.write_ingest_nodes.max(1), |_| Box::new(Forwarder));

        // The QP × WP matching grid (filtering stage).
        {
            let config = config.clone();
            let clock = clock.clone();
            b.add_bolt("matching", grid.nodes(), move |task| {
                Box::new(MatchingNode::new(task, grid, config.clone(), clock.clone() as _))
            });
        }

        // Shuffle egress (subset hosts only): staged output from owned
        // cells whose row is anchored on another worker leaves through the
        // event layer here.
        if !complete {
            let config = config.clone();
            let broker = broker.clone();
            b.add_bolt("shuffle-egress", 1, move |_| {
                Box::new(ShuffleEgress { broker: broker.clone(), grid, config: config.clone() })
            });
        }

        // Sorting stage, partitioned by query.
        {
            let config = config.clone();
            let clock = clock.clone();
            b.add_bolt("sorting", config.sorting_tasks.max(1), move |task| {
                Box::new(SortingNode::new(task, config.clone(), clock.clone() as _))
            });
        }

        // Aggregation stage (extension, §8.1), partitioned by query.
        {
            let config = config.clone();
            let clock = clock.clone();
            b.add_bolt("aggregation", config.aggregation_tasks.max(1), move |_| {
                Box::new(AggregationNode::new(config.clone(), clock.clone() as _))
            });
        }

        // Notification sink.
        {
            let config = config.clone();
            let broker = broker.clone();
            let clock = clock.clone();
            b.add_bolt("notifier", 1, move |_| {
                Box::new(Notifier::new(broker.clone(), config.clone(), clock.clone() as _))
            });
        }

        // Split ingress traffic to the two ingestion tiers.
        b.connect(
            "ingress",
            "query-ingest",
            Grouping::direct(|e: &Event, n| match e {
                Event::Subscribe(req) => vec![partition_of(req.query_hash.0, n)],
                Event::Unsubscribe { query_hash, .. } | Event::ExtendTtl { query_hash, .. } => {
                    vec![partition_of(query_hash.0, n)]
                }
                _ => vec![],
            }),
        );
        b.connect(
            "ingress",
            "write-ingest",
            Grouping::direct(|e: &Event, n| match e {
                Event::Write(img) => vec![partition_of(img.key.stable_hash(), n)],
                _ => vec![],
            }),
        );

        // Query ingestion → notifier FIRST: emits route in declaration order,
        // so the initial result is enqueued at the (single, FIFO) notifier
        // before the matching/sorting nodes even receive the subscription —
        // no change notification can overtake the initial result. Only the
        // row owner emits the initial result: on a subset host, the same
        // subscription fans out to every worker with a cell in the row, and
        // exactly one of them must answer.
        {
            let host = Arc::clone(&host);
            let grid_rows = grid;
            b.connect(
                "query-ingest",
                "notifier",
                Grouping::direct(move |e: &Event, _n| match e {
                    Event::Subscribe(req)
                        if host.owns_row(grid_rows.query_partition(req.query_hash)) =>
                    {
                        vec![0]
                    }
                    _ => vec![],
                }),
            );
        }
        // Query ingestion → the grid row of the query partition, trimmed to
        // the cells hosted here.
        {
            let host = Arc::clone(&host);
            let grid_rows = grid;
            b.connect(
                "query-ingest",
                "matching",
                Grouping::direct(move |e: &Event, _n| {
                    let owned =
                        |tasks: Vec<usize>| tasks.into_iter().filter(|&t| host.owns_cell(t)).collect();
                    match e {
                        Event::Subscribe(req) => owned(grid_rows.tasks_for_query(req.query_hash)),
                        Event::Unsubscribe { query_hash, .. } | Event::ExtendTtl { query_hash, .. } => {
                            owned(grid_rows.tasks_for_query(*query_hash))
                        }
                        _ => vec![],
                    }
                }),
            );
        }
        // Query ingestion → sorting (sorted queries own exactly one task on
        // the worker anchoring their row).
        {
            let host = Arc::clone(&host);
            let grid_rows = grid;
            b.connect(
                "query-ingest",
                "sorting",
                Grouping::direct(move |e: &Event, n| match e {
                    Event::Subscribe(req)
                        if req.spec.needs_sorting_stage()
                            && host.owns_row(grid_rows.query_partition(req.query_hash)) =>
                    {
                        vec![partition_of(req.query_hash.0, n)]
                    }
                    Event::Unsubscribe { query_hash, .. } | Event::ExtendTtl { query_hash, .. }
                        if host.owns_row(grid_rows.query_partition(*query_hash)) =>
                    {
                        vec![partition_of(query_hash.0, n)]
                    }
                    _ => vec![],
                }),
            );
        }
        // Query ingestion → aggregation (aggregate queries own one task on
        // the worker anchoring their row).
        {
            let host = Arc::clone(&host);
            let grid_rows = grid;
            b.connect(
                "query-ingest",
                "aggregation",
                Grouping::direct(move |e: &Event, n| match e {
                    Event::Subscribe(req)
                        if req.spec.needs_aggregation_stage()
                            && host.owns_row(grid_rows.query_partition(req.query_hash)) =>
                    {
                        vec![partition_of(req.query_hash.0, n)]
                    }
                    Event::Unsubscribe { query_hash, .. } | Event::ExtendTtl { query_hash, .. }
                        if host.owns_row(grid_rows.query_partition(*query_hash)) =>
                    {
                        vec![partition_of(query_hash.0, n)]
                    }
                    _ => vec![],
                }),
            );
        }

        // Write ingestion → the grid column of the write partition, trimmed
        // to the cells hosted here.
        {
            let host = Arc::clone(&host);
            let grid_cols = grid;
            b.connect(
                "write-ingest",
                "matching",
                Grouping::direct(move |e: &Event, _n| match e {
                    Event::Write(img) => grid_cols
                        .tasks_for_key(&img.key)
                        .into_iter()
                        .filter(|&t| host.owns_cell(t))
                        .collect(),
                    _ => vec![],
                }),
            );
        }

        // Filtering stage → shuffle egress: staged output for rows anchored
        // on another worker crosses the event layer.
        if !complete {
            let host = Arc::clone(&host);
            let grid_rows = grid;
            b.connect(
                "matching",
                "shuffle-egress",
                Grouping::direct(move |e: &Event, _n| match e {
                    Event::FilterChange(fc)
                        if !host.owns_row(grid_rows.query_partition(fc.query_hash)) =>
                    {
                        vec![0]
                    }
                    _ => vec![],
                }),
            );
        }

        // Filtering stage → sorting stage (partitioned by query hash) and
        // → notifier (finished notifications of self-maintainable queries).
        {
            let host = Arc::clone(&host);
            let grid_rows = grid;
            b.connect(
                "matching",
                "sorting",
                Grouping::direct(move |e: &Event, n| match e {
                    Event::FilterChange(fc)
                        if host.owns_row(grid_rows.query_partition(fc.query_hash)) =>
                    {
                        vec![partition_of(fc.query_hash.0, n)]
                    }
                    _ => vec![],
                }),
            );
        }
        {
            let host = Arc::clone(&host);
            let grid_rows = grid;
            b.connect(
                "matching",
                "aggregation",
                Grouping::direct(move |e: &Event, n| match e {
                    Event::FilterChange(fc)
                        if host.owns_row(grid_rows.query_partition(fc.query_hash)) =>
                    {
                        vec![partition_of(fc.query_hash.0, n)]
                    }
                    _ => vec![],
                }),
            );
        }

        // Shuffle ingress → the row owner's sorting/aggregation stages.
        if !complete {
            b.connect(
                "shuffle-ingress",
                "sorting",
                Grouping::direct(|e: &Event, n| match e {
                    Event::FilterChange(fc) => vec![partition_of(fc.query_hash.0, n)],
                    _ => vec![],
                }),
            );
            b.connect(
                "shuffle-ingress",
                "aggregation",
                Grouping::direct(|e: &Event, n| match e {
                    Event::FilterChange(fc) => vec![partition_of(fc.query_hash.0, n)],
                    _ => vec![],
                }),
            );
        }
        b.connect(
            "matching",
            "notifier",
            Grouping::direct(|e: &Event, _n| match e {
                Event::Out(_) => vec![0],
                _ => vec![],
            }),
        );
        b.connect(
            "sorting",
            "notifier",
            Grouping::direct(|e: &Event, _n| match e {
                Event::Out(_) => vec![0],
                _ => vec![],
            }),
        );
        b.connect(
            "aggregation",
            "notifier",
            Grouping::direct(|e: &Event, _n| match e {
                Event::Out(_) => vec![0],
                _ => vec![],
            }),
        );

        let registry = config.metrics.clone();
        let topology = b.start();
        registry.attach_topology("cluster", Arc::clone(topology.metrics()));
        // Optional admin plane. A failed bind does not abort the cluster
        // (the pipeline is the product; the admin endpoint is a window into
        // it) but is recorded so it cannot go unnoticed.
        let admin = config.admin_addr.as_deref().and_then(|addr| {
            match AdminServer::bind(addr, registry.clone(), AdminConfig::default()) {
                Ok(server) => Some(server),
                Err(_) => {
                    registry.inc("admin.bind_errors");
                    None
                }
            }
        });
        Cluster { topology: Some(topology), grid, decode_errors, registry, admin }
    }

    /// The grid shape this cluster runs.
    pub fn grid(&self) -> GridShape {
        self.grid
    }

    /// A point-in-time snapshot of every cluster metric: per-stage latency
    /// histograms (when tracing is enabled), matched/filtered/dropped
    /// counters, per-partition gauges, and the topology's per-component
    /// processed/emitted counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The live registry this cluster reports into (shared with whatever
    /// was passed via [`ClusterConfig::builder`]'s `metrics` setter).
    pub fn registry(&self) -> MetricsRegistry {
        self.registry.clone()
    }

    /// Raw topology metrics (per-component processed/emitted counters).
    pub fn topology_metrics(&self) -> Arc<TopologyMetrics> {
        Arc::clone(self.topology.as_ref().expect("running").metrics())
    }

    /// Count of event-layer payloads that failed to decode.
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors.load(Ordering::Relaxed)
    }

    /// The slow-query log: per-query cost accounting fed by the matching
    /// and sorting stages. `top(k)` returns the heaviest queries.
    pub fn slow_queries(&self) -> SlowQueryLog {
        self.registry.slow_queries()
    }

    /// The flight recorder: a bounded ring of recent structured pipeline
    /// events (reconnects, drops, decode errors, health transitions).
    pub fn flight(&self) -> FlightRecorder {
        self.registry.flight()
    }

    /// Where the admin endpoint actually listens (useful with a `:0` bind),
    /// or `None` when [`ClusterConfig::admin_addr`] was unset or the bind
    /// failed (counted as `admin.bind_errors`).
    pub fn admin_addr(&self) -> Option<std::net::SocketAddr> {
        self.admin.as_ref().map(|a| a.local_addr())
    }

    /// The hosted admin server, when one is running.
    pub fn admin(&self) -> Option<&AdminServer> {
        self.admin.as_ref()
    }

    /// Stops the cluster, draining in-flight work.
    pub fn shutdown(mut self) {
        if let Some(mut admin) = self.admin.take() {
            admin.shutdown();
        }
        if let Some(t) = self.topology.take() {
            t.shutdown();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        if let Some(t) = self.topology.take() {
            t.shutdown();
        }
    }
}

/// Decodes event-layer payloads into topology events.
struct IngressSource {
    subscription: invalidb_broker::Subscription,
    decode_errors: Arc<AtomicU64>,
    metrics: MetricsRegistry,
    /// Worker identity for trace stamps in multi-process deployments.
    identity: Option<crate::config::WorkerIdentity>,
}

impl Source<Event> for IngressSource {
    fn poll(&mut self, timeout: Duration) -> Vec<Event> {
        let first = match self.subscription.recv_timeout(timeout) {
            Some(payload) => payload,
            None => return Vec::new(),
        };
        let mut out = Vec::with_capacity(8);
        // Binary write envelopes take the zero-copy lazy path (only the
        // `key`/`doc`/`trace` subtrees are materialized); everything else
        // falls back to the eager decoder with identical error accounting.
        let mut decode = |payload: bytes::Bytes| match crate::ingest::decode_cluster_payload(
            &payload,
        ) {
            Some(mut msg) => {
                // Sampled traces get their ingestion stamp the moment the
                // envelope is decoded off the event layer.
                if let ClusterMessage::Write(img) = &mut msg {
                    if let Some(trace) = img.trace.as_mut() {
                        match &self.identity {
                            Some(id) => id.stamp(trace, Stage::Ingestion),
                            None => trace.stamp(Stage::Ingestion),
                        }
                        self.metrics.inc("ingress.traced_writes");
                    }
                }
                out.push(msg.into());
            }
            None => {
                self.decode_errors.fetch_add(1, Ordering::Relaxed);
                self.metrics.inc("ingress.decode_errors");
            }
        };
        decode(first);
        while let Some(payload) = self.subscription.try_recv() {
            decode(payload);
        }
        out
    }
}

impl From<ClusterMessage> for Event {
    fn from(msg: ClusterMessage) -> Self {
        match msg {
            ClusterMessage::Subscribe(req) => Event::Subscribe(Arc::new(req)),
            ClusterMessage::Unsubscribe { tenant, subscription, query_hash } => {
                Event::Unsubscribe { tenant, subscription, query_hash }
            }
            ClusterMessage::ExtendTtl { tenant, subscription, query_hash, ttl_micros } => {
                Event::ExtendTtl { tenant, subscription, query_hash, ttl_micros }
            }
            ClusterMessage::Write(img) => Event::Write(Arc::new(img)),
        }
    }
}

/// Stateless pass-through bolt (ingestion tier).
struct Forwarder;

impl Bolt<Event> for Forwarder {
    fn execute(&mut self, input: Event, ctx: &mut BoltContext<'_, Event>) {
        ctx.emit(input);
    }
}

/// Publishes staged output for rows anchored on other workers to the
/// per-row shuffle topic.
struct ShuffleEgress {
    broker: BrokerHandle,
    grid: GridShape,
    config: ClusterConfig,
}

impl Bolt<Event> for ShuffleEgress {
    fn execute(&mut self, input: Event, _ctx: &mut BoltContext<'_, Event>) {
        if let Event::FilterChange(fc) = input {
            let qp = self.grid.query_partition(fc.query_hash);
            let payload = self.config.wire_codec.encode(&fc.to_document());
            self.broker.publish(&shuffle_topic(qp), payload);
            self.config.metrics.inc("shuffle.egress");
        }
    }
}

/// Receives staged output published by other workers for rows anchored
/// here and re-injects it into the local topology.
struct ShuffleIngress {
    subscriptions: Vec<invalidb_broker::Subscription>,
    decode_errors: Arc<AtomicU64>,
    metrics: MetricsRegistry,
}

impl Source<Event> for ShuffleIngress {
    fn poll(&mut self, timeout: Duration) -> Vec<Event> {
        let mut out = Vec::new();
        if self.subscriptions.is_empty() {
            std::thread::sleep(timeout);
            return out;
        }
        let deadline = Instant::now() + timeout;
        loop {
            for sub in &self.subscriptions {
                while let Some(payload) = sub.try_recv() {
                    match invalidb_json::payload_to_document(&payload)
                        .ok()
                        .and_then(|d| FilterChange::from_document(&d).ok())
                    {
                        Some(fc) => {
                            self.metrics.inc("shuffle.ingress");
                            out.push(Event::FilterChange(Arc::new(fc)));
                        }
                        None => {
                            self.decode_errors.fetch_add(1, Ordering::Relaxed);
                            self.metrics.inc("shuffle.decode_errors");
                        }
                    }
                }
            }
            if !out.is_empty() || Instant::now() >= deadline {
                return out;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}
