//! The matching node — one cell of the QP × WP filtering-stage grid (§5.1).
//!
//! A matching node at grid coordinate `(qp, wp)` holds the queries of query
//! partition `qp` and sees the after-images of write partition `wp`. For
//! every incoming after-image it evaluates all of its queries, compares the
//! new matching status against the former one, and emits the transition:
//!
//! * unsorted filter queries are self-maintainable — the node emits finished
//!   change notifications (one per subscription) straight to the notifier;
//! * sorted queries emit [`FilterChange`]s to the sorting stage, and only
//!   for items that match or just ceased matching — everything else is
//!   filtered out here, slashing downstream throughput (§5.2).
//!
//! The node also implements **write-stream retention** and **staleness
//! avoidance**: received after-images are buffered for a configurable time
//! and replayed against newly subscribed queries (fixing the
//! write-subscription race), and any write older than the newest seen
//! version of the same record is dropped (§5.1).

use crate::config::{ClusterConfig, WorkerIdentity};
use crate::event::{Event, FilterChange, FilterChangeKind, OutMsg, WriteBatch};
use crate::query_index::QueryIndex;
use invalidb_common::trace::now_micros;
use invalidb_common::{
    AfterImage, ChangeItem, Clock, GridCoord, GridShape, Key, MatchType, Notification, NotificationKind,
    QueryHash, ResultItem, Stage, SubscriptionId, SubscriptionRequest, TenantId, Timestamp,
    TraceContext, Version,
};
use invalidb_obs::{MetricsRegistry, SlowQueryScratch};
use invalidb_query::{PreparedAtom, PreparedQuery};
use invalidb_stream::{Bolt, BoltContext};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

/// Key identifying a record across tenants and collections.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RecordId {
    tenant: TenantId,
    collection: String,
    key: Key,
}

struct SubState {
    tenant: TenantId,
    expires_at: Timestamp,
}

/// Shared predicate evaluation (SharedDB-style): atomic predicate results
/// are memoized per write within one evaluation run, keyed by the atom's
/// hash-consed identity. A predicate shared by a thousand conjunctive
/// queries is evaluated once per write, not a thousand times.
#[derive(Default)]
struct PredCache {
    /// (predicate hash, write index within the run) → result.
    map: HashMap<(u64, u32), bool>,
    hits: u64,
}

impl PredCache {
    /// Starts a new run: prior writes' results no longer apply. Capacity is
    /// retained, so the steady state allocates nothing.
    fn begin_run(&mut self) {
        self.map.clear();
    }

    /// The conjunction of `atoms` over `doc`, memoized per (atom, write).
    /// Exactly equivalent to `prepared.matches(doc)` by the
    /// [`invalidb_query::PreparedQuery::conjuncts`] contract.
    fn eval_all(&mut self, atoms: &[PreparedAtom], write_idx: u32, doc: &invalidb_common::Document) -> bool {
        atoms.iter().all(|a| match self.map.entry((a.hash().0, write_idx)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits += 1;
                *e.get()
            }
            std::collections::hash_map::Entry::Vacant(e) => *e.insert(a.matches(doc)),
        })
    }

    fn take_hits(&mut self) -> u64 {
        std::mem::take(&mut self.hits)
    }
}

/// One active query on this node (shared by all its subscriptions).
struct QueryGroup {
    tenant: TenantId,
    collection: String,
    /// Human-readable rendering of the query spec, captured at subscribe
    /// time for the slow-query log.
    spec_display: String,
    prepared: Arc<dyn PreparedQuery>,
    /// True when downstream stages (sorting/aggregation) consume this
    /// query's transitions; false for self-maintainable filter queries.
    staged: bool,
    /// This node's partition of the currently matching keys (filtering-stage
    /// result state). For sorted queries this is the *matching status* of
    /// keys within the bootstrap horizon, not the client-visible result.
    result: HashMap<Key, Version>,
    subscriptions: HashMap<SubscriptionId, SubState>,
}

/// The matching-node bolt.
pub struct MatchingNode {
    coord: GridCoord,
    grid: GridShape,
    config: ClusterConfig,
    clock: Arc<dyn Clock>,
    queries: HashMap<(TenantId, QueryHash), QueryGroup>,
    /// Multi-query index per (tenant, collection): maps a write to the
    /// candidate queries instead of evaluating all of them (thesis's
    /// multi-query optimization; disable via `ClusterConfig`).
    indexes: HashMap<(TenantId, String), QueryIndex<QueryHash>>,
    /// Inverted result membership: which queries currently contain a key.
    /// Needed alongside the index because an update can move a record *out*
    /// of a query's range — the new value no longer stabs that query.
    containing: HashMap<RecordId, Vec<QueryHash>>,
    /// Retained after-images, oldest first (§5.1 write-stream retention).
    retention: VecDeque<(Timestamp, Arc<AfterImage>)>,
    /// Newest seen version per record (staleness avoidance).
    latest_versions: HashMap<RecordId, Version>,
    /// Observability: dropped stale writes.
    stale_dropped: u64,
    /// Peak ingestion lag (write origin timestamp to matching evaluation)
    /// since the last tick, microseconds. Published as a gauge on tick.
    ingest_lag_us: u64,
    /// Locally accumulated slow-query charges, flushed to the shared log
    /// on tick so the per-evaluation hot path never takes its lock.
    slow_scratch: SlowQueryScratch,
    /// Reused mini-batch buffer for [`Bolt::execute_batch`] turns.
    write_scratch: WriteBatch,
    /// Shared predicate evaluation cache (cleared per evaluation run).
    pred_cache: PredCache,
    /// Reused candidate-pair buffer for the batched index probe.
    cand_pairs: Vec<(QueryHash, u32)>,
    /// Cluster-shared `matching.index.*` series, resolved once so the tick
    /// path never touches the registry maps. Gauges are maintained by
    /// publishing this cell's delta since the last tick — the registry
    /// value is the sum over all cells of the process.
    metric_indexed: Arc<AtomicU64>,
    metric_scanned: Arc<AtomicU64>,
    metric_eq_hits: Arc<AtomicU64>,
    metric_pred_hits: Arc<AtomicU64>,
    last_indexed: u64,
    last_scanned: u64,
}

impl MatchingNode {
    /// Creates the node for task index `task` in the grid.
    pub fn new(task: usize, grid: GridShape, config: ClusterConfig, clock: Arc<dyn Clock>) -> Self {
        let metric_indexed = config.metrics.gauge("matching.index.indexed_queries");
        let metric_scanned = config.metrics.gauge("matching.index.scanned_queries");
        let metric_eq_hits = config.metrics.counter("matching.index.eq_lane_hits");
        let metric_pred_hits = config.metrics.counter("matching.index.pred_cache_hits");
        Self {
            coord: grid.coord_of(task),
            grid,
            config,
            clock,
            queries: HashMap::new(),
            indexes: HashMap::new(),
            containing: HashMap::new(),
            retention: VecDeque::new(),
            latest_versions: HashMap::new(),
            stale_dropped: 0,
            ingest_lag_us: 0,
            slow_scratch: SlowQueryScratch::new(),
            write_scratch: WriteBatch::default(),
            pred_cache: PredCache::default(),
            cand_pairs: Vec::new(),
            metric_indexed,
            metric_scanned,
            metric_eq_hits,
            metric_pred_hits,
            last_indexed: 0,
            last_scanned: 0,
        }
    }

    fn handle_subscribe(&mut self, req: &SubscriptionRequest, ctx: &mut BoltContext<'_, Event>) {
        let now = self.clock.now();
        let expires_at = now.after(std::time::Duration::from_micros(req.ttl_micros));
        let group_key = (req.tenant.clone(), req.query_hash);
        if let Some(group) = self.queries.get_mut(&group_key) {
            group
                .subscriptions
                .insert(req.subscription, SubState { tenant: req.tenant.clone(), expires_at });
            return;
        }
        let prepared = match self.config.engine.prepare(&req.spec) {
            Ok(p) => p,
            Err(e) => {
                // Unparseable query: report an error notification so the
                // subscription does not dangle silently.
                ctx.emit(Event::Out(Arc::new(OutMsg::Notify(Notification {
                    tenant: req.tenant.clone(),
                    subscription: req.subscription,
                    kind: NotificationKind::Error(invalidb_common::MaintenanceError {
                        reason: format!("query rejected: {e}"),
                    }),
                    caused_by_write_at: 0,
                    trace: None,
                }))));
                return;
            }
        };
        // Seed this node's result slice: only keys of *our* write partition
        // ("every node receives only a partition of the result", §5.1).
        let mut result = HashMap::new();
        for item in &req.initial {
            if self.grid.write_partition(&item.key) == self.coord.wp {
                result.insert(item.key.clone(), item.version);
            }
        }
        let mut group = QueryGroup {
            tenant: req.tenant.clone(),
            collection: req.spec.collection.clone(),
            spec_display: req.spec.to_string(),
            prepared,
            staged: req.spec.needs_sorting_stage() || req.spec.needs_aggregation_stage(),
            result,
            subscriptions: HashMap::new(),
        };
        group
            .subscriptions
            .insert(req.subscription, SubState { tenant: req.tenant.clone(), expires_at });
        // Replay retained writes against the new query: closes the
        // write-subscription race (§5.1). Writes already reflected in the
        // initial result are skipped by the version guard.
        let retained: Vec<Arc<AfterImage>> = self
            .retention
            .iter()
            .filter(|(_, img)| img.tenant == group.tenant && img.collection == group.collection)
            .map(|(_, img)| Arc::clone(img))
            .collect();
        let hash = req.query_hash;
        if self.config.multi_query_index {
            self.indexes
                .entry((req.tenant.clone(), req.spec.collection.clone()))
                .or_default()
                .insert(hash, &req.spec.filter);
            for key in group.result.keys() {
                let record = RecordId {
                    tenant: group.tenant.clone(),
                    collection: group.collection.clone(),
                    key: key.clone(),
                };
                self.containing.entry(record).or_default().push(hash);
            }
        }
        for img in retained {
            self.pred_cache.begin_run();
            let transition = Self::match_against(
                &mut group,
                hash,
                &img,
                &self.config.metrics,
                self.config.worker_identity.as_ref(),
                &mut self.slow_scratch,
                &mut self.pred_cache,
                0,
                ctx,
            );
            self.note_transition(&img, hash, transition);
        }
        self.queries.insert(group_key, group);
    }

    /// Maintains the inverted result-membership map after a transition.
    fn note_transition(&mut self, img: &AfterImage, hash: QueryHash, kind: Option<FilterChangeKind>) {
        if !self.config.multi_query_index {
            return;
        }
        let record = RecordId {
            tenant: img.tenant.clone(),
            collection: img.collection.clone(),
            key: img.key.clone(),
        };
        match kind {
            Some(FilterChangeKind::Add) => {
                let list = self.containing.entry(record).or_default();
                if !list.contains(&hash) {
                    list.push(hash);
                }
            }
            Some(FilterChangeKind::Remove) => {
                if let Some(list) = self.containing.get_mut(&record) {
                    list.retain(|h| *h != hash);
                    if list.is_empty() {
                        self.containing.remove(&record);
                    }
                }
            }
            _ => {}
        }
    }

    fn handle_write(&mut self, img: &Arc<AfterImage>, ctx: &mut BoltContext<'_, Event>) {
        // Single writes are a batch of one: the same code path computes
        // exactly the serial candidates (index stab ∪ containing holders).
        self.handle_write_batch(std::slice::from_ref(img), ctx);
    }

    /// Batched write evaluation — the mini-batch tentpole. Produces, per
    /// query and therefore per subscription, byte-identical notifications
    /// in the same order as feeding the writes one by one; only the
    /// cross-query interleaving may differ.
    ///
    /// Three phases:
    /// 1. sequential admission (staleness avoidance, retention, lag),
    ///    exactly as the serial path;
    /// 2. group surviving writes by `(tenant, collection)` and split each
    ///    group into distinct-key runs — within a run the `containing`
    ///    snapshot equals every serial per-write lookup, so one batched
    ///    index probe yields exactly the serial candidate sets;
    /// 3. evaluate each candidate query over its columnar slice of the
    ///    run (writes in arrival order), paying the query-table lookup,
    ///    clock reads and slow-query charge once per query per run
    ///    instead of once per (write, query) pair.
    fn handle_write_batch(&mut self, imgs: &[Arc<AfterImage>], ctx: &mut BoltContext<'_, Event>) {
        // Phase 1 — admission, in arrival order.
        let mut live: Vec<&Arc<AfterImage>> = Vec::with_capacity(imgs.len());
        for img in imgs {
            let record = RecordId {
                tenant: img.tenant.clone(),
                collection: img.collection.clone(),
                key: img.key.clone(),
            };
            // Staleness avoidance: drop anything not newer than what we've
            // seen.
            match self.latest_versions.get(&record) {
                Some(&seen) if img.version <= seen => {
                    self.stale_dropped += 1;
                    self.config.metrics.inc("matching.dropped_stale");
                    continue;
                }
                _ => {}
            }
            self.latest_versions.insert(record, img.version);
            self.retention.push_back((self.clock.now(), Arc::clone(img)));
            // Ingestion lag: how far behind the write's origin timestamp
            // this cell is running. Tracked as a peak here, published on
            // tick.
            let lag = now_micros().saturating_sub(img.written_at);
            self.ingest_lag_us = self.ingest_lag_us.max(lag);
            if let Some(cost) = self.config.synthetic_match_cost {
                // Emulates the paper's CPU throttling so saturation appears
                // at laptop-scale workloads; busy-wait per write to consume
                // executor time.
                let until = std::time::Instant::now() + cost * self.queries.len().max(1) as u32;
                while std::time::Instant::now() < until {
                    std::hint::spin_loop();
                }
            }
            live.push(img);
        }
        if live.is_empty() {
            return;
        }
        if live.len() > 1 {
            self.config.metrics.inc("matching.write_batches");
        }
        if !self.config.multi_query_index {
            // Unindexed fallback: every same-(tenant, collection) query is
            // evaluated per write, as before — the shared predicate cache
            // still collapses atoms repeated across those queries.
            for img in live {
                self.pred_cache.begin_run();
                for ((_, hash), group) in self.queries.iter_mut() {
                    if group.tenant == img.tenant && group.collection == img.collection {
                        Self::match_against(
                            group,
                            *hash,
                            img,
                            &self.config.metrics,
                            self.config.worker_identity.as_ref(),
                            &mut self.slow_scratch,
                            &mut self.pred_cache,
                            0,
                            ctx,
                        );
                    }
                }
            }
            return;
        }
        // Phase 2 — group by (tenant, collection), preserving arrival order
        // within each group. A query belongs to exactly one group, so the
        // order of writes any single query observes is unchanged.
        let mut groups: Vec<(&TenantId, &str, Vec<&Arc<AfterImage>>)> = Vec::new();
        for img in live {
            match groups.iter_mut().find(|(t, c, _)| **t == img.tenant && *c == img.collection) {
                Some((_, _, writes)) => writes.push(img),
                None => groups.push((&img.tenant, &img.collection, vec![img])),
            }
        }
        for (tenant, collection, writes) in groups {
            // Distinct-key runs: an evaluation can move a record in or out
            // of a query's result, which changes the holder candidates of a
            // *later write to the same record*. Splitting at the first
            // repeated key keeps every run's `containing` snapshot exact.
            let mut start = 0;
            let mut seen: std::collections::HashSet<&Key> = std::collections::HashSet::new();
            for i in 0..writes.len() {
                if !seen.insert(&writes[i].key) {
                    self.process_run(tenant, collection, &writes[start..i], ctx);
                    seen.clear();
                    seen.insert(&writes[i].key);
                    start = i;
                }
            }
            self.process_run(tenant, collection, &writes[start..], ctx);
        }
    }

    /// Phase 3 of [`MatchingNode::handle_write_batch`]: one distinct-key
    /// run of one (tenant, collection) group — one index probe, then each
    /// candidate query's predicate over its columnar slice of the run.
    fn process_run(
        &mut self,
        tenant: &TenantId,
        collection: &str,
        writes: &[&Arc<AfterImage>],
        ctx: &mut BoltContext<'_, Event>,
    ) {
        if writes.is_empty() {
            return;
        }
        let index = match self.indexes.get_mut(&(tenant.clone(), collection.to_owned())) {
            Some(index) => index,
            None => return, // no queries for this (tenant, collection)
        };
        let docs: Vec<Option<&invalidb_common::Document>> =
            writes.iter().map(|img| img.doc.as_ref()).collect();
        let mut pairs = std::mem::take(&mut self.cand_pairs);
        index.candidates_batch(&docs, &mut pairs);
        // Holder candidates: queries whose result currently contains the
        // record (covers moves out of range and deletes). Keys are distinct
        // within a run, so this snapshot equals the serial per-write lookup.
        for (w, img) in writes.iter().enumerate() {
            let record = RecordId {
                tenant: img.tenant.clone(),
                collection: img.collection.clone(),
                key: img.key.clone(),
            };
            if let Some(holders) = self.containing.get(&record) {
                pairs.extend(holders.iter().map(|h| (*h, w as u32)));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        // Columnar evaluation: pairs are grouped by query hash with write
        // indices ascending, so each query sees its writes in arrival
        // order — per-subscription output is byte-identical to serial.
        // One predicate-memo run spans the whole run: a memoized atom
        // result is shared across every candidate query of each write.
        self.pred_cache.begin_run();
        let mut transitions: Vec<(u32, FilterChangeKind)> = Vec::new();
        let mut i = 0;
        while i < pairs.len() {
            let hash = pairs[i].0;
            let mut j = i + 1;
            while j < pairs.len() && pairs[j].0 == hash {
                j += 1;
            }
            match self.queries.get_mut(&(tenant.clone(), hash)) {
                Some(group) => {
                    let started = std::time::Instant::now();
                    for k in i..j {
                        let img = writes[pairs[k].1 as usize];
                        if let Some(kind) = Self::evaluate(
                            group,
                            hash,
                            img,
                            &self.config.metrics,
                            self.config.worker_identity.as_ref(),
                            &mut self.pred_cache,
                            pairs[k].1,
                            ctx,
                        ) {
                            transitions.push((pairs[k].1, kind));
                        }
                    }
                    self.slow_scratch.charge_n(
                        &group.tenant.0,
                        hash.0,
                        || group.spec_display.clone(),
                        (j - i) as u64,
                        started.elapsed().as_micros() as u64,
                    );
                }
                None => {
                    // The query was cancelled/expired; lazily purge its
                    // membership entries so `containing` does not leak.
                    for k in i..j {
                        let img = writes[pairs[k].1 as usize];
                        let record = RecordId {
                            tenant: img.tenant.clone(),
                            collection: img.collection.clone(),
                            key: img.key.clone(),
                        };
                        if let Some(list) = self.containing.get_mut(&record) {
                            list.retain(|h| *h != hash);
                            if list.is_empty() {
                                self.containing.remove(&record);
                            }
                        }
                    }
                }
            }
            for (w, kind) in transitions.drain(..) {
                self.note_transition(writes[w as usize], hash, Some(kind));
            }
            i = j;
        }
        pairs.clear();
        self.cand_pairs = pairs;
    }

    /// Evaluates one write against one query, charging the wall-clock cost
    /// to this node's local slow-query scratch (flushed to the shared log
    /// on tick) so operators can see which query eats the grid.
    fn match_against(
        group: &mut QueryGroup,
        hash: QueryHash,
        img: &AfterImage,
        metrics: &MetricsRegistry,
        identity: Option<&WorkerIdentity>,
        scratch: &mut SlowQueryScratch,
        cache: &mut PredCache,
        write_idx: u32,
        ctx: &mut BoltContext<'_, Event>,
    ) -> Option<FilterChangeKind> {
        let started = std::time::Instant::now();
        let kind = Self::evaluate(group, hash, img, metrics, identity, cache, write_idx, ctx);
        scratch.charge(
            &group.tenant.0,
            hash.0,
            || group.spec_display.clone(),
            started.elapsed().as_micros() as u64,
        );
        kind
    }

    /// Core filtering-stage transition logic. Returns the transition kind
    /// (None when the write was irrelevant or stale for this query).
    fn evaluate(
        group: &mut QueryGroup,
        hash: QueryHash,
        img: &AfterImage,
        metrics: &MetricsRegistry,
        identity: Option<&WorkerIdentity>,
        cache: &mut PredCache,
        write_idx: u32,
        ctx: &mut BoltContext<'_, Event>,
    ) -> Option<FilterChangeKind> {
        let old = group.result.get(&img.key).copied();
        if let Some(old_version) = old {
            if img.version <= old_version {
                return None; // stale relative to what this query already reflects
            }
        }
        // Shared predicate evaluation: conjunctive queries resolve each
        // atom through the per-run memo (identical result to
        // `prepared.matches` by the `conjuncts` contract); queries that
        // opt out of decomposition evaluate whole.
        let matches_now = img.doc.as_ref().is_some_and(|d| match group.prepared.conjuncts() {
            Some(atoms) => cache.eval_all(atoms, write_idx, d),
            None => group.prepared.matches(d),
        });
        let kind = match (old.is_some(), matches_now) {
            (false, true) => FilterChangeKind::Add,
            (true, true) => FilterChangeKind::Change,
            (true, false) => FilterChangeKind::Remove,
            (false, false) => {
                metrics.inc("matching.filtered");
                return None; // irrelevant write: filtered out
            }
        };
        metrics.inc("matching.matched");
        match kind {
            FilterChangeKind::Remove => {
                group.result.remove(&img.key);
            }
            _ => {
                group.result.insert(img.key.clone(), img.version);
            }
        }
        // Stamp the filtering stage on sampled traces; the clone touches
        // only traced writes, so the unsampled fast path stays allocation
        // free. On a workerd host the stamp also names the worker and its
        // assignment epoch, so a cross-process trace identifies the cell.
        let trace: Option<TraceContext> = img.trace.clone().map(|mut t| {
            match identity {
                Some(id) => id.stamp(&mut t, Stage::Matching),
                None => t.stamp(Stage::Matching),
            }
            t
        });
        if group.staged {
            // Sorted/aggregate queries: pass the transition downstream.
            ctx.emit(Event::FilterChange(Arc::new(FilterChange {
                tenant: group.tenant.clone(),
                query_hash: hash,
                kind,
                key: img.key.clone(),
                version: img.version,
                doc: img.doc.clone(),
                written_at: img.written_at,
                trace,
            })));
        } else {
            // Self-maintainable queries: emit finished notifications.
            let match_type = match kind {
                FilterChangeKind::Add => MatchType::Add,
                FilterChangeKind::Change => MatchType::Change,
                FilterChangeKind::Remove => MatchType::Remove,
            };
            for (sub, state) in &group.subscriptions {
                ctx.emit(Event::Out(Arc::new(OutMsg::Notify(Notification {
                    tenant: state.tenant.clone(),
                    subscription: *sub,
                    kind: NotificationKind::Change(ChangeItem {
                        match_type,
                        item: ResultItem {
                            key: img.key.clone(),
                            version: img.version,
                            doc: img.doc.clone(),
                            index: None,
                        },
                        old_index: None,
                    }),
                    caused_by_write_at: img.written_at,
                    trace: trace.clone(),
                }))));
            }
        }
        Some(kind)
    }

    fn handle_unsubscribe(
        &mut self,
        tenant: &TenantId,
        query_hash: QueryHash,
        subscription: SubscriptionId,
    ) {
        if let Some(group) = self.queries.get_mut(&(tenant.clone(), query_hash)) {
            group.subscriptions.remove(&subscription);
            if group.subscriptions.is_empty() {
                // Deactivated queries stop consuming resources (§5).
                let collection = group.collection.clone();
                self.queries.remove(&(tenant.clone(), query_hash));
                if let Some(index) = self.indexes.get_mut(&(tenant.clone(), collection)) {
                    index.remove(query_hash);
                }
            }
        }
    }

    fn handle_extend_ttl(
        &mut self,
        tenant: &TenantId,
        query_hash: QueryHash,
        subscription: SubscriptionId,
        ttl_micros: u64,
    ) {
        let now = self.clock.now();
        if let Some(group) = self.queries.get_mut(&(tenant.clone(), query_hash)) {
            if let Some(sub) = group.subscriptions.get_mut(&subscription) {
                sub.expires_at = now.after(std::time::Duration::from_micros(ttl_micros));
            }
        }
    }

    fn expire(&mut self) {
        let now = self.clock.now();
        // TTL enforcement: drop expired subscriptions, then empty groups.
        let indexes = &mut self.indexes;
        self.queries.retain(|(tenant, hash), group| {
            group.subscriptions.retain(|_, sub| sub.expires_at > now);
            let keep = !group.subscriptions.is_empty();
            if !keep {
                if let Some(index) = indexes.get_mut(&(tenant.clone(), group.collection.clone())) {
                    index.remove(*hash);
                }
            }
            keep
        });
        // Retention trimming.
        let horizon = self.config.retention;
        while let Some((t, _)) = self.retention.front() {
            if now.since(*t) > horizon {
                let (_, img) = self.retention.pop_front().expect("peeked");
                // Forget latest-version entries only when they refer to the
                // trimmed write (a newer one may have refreshed the record).
                let record = RecordId {
                    tenant: img.tenant.clone(),
                    collection: img.collection.clone(),
                    key: img.key.clone(),
                };
                if self.latest_versions.get(&record) == Some(&img.version) {
                    self.latest_versions.remove(&record);
                }
            } else {
                break;
            }
        }
    }

    /// Number of active query groups (tests/metrics).
    pub fn active_queries(&self) -> usize {
        self.queries.len()
    }

    /// Number of retained after-images (tests/metrics).
    pub fn retained_writes(&self) -> usize {
        self.retention.len()
    }

    /// Count of writes dropped by staleness avoidance.
    pub fn stale_dropped(&self) -> u64 {
        self.stale_dropped
    }
}

impl Bolt<Event> for MatchingNode {
    fn execute(&mut self, input: Event, ctx: &mut BoltContext<'_, Event>) {
        match input {
            Event::Subscribe(req) => self.handle_subscribe(&req, ctx),
            Event::Write(img) => self.handle_write(&img, ctx),
            Event::Unsubscribe { tenant, query_hash, subscription } => {
                self.handle_unsubscribe(&tenant, query_hash, subscription)
            }
            Event::ExtendTtl { tenant, query_hash, subscription, ttl_micros } => {
                self.handle_extend_ttl(&tenant, query_hash, subscription, ttl_micros)
            }
            // Not addressed to the filtering stage.
            Event::FilterChange(_) | Event::Out(_) => {}
        }
    }

    fn execute_batch(&mut self, inputs: &mut Vec<Event>, ctx: &mut BoltContext<'_, Event>) {
        // Regroup the turn's contiguous write runs into a `WriteBatch` so
        // each run shares one index probe and one per-query dispatch.
        // Control events flush the pending run first: a subscribe between
        // two writes must observe exactly the writes before it.
        let mut batch = std::mem::take(&mut self.write_scratch);
        for event in inputs.drain(..) {
            match event {
                Event::Write(img) => batch.push(img),
                other => {
                    if !batch.is_empty() {
                        self.handle_write_batch(batch.writes(), ctx);
                        batch.clear();
                    }
                    self.execute(other, ctx);
                }
            }
        }
        if !batch.is_empty() {
            self.handle_write_batch(batch.writes(), ctx);
            batch.clear();
        }
        self.write_scratch = batch;
    }

    fn tick(&mut self, _ctx: &mut BoltContext<'_, Event>) {
        self.expire();
        self.slow_scratch.flush(&self.config.metrics.slow_queries());
        // Per-partition gauges, refreshed once per tick so the hot write
        // path never touches the registry maps.
        let cell = format!("matching.{}x{}", self.coord.qp, self.coord.wp);
        self.config.metrics.set_gauge(&format!("{cell}.active_queries"), self.queries.len() as u64);
        self.config.metrics.set_gauge(&format!("{cell}.retained_writes"), self.retention.len() as u64);
        self.config.metrics.set_gauge(&format!("{cell}.ingest_lag_us"), self.ingest_lag_us);
        self.ingest_lag_us = 0;
        // Cluster-shared index/sharing series. The gauges are summed over
        // all cells, so each cell publishes its delta since the last tick;
        // the hit counters are drained.
        let mut indexed = 0u64;
        let mut scanned = 0u64;
        let mut eq_hits = 0u64;
        for index in self.indexes.values_mut() {
            indexed += index.indexed_len() as u64;
            scanned += index.scan_len() as u64;
            eq_hits += index.take_eq_lane_hits();
        }
        publish_gauge_delta(&self.metric_indexed, &mut self.last_indexed, indexed);
        publish_gauge_delta(&self.metric_scanned, &mut self.last_scanned, scanned);
        if eq_hits > 0 {
            self.metric_eq_hits.fetch_add(eq_hits, AtomicOrdering::Relaxed);
        }
        let pred_hits = self.pred_cache.take_hits();
        if pred_hits > 0 {
            self.metric_pred_hits.fetch_add(pred_hits, AtomicOrdering::Relaxed);
        }
    }
}

/// Moves a cluster-shared gauge by this publisher's delta since its last
/// publication: the gauge value stays the sum over all publishers.
pub(crate) fn publish_gauge_delta(gauge: &AtomicU64, last: &mut u64, now: u64) {
    if now >= *last {
        let delta = now - *last;
        if delta > 0 {
            gauge.fetch_add(delta, AtomicOrdering::Relaxed);
        }
    } else {
        gauge.fetch_sub(*last - now, AtomicOrdering::Relaxed);
    }
    *last = now;
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::{doc, MockClock, QuerySpec, SortDirection};
    use invalidb_stream::{Grouping, Source, TopologyBuilder};
    use parking_lot::Mutex;
    use std::time::Duration;

    /// Runs a single matching node standalone inside a tiny topology and
    /// collects its emissions.
    struct Harness {
        tx: crossbeam::channel::Sender<Event>,
        out: Arc<Mutex<Vec<Event>>>,
        clock: MockClock,
        _topo: invalidb_stream::RunningTopology,
    }

    struct ChanSource(crossbeam::channel::Receiver<Event>);
    impl Source<Event> for ChanSource {
        fn poll(&mut self, timeout: Duration) -> Vec<Event> {
            match self.0.recv_timeout(timeout) {
                Ok(e) => {
                    let mut out = vec![e];
                    out.extend(self.0.try_iter());
                    out
                }
                Err(_) => Vec::new(),
            }
        }
    }

    struct Collector(Arc<Mutex<Vec<Event>>>);
    impl Bolt<Event> for Collector {
        fn execute(&mut self, input: Event, _ctx: &mut BoltContext<'_, Event>) {
            self.0.lock().push(input);
        }
    }

    fn harness(config: ClusterConfig) -> Harness {
        let (tx, rx) = crossbeam::channel::unbounded();
        let out = Arc::new(Mutex::new(Vec::new()));
        let clock = MockClock::new();
        let grid = GridShape::new(1, 1);
        let mut b = TopologyBuilder::new();
        b.add_source("src", ChanSource(rx));
        let clock2 = clock.clone();
        let cfg = config.clone();
        b.add_bolt("node", 1, move |task| {
            Box::new(MatchingNode::new(task, grid, cfg.clone(), Arc::new(clock2.clone())))
        });
        let out2 = Arc::clone(&out);
        b.add_bolt("sink", 1, move |_| Box::new(Collector(Arc::clone(&out2))));
        b.connect("src", "node", Grouping::Broadcast);
        b.connect("node", "sink", Grouping::Shuffle);
        Harness { tx, out, clock, _topo: b.start() }
    }

    fn subscribe_event(spec: QuerySpec, sub: u64, initial: Vec<ResultItem>) -> Event {
        Event::Subscribe(Arc::new(SubscriptionRequest {
            tenant: TenantId::new("app"),
            subscription: SubscriptionId(sub),
            query_hash: spec.stable_hash(),
            spec,
            initial,
            slack: 2,
            ttl_micros: 60_000_000,
            renewal: false,
        }))
    }

    fn write_event(key: Key, version: Version, doc: Option<invalidb_common::Document>) -> Event {
        Event::Write(Arc::new(AfterImage {
            tenant: TenantId::new("app"),
            collection: "t".into(),
            key,
            version,
            doc,
            written_at: 42,
            trace: None,
        }))
    }

    fn wait_events(h: &Harness, n: usize) -> Vec<Event> {
        for _ in 0..400 {
            if h.out.lock().len() >= n {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        h.out.lock().clone()
    }

    fn notifications(events: &[Event]) -> Vec<Notification> {
        events
            .iter()
            .filter_map(|e| match e {
                Event::Out(msg) => match &**msg {
                    OutMsg::Notify(n) => Some(n.clone()),
                    _ => None,
                },
                _ => None,
            })
            .collect()
    }

    #[test]
    fn unsorted_query_lifecycle() {
        let h = harness(ClusterConfig::new(1, 1));
        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 10i64 } });
        h.tx.send(subscribe_event(spec, 1, vec![])).unwrap();
        // add: matching insert
        h.tx.send(write_event(Key::of("a"), 1, Some(doc! { "n" => 15i64 }))).unwrap();
        // filtered: non-matching insert
        h.tx.send(write_event(Key::of("b"), 1, Some(doc! { "n" => 5i64 }))).unwrap();
        // change: still matching
        h.tx.send(write_event(Key::of("a"), 2, Some(doc! { "n" => 20i64 }))).unwrap();
        // remove: update out of the result
        h.tx.send(write_event(Key::of("a"), 3, Some(doc! { "n" => 1i64 }))).unwrap();
        let notes = notifications(&wait_events(&h, 3));
        let kinds: Vec<MatchType> = notes
            .iter()
            .filter_map(|n| match &n.kind {
                NotificationKind::Change(c) => Some(c.match_type),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec![MatchType::Add, MatchType::Change, MatchType::Remove]);
        assert_eq!(notes[0].caused_by_write_at, 42);
    }

    #[test]
    fn sorted_query_emits_filter_changes() {
        let h = harness(ClusterConfig::new(1, 1));
        let spec = QuerySpec::filter("t", doc! {}).sorted_by("n", SortDirection::Asc).with_limit(3);
        h.tx.send(subscribe_event(spec, 1, vec![])).unwrap();
        h.tx.send(write_event(Key::of("a"), 1, Some(doc! { "n" => 1i64 }))).unwrap();
        let events = wait_events(&h, 1);
        let fcs: Vec<&FilterChange> = events
            .iter()
            .filter_map(|e| match e {
                Event::FilterChange(fc) => Some(&**fc),
                _ => None,
            })
            .collect();
        assert_eq!(fcs.len(), 1);
        assert_eq!(fcs[0].kind, FilterChangeKind::Add);
        assert!(notifications(&events).is_empty(), "sorted queries do not notify directly");
    }

    #[test]
    fn stale_writes_are_dropped() {
        let h = harness(ClusterConfig::new(1, 1));
        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 0i64 } });
        h.tx.send(subscribe_event(spec, 1, vec![])).unwrap();
        h.tx.send(write_event(Key::of("a"), 2, Some(doc! { "n" => 2i64 }))).unwrap();
        // Older version arrives late (event-layer skew): must be ignored.
        h.tx.send(write_event(Key::of("a"), 1, Some(doc! { "n" => 1i64 }))).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        let notes = notifications(&h.out.lock().clone());
        assert_eq!(notes.len(), 1, "only the newer write notifies");
    }

    #[test]
    fn retention_replay_closes_write_subscription_race() {
        let h = harness(ClusterConfig::new(1, 1));
        // Write arrives BEFORE the subscription (and is not reflected in the
        // initial result): retention replay must catch it.
        h.tx.send(write_event(Key::of("early"), 1, Some(doc! { "n" => 99i64 }))).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 10i64 } });
        h.tx.send(subscribe_event(spec, 1, vec![])).unwrap();
        let notes = notifications(&wait_events(&h, 1));
        assert_eq!(notes.len(), 1);
        match &notes[0].kind {
            NotificationKind::Change(c) => {
                assert_eq!(c.match_type, MatchType::Add);
                assert_eq!(c.item.key, Key::of("early"));
            }
            other => panic!("expected change, got {other:?}"),
        }
    }

    #[test]
    fn replay_respects_initial_result_versions() {
        let h = harness(ClusterConfig::new(1, 1));
        // The write is already reflected in the initial result (same
        // version): replay must NOT double-notify.
        h.tx.send(write_event(Key::of("seen"), 3, Some(doc! { "n" => 50i64 }))).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 10i64 } });
        let initial = vec![ResultItem::new(Key::of("seen"), 3, doc! { "n" => 50i64 })];
        h.tx.send(subscribe_event(spec, 1, initial)).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert!(notifications(&h.out.lock().clone()).is_empty());
    }

    #[test]
    fn unsubscribe_stops_notifications() {
        let h = harness(ClusterConfig::new(1, 1));
        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 0i64 } });
        let hash = spec.stable_hash();
        h.tx.send(subscribe_event(spec, 1, vec![])).unwrap();
        h.tx.send(write_event(Key::of("a"), 1, Some(doc! { "n" => 1i64 }))).unwrap();
        wait_events(&h, 1);
        h.tx.send(Event::Unsubscribe {
            tenant: TenantId::new("app"),
            subscription: SubscriptionId(1),
            query_hash: hash,
        })
        .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        h.tx.send(write_event(Key::of("b"), 1, Some(doc! { "n" => 2i64 }))).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(notifications(&h.out.lock().clone()).len(), 1, "no notification after cancel");
    }

    #[test]
    fn ttl_expiry_deactivates_queries() {
        let mut cfg = ClusterConfig::new(1, 1);
        cfg.tick_interval = Duration::from_millis(10);
        let h = harness(cfg);
        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 0i64 } });
        let mut req = match subscribe_event(spec, 1, vec![]) {
            Event::Subscribe(r) => (*r).clone(),
            _ => unreachable!(),
        };
        req.ttl_micros = 1_000; // 1ms TTL
        h.tx.send(Event::Subscribe(Arc::new(req))).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        h.clock.advance(Duration::from_secs(1)); // well past TTL
        std::thread::sleep(Duration::from_millis(200)); // ticks run expiry
        h.tx.send(write_event(Key::of("a"), 1, Some(doc! { "n" => 1i64 }))).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert!(notifications(&h.out.lock().clone()).is_empty(), "expired query must not match");
    }

    #[test]
    fn multi_tenant_isolation() {
        let h = harness(ClusterConfig::new(1, 1));
        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 0i64 } });
        h.tx.send(subscribe_event(spec, 1, vec![])).unwrap(); // tenant "app"
                                                              // Write from another tenant: same collection name, must not match.
        h.tx.send(Event::Write(Arc::new(AfterImage {
            tenant: TenantId::new("other"),
            collection: "t".into(),
            key: Key::of("x"),
            version: 1,
            doc: Some(doc! { "n" => 5i64 }),
            written_at: 0,
            trace: None,
        })))
        .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert!(notifications(&h.out.lock().clone()).is_empty());
    }

    #[test]
    fn collection_isolation() {
        let h = harness(ClusterConfig::new(1, 1));
        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 0i64 } });
        h.tx.send(subscribe_event(spec, 1, vec![])).unwrap();
        h.tx.send(Event::Write(Arc::new(AfterImage {
            tenant: TenantId::new("app"),
            collection: "other_collection".into(),
            key: Key::of("x"),
            version: 1,
            doc: Some(doc! { "n" => 5i64 }),
            written_at: 0,
            trace: None,
        })))
        .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert!(notifications(&h.out.lock().clone()).is_empty());
    }

    #[test]
    fn delete_of_matching_item_notifies_remove() {
        let h = harness(ClusterConfig::new(1, 1));
        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 0i64 } });
        let initial = vec![ResultItem::new(Key::of("a"), 1, doc! { "n" => 1i64 })];
        h.tx.send(subscribe_event(spec, 1, initial)).unwrap();
        h.tx.send(write_event(Key::of("a"), 2, None)).unwrap();
        let notes = notifications(&wait_events(&h, 1));
        assert_eq!(notes.len(), 1);
        match &notes[0].kind {
            NotificationKind::Change(c) => {
                assert_eq!(c.match_type, MatchType::Remove);
                assert!(c.item.doc.is_none());
            }
            other => panic!("expected remove, got {other:?}"),
        }
    }

    #[test]
    fn slow_query_log_charges_evaluations() {
        let cfg = ClusterConfig::new(1, 1);
        let metrics = cfg.metrics.clone();
        let h = harness(cfg);
        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 0i64 } });
        h.tx.send(subscribe_event(spec, 1, vec![])).unwrap();
        h.tx.send(write_event(Key::of("a"), 1, Some(doc! { "n" => 1i64 }))).unwrap();
        wait_events(&h, 1);
        // Charges are accumulated locally and only reach the shared log on
        // the node's next tick, so poll for the flush.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let top = loop {
            let top = metrics.slow_queries().top(4);
            if !top.is_empty() {
                break top;
            }
            assert!(std::time::Instant::now() < deadline, "charges never flushed");
            std::thread::sleep(Duration::from_millis(10));
        };
        assert_eq!(top.len(), 1, "one query charged");
        assert!(top[0].evals >= 1);
        assert_eq!(top[0].tenant, "app");
        assert!(!top[0].label.is_empty(), "label captured from the query spec");
    }

    #[test]
    fn batched_writes_equal_serial_per_subscription() {
        use invalidb_stream::run_with_collector;
        // Two identically subscribed nodes: one executes writes one by one,
        // the other gets them as a single execute_batch turn. Output per
        // subscription (and per query hash for staged queries) must be
        // byte-identical, including under moves-out-of-range, deletes,
        // duplicate keys (forcing run splits) and a second collection.
        let grid = GridShape::new(1, 1);
        let cfg = ClusterConfig::new(1, 1);
        let clock = MockClock::new();
        let mut serial = MatchingNode::new(0, grid, cfg.clone(), Arc::new(clock.clone()));
        let mut batched = MatchingNode::new(0, grid, cfg, Arc::new(clock.clone()));
        let subs = vec![
            subscribe_event(QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 10i64 } }), 1, vec![]),
            subscribe_event(
                QuerySpec::filter("t", doc! {}).sorted_by("n", SortDirection::Asc).with_limit(3),
                2,
                vec![],
            ),
            subscribe_event(QuerySpec::filter("u", doc! { "n" => doc! { "$lt" => 0i64 } }), 3, vec![]),
        ];
        let mut writes = vec![
            write_event(Key::of("a"), 1, Some(doc! { "n" => 15i64 })), // add
            write_event(Key::of("b"), 1, Some(doc! { "n" => 5i64 })),  // filtered (sub 1)
            write_event(Key::of("a"), 2, Some(doc! { "n" => 20i64 })), // change, dup key
            write_event(Key::of("a"), 3, Some(doc! { "n" => 1i64 })),  // move out of range
            write_event(Key::of("b"), 2, None),                        // delete
            write_event(Key::of("a"), 3, Some(doc! { "n" => 99i64 })), // stale (dropped)
        ];
        writes.push(Event::Write(Arc::new(AfterImage {
            tenant: TenantId::new("app"),
            collection: "u".into(),
            key: Key::of("z"),
            version: 1,
            doc: Some(doc! { "n" => -4i64 }),
            written_at: 42,
            trace: None,
        })));
        let mut out_serial = Vec::new();
        run_with_collector(&mut out_serial, |ctx| {
            for sub in &subs {
                serial.execute(sub.clone(), ctx);
            }
            for w in &writes {
                serial.execute(w.clone(), ctx);
            }
        });
        let mut out_batched = Vec::new();
        run_with_collector(&mut out_batched, |ctx| {
            let mut turn: Vec<Event> = subs.iter().chain(writes.iter()).cloned().collect();
            batched.execute_batch(&mut turn, ctx);
        });
        let per_sub = |events: &[Event], sub: u64| -> Vec<Notification> {
            notifications(events).into_iter().filter(|n| n.subscription.0 == sub).collect()
        };
        for sub in [1u64, 2, 3] {
            assert_eq!(per_sub(&out_serial, sub), per_sub(&out_batched, sub), "subscription {sub}");
        }
        let changes = |events: &[Event]| -> Vec<FilterChange> {
            events
                .iter()
                .filter_map(|e| match e {
                    Event::FilterChange(fc) => Some((**fc).clone()),
                    _ => None,
                })
                .collect()
        };
        let serial_fc = changes(&out_serial);
        assert_eq!(serial_fc.len(), changes(&out_batched).len());
        for (a, b) in serial_fc.iter().zip(changes(&out_batched).iter()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.version, b.version);
            assert_eq!(a.doc, b.doc);
        }
        assert_eq!(serial.stale_dropped(), batched.stale_dropped());
        assert_eq!(serial.retained_writes(), batched.retained_writes());
    }

    #[test]
    fn two_subscriptions_same_query_both_notified() {
        let h = harness(ClusterConfig::new(1, 1));
        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 0i64 } });
        h.tx.send(subscribe_event(spec.clone(), 1, vec![])).unwrap();
        h.tx.send(subscribe_event(spec, 2, vec![])).unwrap();
        h.tx.send(write_event(Key::of("a"), 1, Some(doc! { "n" => 1i64 }))).unwrap();
        let notes = notifications(&wait_events(&h, 2));
        let subs: std::collections::HashSet<u64> = notes.iter().map(|n| n.subscription.0).collect();
        assert_eq!(subs, std::collections::HashSet::from([1, 2]));
    }
}
