//! The aggregation stage — an *extension* implementing the paper's future
//! work (§8.1: "additional query types (e.g. aggregation ...) through
//! additional processing stages", cf. the SEDA stage design of §5.2).
//!
//! Like the sorting stage, aggregation nodes sit downstream of the
//! filtering stage and receive its output partitioned by query: each
//! aggregate query is owned by exactly one task, which maintains the
//! per-record contributions of the *entire* matching set and emits a new
//! [`NotificationKind::Aggregate`] whenever the aggregate value changes.
//!
//! Because the filtering stage only forwards matching/ceased-matching
//! writes, the aggregation node's input throughput is bounded by the
//! query's selectivity, not by the raw write stream — the same load
//! reduction the paper describes for the sorting stage.
//!
//! Memory is proportional to the number of matching records (like an
//! unbounded sorted query). `count`/`sum`/`avg` maintain O(1) running
//! state plus the per-key version map; `min`/`max` additionally keep an
//! ordered multiset so removals are exact.

use crate::config::ClusterConfig;
use crate::event::{Event, FilterChange, FilterChangeKind, OutMsg};
use invalidb_common::{
    canonical_eq, AggregateOp, Clock, Key, Notification, NotificationKind, QueryHash, Stage,
    SubscriptionId, SubscriptionRequest, TenantId, Timestamp, TraceContext, Value, Version,
};
use invalidb_stream::{Bolt, BoltContext};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

struct SubState {
    tenant: TenantId,
    expires_at: Timestamp,
}

struct AggGroup {
    op: AggregateOp,
    field: Option<String>,
    /// Per matching record: its version and its field contribution.
    contributions: HashMap<Key, (Version, Value)>,
    /// Ordered multiset of contributions (for min/max).
    ordered: BTreeMap<Key, usize>,
    /// Running sum over numeric contributions and their count (sum/avg).
    sum: f64,
    numeric: u64,
    last_emitted: Option<(Value, u64)>,
    subscriptions: HashMap<SubscriptionId, SubState>,
}

impl AggGroup {
    fn add_contribution(&mut self, value: &Value) {
        *self.ordered.entry(Key(value.clone())).or_insert(0) += 1;
        if let Some(n) = value.as_f64() {
            self.sum += n;
            self.numeric += 1;
        }
    }

    fn remove_contribution(&mut self, value: &Value) {
        if let Some(count) = self.ordered.get_mut(&Key(value.clone())) {
            *count -= 1;
            if *count == 0 {
                self.ordered.remove(&Key(value.clone()));
            }
        }
        if let Some(n) = value.as_f64() {
            self.sum -= n;
            self.numeric -= 1;
        }
    }

    fn current(&self) -> (Value, u64) {
        let count = self.contributions.len() as u64;
        let value = match self.op {
            AggregateOp::Count => Value::Int(count as i64),
            AggregateOp::Sum => number(self.sum),
            AggregateOp::Avg => {
                if self.numeric == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.numeric as f64)
                }
            }
            AggregateOp::Min => self.ordered.keys().next().map(|k| k.0.clone()).unwrap_or(Value::Null),
            AggregateOp::Max => {
                self.ordered.keys().next_back().map(|k| k.0.clone()).unwrap_or(Value::Null)
            }
        };
        (value, count)
    }
}

/// Renders a running float sum as an `Int` when it is integral, so pure
/// integer workloads keep integer aggregates on the wire.
fn number(sum: f64) -> Value {
    if sum.fract() == 0.0 && sum.abs() < 9_007_199_254_740_992.0 {
        Value::Int(sum as i64)
    } else {
        Value::Float(sum)
    }
}

/// The aggregation-stage bolt.
pub struct AggregationNode {
    config: ClusterConfig,
    clock: Arc<dyn Clock>,
    groups: HashMap<(TenantId, QueryHash), AggGroup>,
}

impl AggregationNode {
    /// Creates an aggregation node.
    pub fn new(config: ClusterConfig, clock: Arc<dyn Clock>) -> Self {
        Self { config, clock, groups: HashMap::new() }
    }

    /// Number of aggregate queries owned by this node.
    pub fn active_queries(&self) -> usize {
        self.groups.len()
    }

    fn handle_subscribe(&mut self, req: &SubscriptionRequest, ctx: &mut BoltContext<'_, Event>) {
        let agg = match &req.spec.aggregate {
            Some(a) => a.clone(),
            None => return,
        };
        let now = self.clock.now();
        let expires_at = now.after(std::time::Duration::from_micros(req.ttl_micros));
        let group_key = (req.tenant.clone(), req.query_hash);
        let group = self.groups.entry(group_key).or_insert_with(|| AggGroup {
            op: agg.op,
            field: agg.field.clone(),
            contributions: HashMap::new(),
            ordered: BTreeMap::new(),
            sum: 0.0,
            numeric: 0,
            last_emitted: None,
            subscriptions: HashMap::new(),
        });
        let fresh_group = group.subscriptions.is_empty() && group.contributions.is_empty();
        group
            .subscriptions
            .insert(req.subscription, SubState { tenant: req.tenant.clone(), expires_at });
        if fresh_group {
            // Seed from the initial (un-aggregated) result.
            for item in &req.initial {
                if let Some(doc) = &item.doc {
                    let value = contribution(doc, &group.field);
                    group.contributions.insert(item.key.clone(), (item.version, value.clone()));
                    group.add_contribution(&value);
                }
            }
        }
        // The first notification for the new subscription is the current
        // aggregate value.
        let (value, count) = group.current();
        group.last_emitted = Some((value.clone(), count));
        ctx.emit(Event::Out(Arc::new(OutMsg::Notify(Notification {
            tenant: req.tenant.clone(),
            subscription: req.subscription,
            kind: NotificationKind::Aggregate { value, count },
            caused_by_write_at: 0,
            trace: None,
        }))));
        let _ = &self.config;
    }

    fn handle_filter_change(&mut self, fc: &FilterChange, ctx: &mut BoltContext<'_, Event>) {
        let group = match self.groups.get_mut(&(fc.tenant.clone(), fc.query_hash)) {
            Some(g) => g,
            None => return,
        };
        // Version guard (replay/renewal crossings).
        if let Some((seen, _)) = group.contributions.get(&fc.key) {
            if fc.version <= *seen {
                return;
            }
        }
        match fc.kind {
            FilterChangeKind::Add | FilterChangeKind::Change => {
                let doc = match &fc.doc {
                    Some(d) => d,
                    None => return,
                };
                let new_value = contribution(doc, &group.field);
                let old = group.contributions.insert(fc.key.clone(), (fc.version, new_value.clone()));
                if let Some((_, old_value)) = &old {
                    if canonical_eq(old_value, &new_value) {
                        // Contribution unchanged; only the version moved.
                        return;
                    }
                    let old_value = old_value.clone();
                    group.remove_contribution(&old_value);
                }
                group.add_contribution(&new_value);
            }
            FilterChangeKind::Remove => {
                if let Some((_, old_value)) = group.contributions.remove(&fc.key) {
                    group.remove_contribution(&old_value);
                } else {
                    return;
                }
            }
        }
        let (value, count) = group.current();
        let changed = match &group.last_emitted {
            Some((v, c)) => !canonical_eq(v, &value) || *c != count,
            None => true,
        };
        if changed {
            group.last_emitted = Some((value.clone(), count));
            // Stamp the aggregation stage once on sampled traces.
            let trace: Option<TraceContext> = fc.trace.clone().map(|mut t| {
                t.stamp(Stage::Aggregation);
                t
            });
            for (sub, state) in &group.subscriptions {
                ctx.emit(Event::Out(Arc::new(OutMsg::Notify(Notification {
                    tenant: state.tenant.clone(),
                    subscription: *sub,
                    kind: NotificationKind::Aggregate { value: value.clone(), count },
                    caused_by_write_at: fc.written_at,
                    trace: trace.clone(),
                }))));
            }
        }
    }

    fn handle_unsubscribe(
        &mut self,
        tenant: &TenantId,
        query_hash: QueryHash,
        subscription: SubscriptionId,
    ) {
        if let Some(group) = self.groups.get_mut(&(tenant.clone(), query_hash)) {
            group.subscriptions.remove(&subscription);
            if group.subscriptions.is_empty() {
                self.groups.remove(&(tenant.clone(), query_hash));
            }
        }
    }

    fn handle_extend_ttl(
        &mut self,
        tenant: &TenantId,
        query_hash: QueryHash,
        subscription: SubscriptionId,
        ttl_micros: u64,
    ) {
        let now = self.clock.now();
        if let Some(group) = self.groups.get_mut(&(tenant.clone(), query_hash)) {
            if let Some(sub) = group.subscriptions.get_mut(&subscription) {
                sub.expires_at = now.after(std::time::Duration::from_micros(ttl_micros));
            }
        }
    }

    fn expire(&mut self) {
        let now = self.clock.now();
        self.groups.retain(|_, group| {
            group.subscriptions.retain(|_, sub| sub.expires_at > now);
            !group.subscriptions.is_empty()
        });
    }
}

/// A record's contribution to the aggregate: its (first) value at the
/// field path, or `Null` when missing (counted, but numerically inert).
fn contribution(doc: &invalidb_common::Document, field: &Option<String>) -> Value {
    match field {
        None => Value::Int(1),
        Some(path) => doc.get_path(path).cloned().unwrap_or(Value::Null),
    }
}

impl Bolt<Event> for AggregationNode {
    fn execute(&mut self, input: Event, ctx: &mut BoltContext<'_, Event>) {
        match input {
            Event::Subscribe(req) => self.handle_subscribe(&req, ctx),
            Event::FilterChange(fc) => self.handle_filter_change(&fc, ctx),
            Event::Unsubscribe { tenant, query_hash, subscription } => {
                self.handle_unsubscribe(&tenant, query_hash, subscription)
            }
            Event::ExtendTtl { tenant, query_hash, subscription, ttl_micros } => {
                self.handle_extend_ttl(&tenant, query_hash, subscription, ttl_micros)
            }
            Event::Write(_) | Event::Out(_) => {}
        }
    }

    fn tick(&mut self, _ctx: &mut BoltContext<'_, Event>) {
        self.expire();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::{doc, Document, MockClock, QuerySpec, ResultItem};

    /// Drives the node directly with a hand-built context.
    struct Probe {
        node: AggregationNode,
        out: Vec<(Value, u64)>,
    }

    impl Probe {
        fn new() -> Self {
            Self {
                node: AggregationNode::new(ClusterConfig::new(1, 1), Arc::new(MockClock::new())),
                out: Vec::new(),
            }
        }

        fn subscribe(&mut self, spec: &QuerySpec, initial: Vec<ResultItem>) {
            let req = SubscriptionRequest {
                tenant: TenantId::new("t"),
                subscription: SubscriptionId(1),
                query_hash: spec.stable_hash(),
                spec: spec.clone(),
                initial,
                slack: 0,
                ttl_micros: u64::MAX / 2,
                renewal: false,
            };
            self.drive(Event::Subscribe(Arc::new(req)));
        }

        fn change(
            &mut self,
            spec: &QuerySpec,
            kind: FilterChangeKind,
            key: i64,
            version: u64,
            doc: Option<Document>,
        ) {
            self.drive(Event::FilterChange(Arc::new(FilterChange {
                tenant: TenantId::new("t"),
                query_hash: spec.stable_hash(),
                kind,
                key: Key::of(key),
                version,
                doc,
                written_at: 0,
                trace: None,
            })));
        }

        fn drive(&mut self, event: Event) {
            let mut collected = Vec::new();
            invalidb_stream::run_with_collector(&mut collected, |ctx| {
                self.node.execute(event, ctx);
            });
            for ev in collected {
                if let Event::Out(msg) = ev {
                    if let OutMsg::Notify(n) = &*msg {
                        if let NotificationKind::Aggregate { value, count } = &n.kind {
                            self.out.push((value.clone(), *count));
                        }
                    }
                }
            }
        }

        fn last(&self) -> &(Value, u64) {
            self.out.last().expect("an aggregate notification")
        }
    }

    fn count_spec() -> QuerySpec {
        QuerySpec::filter("t", doc! {}).aggregated(AggregateOp::Count, None)
    }

    fn spec_of(op: AggregateOp) -> QuerySpec {
        QuerySpec::filter("t", doc! {}).aggregated(op, Some("n"))
    }

    #[test]
    fn count_tracks_membership() {
        let spec = count_spec();
        let mut p = Probe::new();
        p.subscribe(&spec, vec![ResultItem::new(Key::of(0i64), 1, doc! { "n" => 1i64 })]);
        assert_eq!(p.last(), &(Value::Int(1), 1));
        p.change(&spec, FilterChangeKind::Add, 1, 1, Some(doc! { "n" => 5i64 }));
        assert_eq!(p.last(), &(Value::Int(2), 2));
        p.change(&spec, FilterChangeKind::Remove, 0, 2, None);
        assert_eq!(p.last(), &(Value::Int(1), 1));
        // Content change without membership change: count stays silent.
        let before = p.out.len();
        p.change(&spec, FilterChangeKind::Change, 1, 2, Some(doc! { "n" => 6i64 }));
        assert_eq!(p.out.len(), before, "count unchanged -> no notification");
    }

    #[test]
    fn sum_and_avg() {
        let spec = spec_of(AggregateOp::Sum);
        let mut p = Probe::new();
        p.subscribe(&spec, vec![]);
        assert_eq!(p.last(), &(Value::Int(0), 0));
        p.change(&spec, FilterChangeKind::Add, 1, 1, Some(doc! { "n" => 10i64 }));
        p.change(&spec, FilterChangeKind::Add, 2, 1, Some(doc! { "n" => 2.5f64 }));
        assert_eq!(p.last(), &(Value::Float(12.5), 2));
        p.change(&spec, FilterChangeKind::Change, 1, 2, Some(doc! { "n" => 20i64 }));
        assert_eq!(p.last(), &(Value::Float(22.5), 2));
        p.change(&spec, FilterChangeKind::Remove, 2, 2, None);
        assert_eq!(p.last(), &(Value::Int(20), 1));

        let spec = spec_of(AggregateOp::Avg);
        let mut p = Probe::new();
        p.subscribe(&spec, vec![]);
        assert_eq!(p.last(), &(Value::Null, 0), "avg of empty set is null");
        p.change(&spec, FilterChangeKind::Add, 1, 1, Some(doc! { "n" => 10i64 }));
        p.change(&spec, FilterChangeKind::Add, 2, 1, Some(doc! { "n" => 20i64 }));
        assert_eq!(p.last(), &(Value::Float(15.0), 2));
        // A record without the field counts for membership, not the mean.
        p.change(&spec, FilterChangeKind::Add, 3, 1, Some(doc! { "other" => 1i64 }));
        assert_eq!(p.last(), &(Value::Float(15.0), 3));
    }

    #[test]
    fn min_max_with_duplicates() {
        let spec = spec_of(AggregateOp::Min);
        let mut p = Probe::new();
        p.subscribe(&spec, vec![]);
        p.change(&spec, FilterChangeKind::Add, 1, 1, Some(doc! { "n" => 5i64 }));
        p.change(&spec, FilterChangeKind::Add, 2, 1, Some(doc! { "n" => 5i64 }));
        p.change(&spec, FilterChangeKind::Add, 3, 1, Some(doc! { "n" => 9i64 }));
        assert_eq!(p.last(), &(Value::Int(5), 3));
        // Removing ONE of the duplicate minima must not change the min.
        p.change(&spec, FilterChangeKind::Remove, 1, 2, None);
        assert_eq!(p.last(), &(Value::Int(5), 2));
        p.change(&spec, FilterChangeKind::Remove, 2, 2, None);
        assert_eq!(p.last(), &(Value::Int(9), 1));

        let spec = spec_of(AggregateOp::Max);
        let mut p = Probe::new();
        p.subscribe(
            &spec,
            vec![
                ResultItem::new(Key::of(1i64), 1, doc! { "n" => 3i64 }),
                ResultItem::new(Key::of(2i64), 1, doc! { "n" => 7i64 }),
            ],
        );
        assert_eq!(p.last(), &(Value::Int(7), 2));
        p.change(&spec, FilterChangeKind::Remove, 2, 2, None);
        assert_eq!(p.last(), &(Value::Int(3), 1));
    }

    #[test]
    fn stale_versions_ignored() {
        let spec = count_spec();
        let mut p = Probe::new();
        p.subscribe(&spec, vec![]);
        p.change(&spec, FilterChangeKind::Add, 1, 5, Some(doc! { "n" => 1i64 }));
        let before = p.out.len();
        p.change(&spec, FilterChangeKind::Remove, 1, 4, None);
        assert_eq!(p.out.len(), before, "stale remove dropped");
        assert_eq!(p.last(), &(Value::Int(1), 1));
    }

    #[test]
    fn unsubscribe_frees_group() {
        let spec = count_spec();
        let mut p = Probe::new();
        p.subscribe(&spec, vec![]);
        assert_eq!(p.node.active_queries(), 1);
        p.drive(Event::Unsubscribe {
            tenant: TenantId::new("t"),
            subscription: SubscriptionId(1),
            query_hash: spec.stable_hash(),
        });
        assert_eq!(p.node.active_queries(), 0);
    }
}
