//! Events flowing through the cluster topology.

use invalidb_common::{
    AfterImage, Document, Key, Notification, QueryHash, SpecError, SubscriptionId, SubscriptionRequest,
    TenantId, TraceContext, Value, Version,
};
use std::sync::Arc;

/// One message inside the cluster topology. Payloads are `Arc`-shared so
/// broadcast groupings clone cheaply.
#[derive(Debug, Clone)]
pub enum Event {
    /// Activate a real-time query (carries the full initial result).
    Subscribe(Arc<SubscriptionRequest>),
    /// Cancel a subscription.
    Unsubscribe {
        /// Owning tenant.
        tenant: TenantId,
        /// Subscription to cancel.
        subscription: SubscriptionId,
        /// Memoized query hash for routing.
        query_hash: QueryHash,
    },
    /// Keep a subscription alive.
    ExtendTtl {
        /// Owning tenant.
        tenant: TenantId,
        /// Subscription to extend.
        subscription: SubscriptionId,
        /// Memoized query hash for routing.
        query_hash: QueryHash,
        /// New TTL in microseconds.
        ttl_micros: u64,
    },
    /// An after-image from the write stream.
    Write(Arc<AfterImage>),
    /// Filtering-stage output destined for the sorting stage.
    FilterChange(Arc<FilterChange>),
    /// A finished notification (or heartbeat) destined for the notifier.
    Out(Arc<OutMsg>),
}

/// A mini-batch of after-images, in arrival order.
///
/// The topology runtime drains up to `max_batch` buffered messages per
/// scheduling turn; the matching stage regroups the contiguous
/// [`Event::Write`] runs of such a turn into a `WriteBatch` so the whole
/// batch shares one index probe and one per-query dispatch
/// (`MatchingNode::handle_write_batch`). The buffer is reused turn over
/// turn — hence `clear` instead of consuming constructors.
#[derive(Debug, Clone, Default)]
pub struct WriteBatch {
    writes: Vec<Arc<AfterImage>>,
}

impl WriteBatch {
    /// An empty batch with room for `cap` writes.
    pub fn with_capacity(cap: usize) -> WriteBatch {
        WriteBatch { writes: Vec::with_capacity(cap) }
    }

    /// Appends a write; arrival order is the vector order.
    pub fn push(&mut self, img: Arc<AfterImage>) {
        self.writes.push(img);
    }

    /// The batched after-images in arrival order.
    pub fn writes(&self) -> &[Arc<AfterImage>] {
        &self.writes
    }

    /// Number of batched writes.
    pub fn len(&self) -> usize {
        self.writes.len()
    }

    /// True when no writes are batched.
    pub fn is_empty(&self) -> bool {
        self.writes.is_empty()
    }

    /// Drops all writes, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.writes.clear();
    }
}

impl From<Vec<Arc<AfterImage>>> for WriteBatch {
    fn from(writes: Vec<Arc<AfterImage>>) -> WriteBatch {
        WriteBatch { writes }
    }
}

/// Kind of matching-status transition detected by the filtering stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterChangeKind {
    /// Item newly satisfies the query's matching condition.
    Add,
    /// Item still satisfies the matching condition (content update).
    Change,
    /// Item just ceased matching (update-out or delete).
    Remove,
}

/// Filtering-stage output for one (query, write) pair (§5.2): only items
/// that satisfy the matching condition or just ceased matching are passed
/// down — everything else was filtered out upstream.
#[derive(Debug, Clone)]
pub struct FilterChange {
    /// Owning tenant.
    pub tenant: TenantId,
    /// The affected query.
    pub query_hash: QueryHash,
    /// Transition kind.
    pub kind: FilterChangeKind,
    /// Primary key of the written item.
    pub key: Key,
    /// Version of the write.
    pub version: Version,
    /// After-image (`None` for deletes).
    pub doc: Option<Document>,
    /// Origin-write timestamp for latency accounting.
    pub written_at: u64,
    /// Stage trace inherited from the causing write, if it was sampled.
    pub trace: Option<TraceContext>,
}

impl FilterChangeKind {
    /// Stable wire name of the transition kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            FilterChangeKind::Add => "add",
            FilterChangeKind::Change => "change",
            FilterChangeKind::Remove => "remove",
        }
    }

    /// Parses a wire name produced by [`FilterChangeKind::as_str`].
    pub fn parse(s: &str) -> Option<FilterChangeKind> {
        match s {
            "add" => Some(FilterChangeKind::Add),
            "change" => Some(FilterChangeKind::Change),
            "remove" => Some(FilterChangeKind::Remove),
            _ => None,
        }
    }
}

impl FilterChange {
    /// Encodes the change as a document for the shuffle topic: matching
    /// cells hosted off the row owner ship their staged output through the
    /// event layer instead of an in-process channel.
    pub fn to_document(&self) -> Document {
        let mut d = Document::with_capacity(8);
        d.insert("tenant", self.tenant.0.clone());
        d.insert("queryHash", self.query_hash.0 as i64);
        d.insert("kind", self.kind.as_str());
        d.insert("key", self.key.0.clone());
        d.insert("version", self.version as i64);
        match &self.doc {
            Some(doc) => d.insert("doc", doc.clone()),
            None => d.insert("doc", Value::Null),
        };
        d.insert("writtenAt", self.written_at as i64);
        if let Some(trace) = &self.trace {
            d.insert("trace", trace.to_document());
        }
        d
    }

    /// Decodes a change from its document encoding.
    pub fn from_document(d: &Document) -> Result<FilterChange, SpecError> {
        let missing = |f: &str| SpecError { message: format!("filter change missing `{f}`") };
        let kind = d
            .get("kind")
            .and_then(Value::as_str)
            .and_then(FilterChangeKind::parse)
            .ok_or_else(|| missing("kind"))?;
        let doc = match d.get("doc") {
            Some(Value::Null) | None => None,
            Some(Value::Object(doc)) => Some(doc.clone()),
            Some(_) => {
                return Err(SpecError { message: "filter change `doc` must be object or null".into() })
            }
        };
        Ok(FilterChange {
            tenant: TenantId(
                d.get("tenant").and_then(Value::as_str).ok_or_else(|| missing("tenant"))?.to_owned(),
            ),
            query_hash: QueryHash(
                d.get("queryHash").and_then(Value::as_i64).ok_or_else(|| missing("queryHash"))? as u64,
            ),
            kind,
            key: Key(d.get("key").cloned().ok_or_else(|| missing("key"))?),
            version: d.get("version").and_then(Value::as_i64).ok_or_else(|| missing("version"))?
                as Version,
            doc,
            written_at: d.get("writtenAt").and_then(Value::as_i64).unwrap_or(0) as u64,
            trace: match d.get("trace").and_then(Value::as_object) {
                Some(td) => Some(TraceContext::from_document(td)?),
                None => None,
            },
        })
    }
}

/// Message leaving the cluster through the notifier.
#[derive(Debug, Clone)]
pub enum OutMsg {
    /// A change/initial/error notification for one subscription.
    Notify(Notification),
    /// Liveness signal for a tenant's application servers.
    Heartbeat {
        /// Tenant whose notify topic receives the heartbeat.
        tenant: TenantId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::doc;

    #[test]
    fn filter_change_roundtrips_through_document() {
        let change = FilterChange {
            tenant: TenantId("app1".into()),
            query_hash: QueryHash(0xdead_beef),
            kind: FilterChangeKind::Change,
            key: Key(Value::from("k17")),
            version: 42,
            doc: Some(doc! { "rank" => 3i64 }),
            written_at: 123_456,
            trace: None,
        };
        let decoded = FilterChange::from_document(&change.to_document()).unwrap();
        assert_eq!(decoded.tenant, change.tenant);
        assert_eq!(decoded.query_hash, change.query_hash);
        assert_eq!(decoded.kind, change.kind);
        assert_eq!(decoded.key, change.key);
        assert_eq!(decoded.version, change.version);
        assert_eq!(decoded.doc, change.doc);
        assert_eq!(decoded.written_at, change.written_at);
    }

    #[test]
    fn filter_change_delete_roundtrips() {
        let change = FilterChange {
            tenant: TenantId("t".into()),
            query_hash: QueryHash(1),
            kind: FilterChangeKind::Remove,
            key: Key(Value::from("gone")),
            version: 7,
            doc: None,
            written_at: 0,
            trace: None,
        };
        let decoded = FilterChange::from_document(&change.to_document()).unwrap();
        assert_eq!(decoded.doc, None);
        assert_eq!(decoded.kind, FilterChangeKind::Remove);
    }

    #[test]
    fn filter_change_rejects_bad_kind() {
        let d = doc! { "tenant" => "t", "queryHash" => 1i64, "kind" => "explode",
        "key" => "k", "version" => 1i64 };
        assert!(FilterChange::from_document(&d).is_err());
    }
}
