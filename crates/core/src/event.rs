//! Events flowing through the cluster topology.

use invalidb_common::{
    AfterImage, Document, Key, Notification, QueryHash, SubscriptionId, SubscriptionRequest, TenantId,
    TraceContext, Version,
};
use std::sync::Arc;

/// One message inside the cluster topology. Payloads are `Arc`-shared so
/// broadcast groupings clone cheaply.
#[derive(Debug, Clone)]
pub enum Event {
    /// Activate a real-time query (carries the full initial result).
    Subscribe(Arc<SubscriptionRequest>),
    /// Cancel a subscription.
    Unsubscribe {
        /// Owning tenant.
        tenant: TenantId,
        /// Subscription to cancel.
        subscription: SubscriptionId,
        /// Memoized query hash for routing.
        query_hash: QueryHash,
    },
    /// Keep a subscription alive.
    ExtendTtl {
        /// Owning tenant.
        tenant: TenantId,
        /// Subscription to extend.
        subscription: SubscriptionId,
        /// Memoized query hash for routing.
        query_hash: QueryHash,
        /// New TTL in microseconds.
        ttl_micros: u64,
    },
    /// An after-image from the write stream.
    Write(Arc<AfterImage>),
    /// Filtering-stage output destined for the sorting stage.
    FilterChange(Arc<FilterChange>),
    /// A finished notification (or heartbeat) destined for the notifier.
    Out(Arc<OutMsg>),
}

/// Kind of matching-status transition detected by the filtering stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterChangeKind {
    /// Item newly satisfies the query's matching condition.
    Add,
    /// Item still satisfies the matching condition (content update).
    Change,
    /// Item just ceased matching (update-out or delete).
    Remove,
}

/// Filtering-stage output for one (query, write) pair (§5.2): only items
/// that satisfy the matching condition or just ceased matching are passed
/// down — everything else was filtered out upstream.
#[derive(Debug, Clone)]
pub struct FilterChange {
    /// Owning tenant.
    pub tenant: TenantId,
    /// The affected query.
    pub query_hash: QueryHash,
    /// Transition kind.
    pub kind: FilterChangeKind,
    /// Primary key of the written item.
    pub key: Key,
    /// Version of the write.
    pub version: Version,
    /// After-image (`None` for deletes).
    pub doc: Option<Document>,
    /// Origin-write timestamp for latency accounting.
    pub written_at: u64,
    /// Stage trace inherited from the causing write, if it was sampled.
    pub trace: Option<TraceContext>,
}

/// Message leaving the cluster through the notifier.
#[derive(Debug, Clone)]
pub enum OutMsg {
    /// A change/initial/error notification for one subscription.
    Notify(Notification),
    /// Liveness signal for a tenant's application servers.
    Heartbeat {
        /// Tenant whose notify topic receives the heartbeat.
        tenant: TenantId,
    },
}
