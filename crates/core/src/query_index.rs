//! Multi-query index for the filtering stage.
//!
//! A naive matching node evaluates *every* of its queries against every
//! incoming after-image — O(queries) per write. The InvaliDB thesis lists
//! *multi-query optimizations* for exactly this hot path; this module keeps
//! per-write cost sublinear in the number of registered queries:
//!
//! * **Interval lanes** (§6.1: thousands of range predicates over one
//!   attribute): range conditions are indexed in a per-attribute interval
//!   tree, so a write only visits the queries whose interval its attribute
//!   value stabs — O(log queries + hits).
//! * **Equality lanes**: `$eq`/scalar and all-scalar `$in` conditions hash
//!   their literal's canonical encoding into a per-attribute lane —
//!   O(1) per attribute, independent of how many distinct values exist.
//! * **Conjunctive anchoring**: a filter like `{status: "open", price:
//!   {$lt: 100}}` is decomposed into atoms ([`invalidb_query::predicate`])
//!   and registered under its most selective indexable atom — equality
//!   first, then `$in`, then the tightest range — with the remaining atoms
//!   as a residual that full verification (and the matching node's shared
//!   predicate cache) handles. Before, any conjunction fell onto the O(Q)
//!   scan list.
//!
//! The index is *conservative*: it may return supersets, never misses.
//! Array-valued attributes fan out per MongoDB semantics, and since
//! different elements may satisfy different conjuncts of one condition
//! (`{a: {$gt: 5, $lt: 9}}` matches `{a: [4, 10]}`), interval lookups probe
//! the **envelope** `[min(elements), max(elements)]` for intersection
//! rather than stabbing per element — exact for scalars, superset for
//! arrays. Every candidate is still verified with the full predicate
//! evaluation, so correctness never depends on the index. Queries with no
//! indexable atom fall into a scan list and are evaluated the classic way.
//!
//! The interval trees are static and rebuilt lazily on the first lookup
//! after a subscription change — subscription churn is orders of magnitude
//! rarer than writes (the paper's measurement phases hold the query set
//! constant). Candidate generation fills caller-provided scratch buffers:
//! the steady-state write path performs no allocation here.

use invalidb_common::{canonical_cmp, Document, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::Hash;

/// An inclusive value interval (conservatively widened from the query).
#[derive(Debug, Clone)]
struct Interval<Id> {
    lo: Value,
    hi: Value,
    id: Id,
}

/// Result of analyzing a filter document for indexability.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexableRange {
    /// The single attribute the filter constrains.
    pub attr: String,
    /// Inclusive lower bound.
    pub lo: Value,
    /// Inclusive upper bound.
    pub hi: Value,
}

/// Analyzes a filter document the way the index did before conjunctive
/// anchoring existed: indexable iff it is exactly one top-level condition
/// of the form `{attr: literal}` (scalar) or
/// `{attr: {$eq/$gt/$gte/$lt/$lte: scalar, ...}}` with only range
/// operators. Retained as the planner of [`IndexOptions::legacy`] — the
/// measured pre-optimization baseline of the Q-scaling bench.
pub fn analyze_filter(filter: &Document) -> Option<IndexableRange> {
    if filter.len() != 1 {
        return None;
    }
    let (attr, cond) = filter.iter().next()?;
    if attr.starts_with('$') || attr.contains('.') {
        return None; // dotted paths interact with array fan-out; keep scanned
    }
    let scalar = |v: &Value| matches!(v.type_rank(), 1 | 2); // numbers, strings
    match cond {
        Value::Object(obj) if obj.keys().any(|k| k.starts_with('$')) => {
            let mut lo: Option<Value> = None;
            let mut hi: Option<Value> = None;
            for (op, v) in obj.iter() {
                if !scalar(v) {
                    return None;
                }
                match op {
                    "$eq" => {
                        lo = Some(tighten(lo, v, Ordering::Greater));
                        hi = Some(tighten(hi, v, Ordering::Less));
                    }
                    // Conservative: strict bounds widen to inclusive.
                    "$gt" | "$gte" => lo = Some(tighten(lo, v, Ordering::Greater)),
                    "$lt" | "$lte" => hi = Some(tighten(hi, v, Ordering::Less)),
                    _ => return None,
                }
            }
            let lo = lo.unwrap_or(bracket_min());
            let hi = hi.unwrap_or(bracket_max());
            Some(IndexableRange { attr: attr.to_owned(), lo, hi })
        }
        literal if scalar(literal) => {
            Some(IndexableRange { attr: attr.to_owned(), lo: literal.clone(), hi: literal.clone() })
        }
        _ => None,
    }
}

fn tighten(current: Option<Value>, candidate: &Value, keep_if: Ordering) -> Value {
    match current {
        None => candidate.clone(),
        Some(cur) => {
            if canonical_cmp(candidate, &cur) == keep_if {
                candidate.clone()
            } else {
                cur
            }
        }
    }
}

/// Smallest scalar under the canonical order (NaN opens the number bracket).
fn bracket_min() -> Value {
    Value::Float(f64::NAN)
}

/// A value above every number and string: the empty object.
fn bracket_max() -> Value {
    Value::Object(Document::new())
}

/// Static centered interval tree (sorted by `lo`, max-`hi` augmented).
struct IntervalTree<Id> {
    /// Intervals sorted by `(lo, insertion order)`.
    intervals: Vec<Interval<Id>>,
    /// `max_hi[i]` = maximum `hi` in the segment-tree node `i` covers.
    max_hi: Vec<Option<Value>>,
}

impl<Id: Copy> IntervalTree<Id> {
    fn build(mut intervals: Vec<Interval<Id>>) -> Self {
        intervals.sort_by(|a, b| canonical_cmp(&a.lo, &b.lo));
        let mut tree = Self { max_hi: vec![None; intervals.len() * 4 + 4], intervals };
        if !tree.intervals.is_empty() {
            tree.augment(1, 0, tree.intervals.len() - 1);
        }
        tree
    }

    fn augment(&mut self, node: usize, l: usize, r: usize) -> Value {
        if l == r {
            let hi = self.intervals[l].hi.clone();
            self.max_hi[node] = Some(hi.clone());
            return hi;
        }
        let mid = (l + r) / 2;
        let left = self.augment(node * 2, l, mid);
        let right = self.augment(node * 2 + 1, mid + 1, r);
        let max = if canonical_cmp(&left, &right) == Ordering::Less { right } else { left };
        self.max_hi[node] = Some(max.clone());
        max
    }

    /// All intervals `[lo, hi]` intersecting the probe envelope
    /// `[min, max]`, i.e. `lo <= max && hi >= min`. A point stab is the
    /// degenerate envelope `min == max == v`.
    fn intersecting(&self, min: &Value, max: &Value, out: &mut Vec<Id>) {
        if self.intervals.is_empty() {
            return;
        }
        self.intersect_rec(1, 0, self.intervals.len() - 1, min, max, out);
    }

    fn intersect_rec(
        &self,
        node: usize,
        l: usize,
        r: usize,
        min: &Value,
        max: &Value,
        out: &mut Vec<Id>,
    ) {
        // Prune: no interval below this node reaches up to `min`.
        match &self.max_hi[node] {
            Some(max_hi) if canonical_cmp(max_hi, min) != Ordering::Less => {}
            _ => return,
        }
        // Prune: intervals are sorted by lo; if even the leftmost lo > max,
        // nothing here intersects the envelope.
        if canonical_cmp(&self.intervals[l].lo, max) == Ordering::Greater {
            return;
        }
        if l == r {
            // lo <= max (checked above) and hi >= min (max_hi == hi here).
            out.push(self.intervals[l].id);
            return;
        }
        let mid = (l + r) / 2;
        self.intersect_rec(node * 2, l, mid, min, max, out);
        self.intersect_rec(node * 2 + 1, mid + 1, r, min, max, out);
    }
}

/// Planner knobs. The defaults are the full optimization; [`IndexOptions::legacy`]
/// reproduces the pre-optimization planner so the Q-scaling bench can
/// measure the improvement against a faithful baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexOptions {
    /// O(1) per-attribute equality lanes for `$eq`/scalar/`$in` atoms.
    pub eq_lanes: bool,
    /// Anchor conjunctive (multi-atom) filters on their most selective
    /// indexable atom instead of sending them to the scan list.
    pub conjunctive: bool,
}

impl Default for IndexOptions {
    fn default() -> Self {
        Self { eq_lanes: true, conjunctive: true }
    }
}

impl IndexOptions {
    /// The pre-optimization planner: single-condition interval analysis
    /// only, everything else scans.
    pub fn legacy() -> Self {
        Self { eq_lanes: false, conjunctive: false }
    }
}

/// Canonical lane key of an equality literal.
fn eq_key(v: &Value) -> Vec<u8> {
    let mut bytes = Vec::new();
    v.write_canonical(&mut bytes);
    bytes
}

/// Equality-lane-safe literals: numbers, strings, booleans. `null` matches
/// missing fields (no probe would run), arrays/objects have fan-out
/// equality shapes the lane cannot model — all stay out.
fn eq_lane_safe(v: &Value) -> bool {
    matches!(v.type_rank(), 1 | 2 | 5)
}

/// Interval-safe literals: numbers and strings (the bracketed ranks).
fn range_scalar(v: &Value) -> bool {
    matches!(v.type_rank(), 1 | 2)
}

/// `$in` lists longer than this stay on the scan path — each element costs
/// a lane registration.
const MAX_IN_LANE: usize = 128;

/// Where a query was registered (exact removal + accounting).
enum Anchor {
    Scan,
    Eq { attr: String, keys: Vec<Vec<u8>> },
    Range { attr: String },
}

/// A planned registration, before it is applied to the index structures.
enum Placement {
    Scan,
    Eq { attr: String, keys: Vec<Vec<u8>> },
    Range { attr: String, lo: Value, hi: Value },
}

/// The per-(tenant, collection) multi-query index.
pub struct QueryIndex<Id: Copy + Eq + Hash> {
    opts: IndexOptions,
    /// Raw indexed intervals per attribute (source of truth).
    ranges: HashMap<String, HashMap<Id, (Value, Value)>>,
    /// Built trees (lazily rebuilt when dirty).
    trees: HashMap<String, IntervalTree<Id>>,
    /// Equality lanes: attribute → canonical literal bytes → queries.
    eq: HashMap<String, HashMap<Vec<u8>, Vec<Id>>>,
    /// Queries that could not be indexed: always evaluated.
    scan: Vec<Id>,
    /// Where each registered query lives (exact removal).
    anchors: HashMap<Id, Anchor>,
    dirty: bool,
    /// Candidates produced through the equality lanes since the last
    /// [`QueryIndex::take_eq_lane_hits`] drain.
    eq_lane_hits: u64,
    /// Reused per-probe scratch (canonical key encoding / per-write ids).
    key_scratch: Vec<u8>,
    stab_scratch: Vec<Id>,
}

impl<Id: Copy + Eq + Hash> Default for QueryIndex<Id> {
    fn default() -> Self {
        Self::with_options(IndexOptions::default())
    }
}

impl<Id: Copy + Eq + Hash> QueryIndex<Id> {
    /// An empty index with explicit planner options.
    pub fn with_options(opts: IndexOptions) -> Self {
        Self {
            opts,
            ranges: HashMap::new(),
            trees: HashMap::new(),
            eq: HashMap::new(),
            scan: Vec::new(),
            anchors: HashMap::new(),
            dirty: false,
            eq_lane_hits: 0,
            key_scratch: Vec::new(),
            stab_scratch: Vec::new(),
        }
    }

    /// Registers a query under the most selective indexable atom of its
    /// filter; filters with no indexable atom go to the scan list.
    pub fn insert(&mut self, id: Id, filter: &Document) {
        let placement = if self.opts.conjunctive {
            self.plan_conjunctive(filter)
        } else {
            match analyze_filter(filter) {
                Some(r) => Placement::Range { attr: r.attr, lo: r.lo, hi: r.hi },
                None => Placement::Scan,
            }
        };
        let anchor = match placement {
            Placement::Scan => {
                self.scan.push(id);
                Anchor::Scan
            }
            Placement::Eq { attr, keys } => {
                let lane = self.eq.entry(attr.clone()).or_default();
                for key in &keys {
                    lane.entry(key.clone()).or_default().push(id);
                }
                Anchor::Eq { attr, keys }
            }
            Placement::Range { attr, lo, hi } => {
                self.ranges.entry(attr.clone()).or_default().insert(id, (lo, hi));
                self.dirty = true;
                Anchor::Range { attr }
            }
        };
        self.anchors.insert(id, anchor);
    }

    /// Picks the anchor for a conjunctive filter: equality beats `$in`
    /// beats ranges; among range atoms, all bounds on one attribute are
    /// combined into a single (tighter) interval — the envelope probe keeps
    /// that array-safe.
    fn plan_conjunctive(&self, filter: &Document) -> Placement {
        let atoms = invalidb_query::decompose(filter);
        // Per-attribute combined range bounds, in first-seen atom order
        // (atoms are canonically sorted, so planning is deterministic).
        let mut bounds: Vec<(String, Option<Value>, Option<Value>)> = Vec::new();
        let mut best_in: Option<(String, Vec<Vec<u8>>)> = None;
        for atom in &atoms {
            if atom.doc.len() != 1 {
                continue;
            }
            let (attr, cond) = atom.doc.iter().next().expect("one entry");
            if attr.starts_with('$') || attr.contains('.') {
                continue;
            }
            match cond {
                Value::Object(obj) if obj.keys().any(|k| k.starts_with('$')) => {
                    if obj.len() != 1 {
                        continue; // coupled/opaque condition: residual only
                    }
                    let (op, v) = obj.iter().next().expect("one op");
                    match op {
                        "$gt" | "$gte" if range_scalar(v) => {
                            let slot = bound_slot(&mut bounds, attr);
                            slot.1 = Some(tighten(slot.1.take(), v, Ordering::Greater));
                        }
                        "$lt" | "$lte" if range_scalar(v) => {
                            let slot = bound_slot(&mut bounds, attr);
                            slot.2 = Some(tighten(slot.2.take(), v, Ordering::Less));
                        }
                        "$eq" if range_scalar(v) => {
                            // Normalization spells `$eq` as a plain literal
                            // except for operator-shaped object literals;
                            // treat a stray scalar `$eq` as equality.
                            if self.opts.eq_lanes && eq_lane_safe(v) {
                                return Placement::Eq {
                                    attr: attr.to_owned(),
                                    keys: vec![eq_key(v)],
                                };
                            }
                            let slot = bound_slot(&mut bounds, attr);
                            slot.1 = Some(tighten(slot.1.take(), v, Ordering::Greater));
                            slot.2 = Some(tighten(slot.2.take(), v, Ordering::Less));
                        }
                        "$in" if self.opts.eq_lanes && best_in.is_none() => {
                            if let Some(items) = v.as_array() {
                                if items.len() <= MAX_IN_LANE
                                    && items.iter().all(eq_lane_safe)
                                {
                                    let mut keys: Vec<Vec<u8>> =
                                        items.iter().map(eq_key).collect();
                                    keys.sort_unstable();
                                    keys.dedup();
                                    best_in = Some((attr.to_owned(), keys));
                                }
                            }
                        }
                        _ => {}
                    }
                }
                literal => {
                    // Plain equality: the most selective anchor there is.
                    if self.opts.eq_lanes && eq_lane_safe(literal) {
                        return Placement::Eq {
                            attr: attr.to_owned(),
                            keys: vec![eq_key(literal)],
                        };
                    }
                    if range_scalar(literal) {
                        let slot = bound_slot(&mut bounds, attr);
                        slot.1 = Some(tighten(slot.1.take(), literal, Ordering::Greater));
                        slot.2 = Some(tighten(slot.2.take(), literal, Ordering::Less));
                    }
                }
            }
        }
        if let Some((attr, keys)) = best_in {
            return Placement::Eq { attr, keys };
        }
        // Prefer two-sided (bounded) intervals over half-lines.
        let best = bounds
            .into_iter()
            .max_by_key(|(_, lo, hi)| (lo.is_some() as u8) + (hi.is_some() as u8));
        match best {
            Some((attr, lo, hi)) if lo.is_some() || hi.is_some() => Placement::Range {
                attr,
                lo: lo.unwrap_or(bracket_min()),
                hi: hi.unwrap_or(bracket_max()),
            },
            _ => Placement::Scan,
        }
    }

    /// Unregisters a query (exact: only touches the anchor it lives under).
    pub fn remove(&mut self, id: Id) {
        match self.anchors.remove(&id) {
            None => {}
            Some(Anchor::Scan) => self.scan.retain(|s| *s != id),
            Some(Anchor::Eq { attr, keys }) => {
                if let Some(lane) = self.eq.get_mut(&attr) {
                    for key in &keys {
                        if let Some(ids) = lane.get_mut(key) {
                            ids.retain(|s| *s != id);
                            if ids.is_empty() {
                                lane.remove(key);
                            }
                        }
                    }
                    if lane.is_empty() {
                        self.eq.remove(&attr);
                    }
                }
            }
            Some(Anchor::Range { attr }) => {
                if let Some(by_id) = self.ranges.get_mut(&attr) {
                    if by_id.remove(&id).is_some() {
                        self.dirty = true;
                    }
                    if by_id.is_empty() {
                        self.ranges.remove(&attr);
                    }
                }
            }
        }
    }

    /// Number of registered queries (indexed + scanned).
    pub fn len(&self) -> usize {
        self.anchors.len()
    }

    /// True when no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of queries on the scan (non-indexable) path.
    pub fn scan_len(&self) -> usize {
        self.scan.len()
    }

    /// Number of queries registered under an index lane.
    pub fn indexed_len(&self) -> usize {
        self.anchors.len() - self.scan.len()
    }

    /// Drains the count of candidates produced via the equality lanes.
    pub fn take_eq_lane_hits(&mut self) -> u64 {
        std::mem::take(&mut self.eq_lane_hits)
    }

    /// Candidate queries for a document, filled into `out` (cleared first):
    /// every scan-list query plus the indexed queries whose lane the
    /// document's top-level attribute values hit. A superset of the true
    /// matches; adjacent duplicates removed.
    pub fn candidates(&mut self, doc: &Document, out: &mut Vec<Id>) {
        self.rebuild_if_dirty();
        out.clear();
        out.extend_from_slice(&self.scan);
        let mut key_scratch = std::mem::take(&mut self.key_scratch);
        let mut hits = 0u64;
        Self::probe(&self.eq, &self.trees, doc, out, &mut key_scratch, &mut hits);
        self.key_scratch = key_scratch;
        self.eq_lane_hits += hits;
        out.dedup();
    }

    /// Batched candidate generation for a write mini-batch: pays the
    /// dirty-rebuild and attribute-map lookups once for the whole batch,
    /// and fills the caller's reusable `out` buffer (cleared first) — the
    /// hot path allocates nothing. `docs[w]` is the after-image document of
    /// write `w` (`None` for deletes, which probe nothing — the caller
    /// resolves delete candidates through its result sets).
    ///
    /// `out` ends up in **columnar** layout: grouped by query id, write
    /// indices ascending within each group, no duplicates. Each query's
    /// predicate then runs over its contiguous slice, so per-query dispatch
    /// cost is paid once per batch. The pair set is exactly
    /// `{(id, w) | id ∈ candidates(docs[w])}` — the same conservative
    /// superset guarantee as [`QueryIndex::candidates`].
    pub fn candidates_batch(&mut self, docs: &[Option<&Document>], out: &mut Vec<(Id, u32)>)
    where
        Id: Ord,
    {
        self.rebuild_if_dirty();
        out.clear();
        let mut scratch = std::mem::take(&mut self.stab_scratch);
        let mut key_scratch = std::mem::take(&mut self.key_scratch);
        let mut hits = 0u64;
        for (w, doc) in docs.iter().enumerate() {
            let w = w as u32;
            for id in &self.scan {
                out.push((*id, w));
            }
            let doc = match doc {
                Some(doc) => doc,
                None => continue,
            };
            scratch.clear();
            Self::probe(&self.eq, &self.trees, doc, &mut scratch, &mut key_scratch, &mut hits);
            for id in &scratch {
                out.push((*id, w));
            }
        }
        self.stab_scratch = scratch;
        self.key_scratch = key_scratch;
        self.eq_lane_hits += hits;
        // Stable sort: equal ids keep insertion order, and insertion order
        // within one id is ascending write index (writes were visited in
        // order), so duplicates of one `(id, w)` end up adjacent.
        out.sort_by_key(|(id, _)| *id);
        out.dedup();
    }

    /// One document's probe against the equality lanes and interval trees.
    /// Array values fan out per element in the equality lanes; interval
    /// lookups use the element envelope (see the module docs for why
    /// per-element stabbing would miss multi-conjunct matches).
    fn probe(
        eq: &HashMap<String, HashMap<Vec<u8>, Vec<Id>>>,
        trees: &HashMap<String, IntervalTree<Id>>,
        doc: &Document,
        out: &mut Vec<Id>,
        key_scratch: &mut Vec<u8>,
        eq_hits: &mut u64,
    ) {
        for (attr, value) in doc.iter() {
            if let Some(lane) = eq.get(attr) {
                match value {
                    Value::Array(items) => {
                        for item in items {
                            Self::probe_eq(lane, item, out, key_scratch, eq_hits);
                        }
                    }
                    v => Self::probe_eq(lane, v, out, key_scratch, eq_hits),
                }
            }
            if let Some(tree) = trees.get(attr) {
                match value {
                    Value::Array(items) => {
                        let mut min: Option<&Value> = None;
                        let mut max: Option<&Value> = None;
                        for item in items {
                            if min.is_none_or(|m| canonical_cmp(item, m) == Ordering::Less) {
                                min = Some(item);
                            }
                            if max.is_none_or(|m| canonical_cmp(item, m) == Ordering::Greater) {
                                max = Some(item);
                            }
                        }
                        if let (Some(min), Some(max)) = (min, max) {
                            tree.intersecting(min, max, out);
                        }
                    }
                    v => tree.intersecting(v, v, out),
                }
            }
        }
    }

    fn probe_eq(
        lane: &HashMap<Vec<u8>, Vec<Id>>,
        v: &Value,
        out: &mut Vec<Id>,
        key_scratch: &mut Vec<u8>,
        hits: &mut u64,
    ) {
        key_scratch.clear();
        v.write_canonical(key_scratch);
        if let Some(ids) = lane.get(key_scratch.as_slice()) {
            out.extend_from_slice(ids);
            *hits += ids.len() as u64;
        }
    }

    /// Candidates for a *delete* (no document): deletes can only affect
    /// queries that currently contain the key, which the caller resolves
    /// through its result sets; only the scan list applies here.
    pub fn scan_candidates(&self) -> &[Id] {
        &self.scan
    }

    fn rebuild_if_dirty(&mut self) {
        if !self.dirty {
            return;
        }
        self.trees.clear();
        for (attr, by_id) in &self.ranges {
            let intervals = by_id
                .iter()
                .map(|(id, (lo, hi))| Interval { lo: lo.clone(), hi: hi.clone(), id: *id })
                .collect();
            self.trees.insert(attr.clone(), IntervalTree::build(intervals));
        }
        self.dirty = false;
    }
}

/// The combined-bound slot for `attr` (first-seen order preserved).
fn bound_slot<'a>(
    bounds: &'a mut Vec<(String, Option<Value>, Option<Value>)>,
    attr: &str,
) -> &'a mut (String, Option<Value>, Option<Value>) {
    if let Some(i) = bounds.iter().position(|(a, _, _)| a == attr) {
        return &mut bounds[i];
    }
    bounds.push((attr.to_owned(), None, None));
    bounds.last_mut().expect("just pushed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::doc;

    fn range_filter(lo: i64, hi: i64) -> Document {
        doc! { "random" => doc! { "$gte" => lo, "$lt" => hi } }
    }

    /// Convenience wrapper over the scratch-buffer API for assertions.
    fn cands<Id: Copy + Eq + Hash>(idx: &mut QueryIndex<Id>, doc: &Document) -> Vec<Id> {
        let mut out = Vec::new();
        idx.candidates(doc, &mut out);
        out
    }

    #[test]
    fn analyze_recognizes_paper_workload() {
        let r = analyze_filter(&range_filter(100, 200)).unwrap();
        assert_eq!(r.attr, "random");
        assert_eq!(r.lo, Value::Int(100));
        assert_eq!(r.hi, Value::Int(200), "conservatively inclusive");
        let eq = analyze_filter(&doc! { "color" => "red" }).unwrap();
        assert_eq!(eq.lo, Value::from("red"));
        assert_eq!(eq.hi, Value::from("red"));
        let open = analyze_filter(&doc! { "n" => doc! { "$gt" => 5i64 } }).unwrap();
        assert_eq!(open.lo, Value::Int(5));
        assert!(matches!(open.hi, Value::Object(_)), "open top clamps to bracket max");
    }

    #[test]
    fn analyze_rejects_complex_shapes() {
        assert!(analyze_filter(&doc! {}).is_none());
        assert!(analyze_filter(&doc! { "a" => 1i64, "b" => 2i64 }).is_none());
        assert!(analyze_filter(&doc! { "$or" => Vec::<Value>::new() }).is_none());
        assert!(analyze_filter(&doc! { "a" => doc! { "$ne" => 1i64 } }).is_none());
        assert!(analyze_filter(&doc! { "a.b" => 1i64 }).is_none());
        assert!(analyze_filter(&doc! { "a" => doc! { "$gte" => Value::from(vec![1i64]) } }).is_none());
        assert!(analyze_filter(&doc! { "a" => true }).is_none(), "bool literal not bracketed");
    }

    #[test]
    fn stabbing_returns_exactly_the_covering_intervals() {
        let mut idx: QueryIndex<u32> = QueryIndex::default();
        for i in 0..100u32 {
            let lo = (i as i64) * 10;
            idx.insert(i, &range_filter(lo, lo + 10));
        }
        // Value 55 lies in interval 5 only ($lt widened to inclusive can
        // also admit interval 4's hi bound = 50; 55 hits none of those).
        let c = cands(&mut idx, &doc! { "random" => 55i64 });
        assert_eq!(c, vec![5]);
        // Boundary value 50: interval 5 ($gte 50) plus interval 4's widened
        // $lt 50 — conservative superset is allowed.
        let c = cands(&mut idx, &doc! { "random" => 50i64 });
        assert!(c.contains(&5));
        assert!(c.len() <= 2);
        // Out of range: nothing.
        let c = cands(&mut idx, &doc! { "random" => 99_999i64 });
        assert!(c.is_empty());
    }

    #[test]
    fn overlapping_intervals_all_found() {
        let mut idx: QueryIndex<u32> = QueryIndex::default();
        idx.insert(1, &range_filter(0, 100));
        idx.insert(2, &range_filter(40, 60));
        idx.insert(3, &range_filter(50, 51));
        idx.insert(4, &range_filter(90, 95));
        let mut c = cands(&mut idx, &doc! { "random" => 50i64 });
        c.sort();
        assert_eq!(c, vec![1, 2, 3]);
    }

    #[test]
    fn non_indexable_queries_always_candidates() {
        let mut idx: QueryIndex<u32> = QueryIndex::default();
        idx.insert(1, &range_filter(0, 10));
        idx.insert(2, &doc! { "$or" => vec![Value::Object(doc! { "a" => 1i64 })] });
        assert_eq!(idx.scan_len(), 1);
        let c = cands(&mut idx, &doc! { "unrelated" => 1i64 });
        assert_eq!(c, vec![2], "scan queries always evaluated");
    }

    #[test]
    fn remove_unregisters_everywhere() {
        let mut idx: QueryIndex<u32> = QueryIndex::default();
        idx.insert(1, &range_filter(0, 10));
        idx.insert(2, &doc! { "complex" => doc! { "$ne" => 0i64 } });
        idx.insert(3, &doc! { "color" => "red" });
        idx.insert(4, &doc! { "n" => doc! { "$in" => vec![1i64, 2] } });
        assert_eq!(idx.len(), 4);
        for id in 1..=4 {
            idx.remove(id);
        }
        assert!(idx.is_empty());
        assert!(cands(&mut idx, &doc! { "random" => 5i64, "color" => "red", "n" => 1i64 }).is_empty());
    }

    #[test]
    fn array_values_fan_out() {
        let mut idx: QueryIndex<u32> = QueryIndex::default();
        idx.insert(1, &range_filter(0, 10));
        idx.insert(2, &range_filter(100, 110));
        let mut c = cands(&mut idx, &doc! { "random" => vec![5i64, 105] });
        c.sort();
        assert_eq!(c, vec![1, 2]);
    }

    #[test]
    fn array_envelope_covers_split_conjunct_matches() {
        // `{a: {$gt: 5, $lt: 9}}` matches `{a: [4, 10]}` under MongoDB
        // array fan-out (different elements satisfy different conjuncts);
        // per-element stabbing of the combined interval [5, 9] would miss
        // it — the envelope [4, 10] intersects and must report it.
        let mut idx: QueryIndex<u32> = QueryIndex::default();
        idx.insert(1, &doc! { "a" => doc! { "$gt" => 5i64, "$lt" => 9i64 } });
        let c = cands(&mut idx, &doc! { "a" => vec![4i64, 10] });
        assert_eq!(c, vec![1], "envelope probe catches the cross-element match");
        // And a disjoint envelope still prunes.
        assert!(cands(&mut idx, &doc! { "a" => vec![20i64, 30] }).is_empty());
    }

    #[test]
    fn string_equality_uses_the_eq_lane() {
        let mut idx: QueryIndex<u32> = QueryIndex::default();
        idx.insert(1, &doc! { "color" => "red" });
        idx.insert(2, &doc! { "color" => "blue" });
        assert_eq!(cands(&mut idx, &doc! { "color" => "red" }), vec![1]);
        assert_eq!(cands(&mut idx, &doc! { "color" => "blue" }), vec![2]);
        assert!(cands(&mut idx, &doc! { "color" => "green" }).is_empty());
        assert_eq!(idx.take_eq_lane_hits(), 2, "two probes hit the lane");
        // Int/Float canonical unification: `{n: 1}` must be hit by `1.0`.
        idx.insert(3, &doc! { "n" => 1i64 });
        assert_eq!(cands(&mut idx, &doc! { "n" => 1.0f64 }), vec![3]);
        // Array fan-out: any element equal to the literal hits.
        assert_eq!(cands(&mut idx, &doc! { "color" => vec!["green", "red"] }), vec![1]);
    }

    #[test]
    fn conjunctive_filters_anchor_instead_of_scanning() {
        let mut idx: QueryIndex<u32> = QueryIndex::default();
        // Equality atom beats the range atom as anchor.
        idx.insert(1, &doc! { "status" => "open", "price" => doc! { "$lt" => 100i64 } });
        // Range-only conjunction anchors on the (combined) interval.
        idx.insert(2, &doc! { "price" => doc! { "$gte" => 10i64, "$lt" => 20i64 }, "qty" => doc! { "$gt" => 0i64 } });
        // $in anchors on the lane when all elements are scalars.
        idx.insert(3, &doc! { "state" => doc! { "$in" => vec!["a", "b"] } });
        assert_eq!(idx.scan_len(), 0, "no conjunctive filter fell to the scan list");
        assert_eq!(idx.indexed_len(), 3);
        // Probes are supersets keyed on the anchor only.
        assert_eq!(cands(&mut idx, &doc! { "status" => "open", "price" => 500i64 }), vec![1]);
        assert!(cands(&mut idx, &doc! { "status" => "closed", "price" => 50i64 }).is_empty());
        assert_eq!(cands(&mut idx, &doc! { "price" => 15i64 }), vec![2]);
        assert_eq!(cands(&mut idx, &doc! { "state" => "b" }), vec![3]);
        assert_eq!(cands(&mut idx, &doc! { "state" => "c" }), Vec::<u32>::new());
    }

    #[test]
    fn legacy_options_reproduce_the_old_planner() {
        let mut idx: QueryIndex<u32> = QueryIndex::with_options(IndexOptions::legacy());
        idx.insert(1, &range_filter(0, 10));
        idx.insert(2, &doc! { "status" => "open", "price" => doc! { "$lt" => 100i64 } });
        assert_eq!(idx.scan_len(), 1, "legacy planner scans conjunctions");
        assert_eq!(idx.indexed_len(), 1);
        let c = cands(&mut idx, &doc! { "random" => 5i64 });
        assert!(c.contains(&1));
        assert!(c.contains(&2), "scan queries always candidates");
    }

    #[test]
    fn batch_candidates_agree_with_serial_candidates() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let mut idx: QueryIndex<u32> = QueryIndex::default();
        for i in 0..50u32 {
            let lo = rng.gen_range(-40..40i64);
            idx.insert(i, &range_filter(lo, lo + rng.gen_range(0..20i64)));
        }
        idx.insert(50, &doc! { "$or" => vec![Value::Object(doc! { "a" => 1i64 })] });
        idx.insert(51, &doc! { "other" => 3i64 });
        let docs: Vec<Option<Document>> = (0..16)
            .map(|w| {
                if w % 5 == 4 {
                    None // delete
                } else {
                    Some(doc! { "random" => rng.gen_range(-50..50i64), "other" => w as i64 })
                }
            })
            .collect();
        let refs: Vec<Option<&Document>> = docs.iter().map(Option::as_ref).collect();
        let mut pairs = Vec::new();
        idx.candidates_batch(&refs, &mut pairs);
        // Columnar invariants: grouped by id, writes ascending, no dupes.
        for win in pairs.windows(2) {
            assert!(win[0] < win[1], "sorted unique pairs");
        }
        // Exact agreement with the serial path, write by write.
        for (w, doc) in docs.iter().enumerate() {
            let mut serial = match doc {
                Some(d) => cands(&mut idx, d),
                None => idx.scan_candidates().to_vec(),
            };
            serial.sort_unstable();
            serial.dedup();
            let mut batched: Vec<u32> =
                pairs.iter().filter(|(_, bw)| *bw == w as u32).map(|(id, _)| *id).collect();
            batched.sort_unstable();
            assert_eq!(batched, serial, "write {w}");
        }
    }

    #[test]
    fn candidates_are_superset_of_true_matches() {
        use invalidb_query::{MongoQueryEngine, QueryEngine};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let mut idx: QueryIndex<usize> = QueryIndex::default();
        let mut prepared = Vec::new();
        for i in 0..200usize {
            let lo = rng.gen_range(-100..100i64);
            let hi = lo + rng.gen_range(0..30i64);
            let filter = range_filter(lo, hi);
            let spec = invalidb_common::QuerySpec::filter("t", filter.clone());
            prepared.push(MongoQueryEngine.prepare(&spec).unwrap());
            idx.insert(i, &filter);
        }
        for _ in 0..500 {
            let doc = doc! { "random" => rng.gen_range(-120..120i64) };
            let candidates = cands(&mut idx, &doc);
            for (i, p) in prepared.iter().enumerate() {
                if p.matches(&doc) {
                    assert!(candidates.contains(&i), "index missed a true match");
                }
            }
        }
    }

    /// Property test across generated filter shapes and documents
    /// (including arrays, nulls, floats and multi-attribute conjunctions):
    /// the candidate set must be a superset of the true matches, whatever
    /// the planner chose as anchor.
    #[test]
    fn candidates_superset_property_for_arbitrary_shapes() {
        use invalidb_query::{MongoQueryEngine, QueryEngine};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(29);
        let attrs = ["a", "b", "c"];
        let colors = ["red", "green", "blue"];
        let gen_value = |rng: &mut StdRng| -> Value {
            match rng.gen_range(0..4) {
                0 => Value::Int(rng.gen_range(-20..20i64)),
                1 => Value::Float(rng.gen_range(-20.0..20.0)),
                2 => Value::from(colors[rng.gen_range(0..colors.len())]),
                _ => Value::Bool(rng.gen_bool(0.5)),
            }
        };
        let mut filters: Vec<Document> = Vec::new();
        for _ in 0..150 {
            let n_conj = 1 + usize::from(rand::Rng::gen_bool(&mut rng, 0.5));
            let mut f = Document::new();
            for _ in 0..n_conj {
                let attr = attrs[rng.gen_range(0..attrs.len())];
                if f.contains_key(attr) {
                    continue;
                }
                match rng.gen_range(0..5) {
                    0 => {
                        f.insert(attr, gen_value(&mut rng));
                    }
                    1 => {
                        let lo = rng.gen_range(-20..20i64);
                        f.insert(
                            attr,
                            doc! { "$gte" => lo, "$lt" => lo + rng.gen_range(0..10i64) },
                        );
                    }
                    2 => {
                        f.insert(attr, doc! { "$gt" => rng.gen_range(-20..20i64) });
                    }
                    3 => {
                        let vals: Vec<Value> =
                            (0..rng.gen_range(0..4)).map(|_| gen_value(&mut rng)).collect();
                        f.insert(attr, doc! { "$in" => Value::Array(vals) });
                    }
                    _ => {
                        f.insert(attr, doc! { "$ne" => gen_value(&mut rng) });
                    }
                }
            }
            filters.push(f);
        }
        for opts in [IndexOptions::default(), IndexOptions { eq_lanes: false, conjunctive: true }] {
            let mut idx: QueryIndex<usize> = QueryIndex::with_options(opts);
            let mut prepared = Vec::new();
            for (i, f) in filters.iter().enumerate() {
                let spec = invalidb_common::QuerySpec::filter("t", f.clone());
                prepared.push(MongoQueryEngine.prepare(&spec).unwrap());
                idx.insert(i, f);
            }
            let mut rng = StdRng::seed_from_u64(31);
            for _ in 0..400 {
                let mut d = Document::new();
                for attr in attrs {
                    match rng.gen_range(0..4) {
                        0 => {} // missing
                        1 => {
                            d.insert(attr, gen_value(&mut rng));
                        }
                        2 => {
                            let vals: Vec<Value> =
                                (0..rng.gen_range(0..4)).map(|_| gen_value(&mut rng)).collect();
                            d.insert(attr, Value::Array(vals));
                        }
                        _ => {
                            d.insert(attr, Value::Null);
                        }
                    }
                }
                let candidates = cands(&mut idx, &d);
                for (i, p) in prepared.iter().enumerate() {
                    if p.matches(&d) {
                        assert!(
                            candidates.contains(&i),
                            "opts {opts:?}: index missed true match of {:?} against {d}",
                            filters[i]
                        );
                    }
                }
            }
        }
    }
}
