//! Multi-query index for the filtering stage.
//!
//! A naive matching node evaluates *every* of its queries against every
//! incoming after-image — O(queries) per write. The InvaliDB thesis lists
//! *multi-query optimizations* for exactly this hot path; this module
//! implements the one that fits the paper's workload (§6.1: thousands of
//! range predicates over one attribute): queries whose filter is a single
//! top-level **range or equality condition** are indexed in a per-attribute
//! **interval tree**, so a write only visits the queries whose interval its
//! attribute value stabs — O(log queries + hits).
//!
//! The index is *conservative*: it may return supersets (bounds are
//! widened to inclusive), never misses. Every candidate is still verified
//! with the full predicate evaluation, so correctness never depends on the
//! index. Queries with any other shape fall into a scan list and are
//! evaluated the classic way.
//!
//! The tree is static and rebuilt lazily on the first lookup after a
//! subscription change — subscription churn is orders of magnitude rarer
//! than writes (the paper's measurement phases hold the query set constant).

use invalidb_common::{canonical_cmp, Document, Key, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::Hash;

/// An inclusive value interval (conservatively widened from the query).
#[derive(Debug, Clone)]
struct Interval<Id> {
    lo: Value,
    hi: Value,
    id: Id,
}

/// Result of analyzing a filter document for indexability.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexableRange {
    /// The single attribute the filter constrains.
    pub attr: String,
    /// Inclusive lower bound.
    pub lo: Value,
    /// Inclusive upper bound.
    pub hi: Value,
}

/// Analyzes a filter document: indexable iff it is exactly one top-level
/// condition of the form `{attr: literal}` (scalar) or
/// `{attr: {$eq/$gt/$gte/$lt/$lte: scalar, ...}}` with only range operators.
pub fn analyze_filter(filter: &Document) -> Option<IndexableRange> {
    if filter.len() != 1 {
        return None;
    }
    let (attr, cond) = filter.iter().next()?;
    if attr.starts_with('$') || attr.contains('.') {
        return None; // dotted paths interact with array fan-out; keep scanned
    }
    let scalar = |v: &Value| matches!(v.type_rank(), 1 | 2); // numbers, strings
    match cond {
        Value::Object(obj) if obj.keys().any(|k| k.starts_with('$')) => {
            let mut lo: Option<Value> = None;
            let mut hi: Option<Value> = None;
            for (op, v) in obj.iter() {
                if !scalar(v) {
                    return None;
                }
                match op {
                    "$eq" => {
                        lo = Some(tighten(lo, v, Ordering::Greater));
                        hi = Some(tighten(hi, v, Ordering::Less));
                    }
                    // Conservative: strict bounds widen to inclusive.
                    "$gt" | "$gte" => lo = Some(tighten(lo, v, Ordering::Greater)),
                    "$lt" | "$lte" => hi = Some(tighten(hi, v, Ordering::Less)),
                    _ => return None,
                }
            }
            let lo = lo.unwrap_or(bracket_min());
            let hi = hi.unwrap_or(bracket_max());
            Some(IndexableRange { attr: attr.to_owned(), lo, hi })
        }
        literal if scalar(literal) => {
            Some(IndexableRange { attr: attr.to_owned(), lo: literal.clone(), hi: literal.clone() })
        }
        _ => None,
    }
}

fn tighten(current: Option<Value>, candidate: &Value, keep_if: Ordering) -> Value {
    match current {
        None => candidate.clone(),
        Some(cur) => {
            if canonical_cmp(candidate, &cur) == keep_if {
                candidate.clone()
            } else {
                cur
            }
        }
    }
}

/// Smallest scalar under the canonical order (NaN opens the number bracket).
fn bracket_min() -> Value {
    Value::Float(f64::NAN)
}

/// A value above every number and string: the empty object.
fn bracket_max() -> Value {
    Value::Object(Document::new())
}

/// Static centered interval tree (sorted by `lo`, max-`hi` augmented).
struct IntervalTree<Id> {
    /// Intervals sorted by `(lo, insertion order)`.
    intervals: Vec<Interval<Id>>,
    /// `max_hi[i]` = maximum `hi` in the segment-tree node `i` covers.
    max_hi: Vec<Option<Value>>,
}

impl<Id: Copy> IntervalTree<Id> {
    fn build(mut intervals: Vec<Interval<Id>>) -> Self {
        intervals.sort_by(|a, b| canonical_cmp(&a.lo, &b.lo));
        let mut tree = Self { max_hi: vec![None; intervals.len() * 4 + 4], intervals };
        if !tree.intervals.is_empty() {
            tree.augment(1, 0, tree.intervals.len() - 1);
        }
        tree
    }

    fn augment(&mut self, node: usize, l: usize, r: usize) -> Value {
        if l == r {
            let hi = self.intervals[l].hi.clone();
            self.max_hi[node] = Some(hi.clone());
            return hi;
        }
        let mid = (l + r) / 2;
        let left = self.augment(node * 2, l, mid);
        let right = self.augment(node * 2 + 1, mid + 1, r);
        let max = if canonical_cmp(&left, &right) == Ordering::Less { right } else { left };
        self.max_hi[node] = Some(max.clone());
        max
    }

    fn stab(&self, v: &Value, out: &mut Vec<Id>) {
        if self.intervals.is_empty() {
            return;
        }
        self.stab_rec(1, 0, self.intervals.len() - 1, v, out);
    }

    fn stab_rec(&self, node: usize, l: usize, r: usize, v: &Value, out: &mut Vec<Id>) {
        // Prune: no interval below this node reaches up to `v`.
        match &self.max_hi[node] {
            Some(max) if canonical_cmp(max, v) != Ordering::Less => {}
            _ => return,
        }
        // Prune: intervals are sorted by lo; if even the leftmost lo > v,
        // nothing here contains v.
        if canonical_cmp(&self.intervals[l].lo, v) == Ordering::Greater {
            return;
        }
        if l == r {
            // lo <= v (checked above) and hi >= v (max_hi == hi here).
            out.push(self.intervals[l].id);
            return;
        }
        let mid = (l + r) / 2;
        self.stab_rec(node * 2, l, mid, v, out);
        self.stab_rec(node * 2 + 1, mid + 1, r, v, out);
    }
}

/// The per-(tenant, collection) multi-query index.
pub struct QueryIndex<Id: Copy + Eq + Hash> {
    /// Raw indexed intervals per attribute (source of truth).
    ranges: HashMap<String, HashMap<Id, (Value, Value)>>,
    /// Built trees (lazily rebuilt when dirty).
    trees: HashMap<String, IntervalTree<Id>>,
    /// Queries that could not be indexed: always evaluated.
    scan: Vec<Id>,
    dirty: bool,
}

impl<Id: Copy + Eq + Hash> Default for QueryIndex<Id> {
    fn default() -> Self {
        Self { ranges: HashMap::new(), trees: HashMap::new(), scan: Vec::new(), dirty: false }
    }
}

impl<Id: Copy + Eq + Hash> QueryIndex<Id> {
    /// Registers a query. Indexable filters go to the interval trees;
    /// everything else to the scan list.
    pub fn insert(&mut self, id: Id, filter: &Document) {
        match analyze_filter(filter) {
            Some(range) => {
                self.ranges.entry(range.attr).or_default().insert(id, (range.lo, range.hi));
                self.dirty = true;
            }
            None => self.scan.push(id),
        }
    }

    /// Unregisters a query.
    pub fn remove(&mut self, id: Id) {
        self.scan.retain(|s| *s != id);
        for by_attr in self.ranges.values_mut() {
            if by_attr.remove(&id).is_some() {
                self.dirty = true;
            }
        }
    }

    /// Number of registered queries (indexed + scanned).
    pub fn len(&self) -> usize {
        self.scan.len() + self.ranges.values().map(HashMap::len).sum::<usize>()
    }

    /// True when no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of queries on the scan (non-indexable) path.
    pub fn scan_len(&self) -> usize {
        self.scan.len()
    }

    /// Candidate queries for a document: every scan-list query plus the
    /// indexed queries whose interval is stabbed by one of the document's
    /// top-level scalar attribute values. A superset of the true matches.
    pub fn candidates(&mut self, doc: &Document) -> Vec<Id> {
        self.rebuild_if_dirty();
        let mut out = self.scan.clone();
        for (attr, value) in doc.iter() {
            if let Some(tree) = self.trees.get(attr) {
                match value {
                    // Arrays fan out (MongoDB semantics: any element hits).
                    Value::Array(items) => {
                        for item in items {
                            tree.stab(item, &mut out);
                        }
                    }
                    v => tree.stab(v, &mut out),
                }
            }
        }
        out.dedup();
        out
    }

    /// Batched candidate generation for a write mini-batch: pays the
    /// dirty-rebuild, attribute-map lookups and scratch allocation once for
    /// the whole batch instead of per write. `docs[w]` is the after-image
    /// document of write `w` (`None` for deletes, which stab nothing — the
    /// caller resolves delete candidates through its result sets).
    ///
    /// Returns `(id, write_index)` pairs in **columnar** layout: grouped by
    /// query id (ascending), write indices ascending within each group, no
    /// duplicates. Each query's predicate then runs over its contiguous
    /// slice, so per-query dispatch cost is paid once per batch. The pair
    /// set is exactly `{(id, w) | id ∈ candidates(docs[w])}` — the same
    /// conservative superset guarantee as [`QueryIndex::candidates`].
    pub fn candidates_batch(&mut self, docs: &[Option<&Document>]) -> Vec<(Id, u32)>
    where
        Id: Ord,
    {
        self.rebuild_if_dirty();
        let mut pairs: Vec<(Id, u32)> = Vec::new();
        let mut scratch: Vec<Id> = Vec::new();
        for (w, doc) in docs.iter().enumerate() {
            let w = w as u32;
            for id in &self.scan {
                pairs.push((*id, w));
            }
            let doc = match doc {
                Some(doc) => doc,
                None => continue,
            };
            scratch.clear();
            for (attr, value) in doc.iter() {
                if let Some(tree) = self.trees.get(attr) {
                    match value {
                        // Arrays fan out (MongoDB semantics: any element hits).
                        Value::Array(items) => {
                            for item in items {
                                tree.stab(item, &mut scratch);
                            }
                        }
                        v => tree.stab(v, &mut scratch),
                    }
                }
            }
            for id in &scratch {
                pairs.push((*id, w));
            }
        }
        // Stable sort: equal ids keep insertion order, and insertion order
        // within one id is ascending write index (writes were visited in
        // order), so duplicates of one `(id, w)` end up adjacent.
        pairs.sort_by_key(|(id, _)| *id);
        pairs.dedup();
        pairs
    }

    /// Candidates for a *delete* (no document): deletes can only affect
    /// queries that currently contain the key, which the caller resolves
    /// through its result sets; only the scan list is returned here.
    pub fn scan_candidates(&self) -> Vec<Id> {
        self.scan.clone()
    }

    fn rebuild_if_dirty(&mut self) {
        if !self.dirty {
            return;
        }
        self.trees.clear();
        for (attr, by_id) in &self.ranges {
            let intervals = by_id
                .iter()
                .map(|(id, (lo, hi))| Interval { lo: lo.clone(), hi: hi.clone(), id: *id })
                .collect();
            self.trees.insert(attr.clone(), IntervalTree::build(intervals));
        }
        self.dirty = false;
    }
}

// Keys are unused here but keep the module self-contained for tests below.
#[allow(unused)]
fn _assert_key_unused(_: Key) {}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::doc;

    fn range_filter(lo: i64, hi: i64) -> Document {
        doc! { "random" => doc! { "$gte" => lo, "$lt" => hi } }
    }

    #[test]
    fn analyze_recognizes_paper_workload() {
        let r = analyze_filter(&range_filter(100, 200)).unwrap();
        assert_eq!(r.attr, "random");
        assert_eq!(r.lo, Value::Int(100));
        assert_eq!(r.hi, Value::Int(200), "conservatively inclusive");
        let eq = analyze_filter(&doc! { "color" => "red" }).unwrap();
        assert_eq!(eq.lo, Value::from("red"));
        assert_eq!(eq.hi, Value::from("red"));
        let open = analyze_filter(&doc! { "n" => doc! { "$gt" => 5i64 } }).unwrap();
        assert_eq!(open.lo, Value::Int(5));
        assert!(matches!(open.hi, Value::Object(_)), "open top clamps to bracket max");
    }

    #[test]
    fn analyze_rejects_complex_shapes() {
        assert!(analyze_filter(&doc! {}).is_none());
        assert!(analyze_filter(&doc! { "a" => 1i64, "b" => 2i64 }).is_none());
        assert!(analyze_filter(&doc! { "$or" => Vec::<Value>::new() }).is_none());
        assert!(analyze_filter(&doc! { "a" => doc! { "$ne" => 1i64 } }).is_none());
        assert!(analyze_filter(&doc! { "a.b" => 1i64 }).is_none());
        assert!(analyze_filter(&doc! { "a" => doc! { "$gte" => Value::from(vec![1i64]) } }).is_none());
        assert!(analyze_filter(&doc! { "a" => true }).is_none(), "bool literal not bracketed");
    }

    #[test]
    fn stabbing_returns_exactly_the_covering_intervals() {
        let mut idx: QueryIndex<u32> = QueryIndex::default();
        for i in 0..100u32 {
            let lo = (i as i64) * 10;
            idx.insert(i, &range_filter(lo, lo + 10));
        }
        // Value 55 lies in interval 5 only ($lt widened to inclusive can
        // also admit interval 4's hi bound = 50; 55 hits none of those).
        let c = idx.candidates(&doc! { "random" => 55i64 });
        assert_eq!(c, vec![5]);
        // Boundary value 50: interval 5 ($gte 50) plus interval 4's widened
        // $lt 50 — conservative superset is allowed.
        let c = idx.candidates(&doc! { "random" => 50i64 });
        assert!(c.contains(&5));
        assert!(c.len() <= 2);
        // Out of range: nothing.
        let c = idx.candidates(&doc! { "random" => 99_999i64 });
        assert!(c.is_empty());
    }

    #[test]
    fn overlapping_intervals_all_found() {
        let mut idx: QueryIndex<u32> = QueryIndex::default();
        idx.insert(1, &range_filter(0, 100));
        idx.insert(2, &range_filter(40, 60));
        idx.insert(3, &range_filter(50, 51));
        idx.insert(4, &range_filter(90, 95));
        let mut c = idx.candidates(&doc! { "random" => 50i64 });
        c.sort();
        assert_eq!(c, vec![1, 2, 3]);
    }

    #[test]
    fn non_indexable_queries_always_candidates() {
        let mut idx: QueryIndex<u32> = QueryIndex::default();
        idx.insert(1, &range_filter(0, 10));
        idx.insert(2, &doc! { "$or" => vec![Value::Object(doc! { "a" => 1i64 })] });
        assert_eq!(idx.scan_len(), 1);
        let c = idx.candidates(&doc! { "unrelated" => 1i64 });
        assert_eq!(c, vec![2], "scan queries always evaluated");
    }

    #[test]
    fn remove_unregisters_everywhere() {
        let mut idx: QueryIndex<u32> = QueryIndex::default();
        idx.insert(1, &range_filter(0, 10));
        idx.insert(2, &doc! { "complex" => doc! { "$ne" => 0i64 } });
        assert_eq!(idx.len(), 2);
        idx.remove(1);
        idx.remove(2);
        assert!(idx.is_empty());
        assert!(idx.candidates(&doc! { "random" => 5i64 }).is_empty());
    }

    #[test]
    fn array_values_fan_out() {
        let mut idx: QueryIndex<u32> = QueryIndex::default();
        idx.insert(1, &range_filter(0, 10));
        idx.insert(2, &range_filter(100, 110));
        let mut c = idx.candidates(&doc! { "random" => vec![5i64, 105] });
        c.sort();
        assert_eq!(c, vec![1, 2]);
    }

    #[test]
    fn string_equality_intervals() {
        let mut idx: QueryIndex<u32> = QueryIndex::default();
        idx.insert(1, &doc! { "color" => "red" });
        idx.insert(2, &doc! { "color" => "blue" });
        assert_eq!(idx.candidates(&doc! { "color" => "red" }), vec![1]);
        assert_eq!(idx.candidates(&doc! { "color" => "blue" }), vec![2]);
        assert!(idx.candidates(&doc! { "color" => "green" }).is_empty());
    }

    #[test]
    fn batch_candidates_agree_with_serial_candidates() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let mut idx: QueryIndex<u32> = QueryIndex::default();
        for i in 0..50u32 {
            let lo = rng.gen_range(-40..40i64);
            idx.insert(i, &range_filter(lo, lo + rng.gen_range(0..20i64)));
        }
        idx.insert(50, &doc! { "$or" => vec![Value::Object(doc! { "a" => 1i64 })] });
        let docs: Vec<Option<Document>> = (0..16)
            .map(|w| {
                if w % 5 == 4 {
                    None // delete
                } else {
                    Some(doc! { "random" => rng.gen_range(-50..50i64), "other" => w as i64 })
                }
            })
            .collect();
        let refs: Vec<Option<&Document>> = docs.iter().map(Option::as_ref).collect();
        let pairs = idx.candidates_batch(&refs);
        // Columnar invariants: grouped by id, writes ascending, no dupes.
        for win in pairs.windows(2) {
            assert!(win[0] < win[1], "sorted unique pairs");
        }
        // Exact agreement with the serial path, write by write.
        for (w, doc) in docs.iter().enumerate() {
            let mut serial = match doc {
                Some(d) => idx.candidates(d),
                None => idx.scan_candidates(),
            };
            serial.sort_unstable();
            serial.dedup();
            let mut batched: Vec<u32> =
                pairs.iter().filter(|(_, bw)| *bw == w as u32).map(|(id, _)| *id).collect();
            batched.sort_unstable();
            assert_eq!(batched, serial, "write {w}");
        }
    }

    #[test]
    fn candidates_are_superset_of_true_matches() {
        use invalidb_query::{MongoQueryEngine, QueryEngine};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let mut idx: QueryIndex<usize> = QueryIndex::default();
        let mut prepared = Vec::new();
        for i in 0..200usize {
            let lo = rng.gen_range(-100..100i64);
            let hi = lo + rng.gen_range(0..30i64);
            let filter = range_filter(lo, hi);
            let spec = invalidb_common::QuerySpec::filter("t", filter.clone());
            prepared.push(MongoQueryEngine.prepare(&spec).unwrap());
            idx.insert(i, &filter);
        }
        for _ in 0..500 {
            let doc = doc! { "random" => rng.gen_range(-120..120i64) };
            let candidates = idx.candidates(&doc);
            for (i, p) in prepared.iter().enumerate() {
                if p.matches(&doc) {
                    assert!(candidates.contains(&i), "index missed a true match");
                }
            }
        }
    }
}
