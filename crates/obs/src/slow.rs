//! The slow-query log: per-query latency/match-cost accounting.
//!
//! Thousands of continuous queries share one matching grid (the SharedDB
//! problem): when the pipeline slows down, the operator's first question
//! is *which query is eating the grid*. The matching and sorting stages
//! feed per-query evaluation costs here; the log keeps a bounded table
//! keyed by `(tenant, query hash)` and reports the top offenders by
//! cumulative cost.

use invalidb_common::trace::now_micros;
use invalidb_common::Document;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Default maximum number of distinct queries tracked.
pub const DEFAULT_SLOW_LOG_CAPACITY: usize = 512;

/// Accumulated cost accounting for one continuous query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SlowQueryEntry {
    /// Owning tenant (app-server id).
    pub tenant: String,
    /// The query's hash (`QueryHash` raw value).
    pub query_hash: u64,
    /// Human-readable query label (collection + predicate display),
    /// captured on first sighting.
    pub label: String,
    /// Number of evaluations charged to this query.
    pub evals: u64,
    /// Total microseconds spent evaluating this query.
    pub total_us: u64,
    /// Most expensive single evaluation, microseconds.
    pub max_us: u64,
    /// Cost of the most recent evaluation, microseconds.
    pub last_us: u64,
    /// Wall-clock microseconds of the most recent evaluation.
    pub last_seen_micros: u64,
}

impl SlowQueryEntry {
    /// Mean cost per evaluation, rounded, in microseconds.
    pub fn mean_us(&self) -> u64 {
        if self.evals == 0 {
            0
        } else {
            (self.total_us as f64 / self.evals as f64).round() as u64
        }
    }

    /// Encodes the entry as a document (the JSON object model).
    pub fn to_document(&self) -> Document {
        let mut d = Document::with_capacity(9);
        d.insert("tenant", self.tenant.as_str());
        d.insert("query_hash", self.query_hash as i64);
        d.insert("label", self.label.as_str());
        d.insert("evals", self.evals as i64);
        d.insert("total_us", self.total_us as i64);
        d.insert("mean_us", self.mean_us() as i64);
        d.insert("max_us", self.max_us as i64);
        d.insert("last_us", self.last_us as i64);
        d.insert("last_seen_micros", self.last_seen_micros as i64);
        d
    }
}

struct SlowInner {
    capacity: usize,
    entries: Mutex<HashMap<(String, u64), SlowQueryEntry>>,
}

/// Bounded per-query cost accounting table. Cheap to clone (all clones
/// share state). When full, recording a *new* query evicts the entry with
/// the smallest total cost, so persistent offenders are never displaced
/// by one-off cheap queries.
#[derive(Clone)]
pub struct SlowQueryLog {
    inner: Arc<SlowInner>,
}

impl SlowQueryLog {
    /// A log tracking at most `capacity` distinct queries (minimum 1).
    pub fn with_capacity(capacity: usize) -> SlowQueryLog {
        SlowQueryLog {
            inner: Arc::new(SlowInner {
                capacity: capacity.max(1),
                entries: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// Charges one evaluation of `cost_us` microseconds to
    /// `(tenant, query_hash)`. `label` is called only when the query is
    /// seen for the first time.
    pub fn charge(&self, tenant: &str, query_hash: u64, label: impl FnOnce() -> String, cost_us: u64) {
        let mut entries = self.inner.entries.lock();
        let key = (tenant.to_owned(), query_hash);
        if let Some(e) = entries.get_mut(&key) {
            e.evals += 1;
            e.total_us += cost_us;
            e.max_us = e.max_us.max(cost_us);
            e.last_us = cost_us;
            e.last_seen_micros = now_micros();
            return;
        }
        if entries.len() >= self.inner.capacity {
            if let Some(victim) = entries.iter().min_by_key(|(_, e)| e.total_us).map(|(k, _)| k.clone())
            {
                entries.remove(&victim);
            }
        }
        entries.insert(
            key,
            SlowQueryEntry {
                tenant: tenant.to_owned(),
                query_hash,
                label: label(),
                evals: 1,
                total_us: cost_us,
                max_us: cost_us,
                last_us: cost_us,
                last_seen_micros: now_micros(),
            },
        );
    }

    /// Forgets a query (it was unsubscribed and is not coming back).
    pub fn forget(&self, tenant: &str, query_hash: u64) {
        self.inner.entries.lock().remove(&(tenant.to_owned(), query_hash));
    }

    /// Number of distinct queries currently tracked.
    pub fn len(&self) -> usize {
        self.inner.entries.lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `k` most expensive queries by total cost, most expensive first.
    /// Ties break by label so the order is deterministic.
    pub fn top(&self, k: usize) -> Vec<SlowQueryEntry> {
        let mut all: Vec<SlowQueryEntry> = self.inner.entries.lock().values().cloned().collect();
        all.sort_by(|a, b| b.total_us.cmp(&a.total_us).then_with(|| a.label.cmp(&b.label)));
        all.truncate(k);
        all
    }

    /// Renders [`SlowQueryLog::top`] as a JSON array string.
    pub fn top_json(&self, k: usize) -> String {
        let docs: Vec<String> =
            self.top(k).iter().map(|e| invalidb_json::to_string(&e.to_document())).collect();
        format!("[{}]", docs.join(","))
    }
}

impl Default for SlowQueryLog {
    fn default() -> SlowQueryLog {
        SlowQueryLog::with_capacity(DEFAULT_SLOW_LOG_CAPACITY)
    }
}

struct PendingCharge {
    /// Captured on the query's first local sighting since the last flush;
    /// consumed when the flush creates the shared entry.
    label: Option<String>,
    evals: u64,
    total_us: u64,
    max_us: u64,
    last_us: u64,
}

/// A per-task charge accumulator for pipeline stages.
///
/// The matching and sorting bolts evaluate queries on their hot paths;
/// charging the shared [`SlowQueryLog`] there would serialize every task
/// on one global lock per evaluation. Instead each bolt charges its own
/// (unsynchronized) scratch and flushes the batch on tick, so the shared
/// lock is taken once per tick interval rather than once per write×query.
#[derive(Default)]
pub struct SlowQueryScratch {
    pending: HashMap<(String, u64), PendingCharge>,
}

impl SlowQueryScratch {
    /// An empty scratch.
    pub fn new() -> SlowQueryScratch {
        SlowQueryScratch::default()
    }

    /// Charges one evaluation of `cost_us` microseconds locally. `label`
    /// is called only on the query's first local sighting since the last
    /// flush.
    pub fn charge(
        &mut self,
        tenant: &str,
        query_hash: u64,
        label: impl FnOnce() -> String,
        cost_us: u64,
    ) {
        if let Some(p) = self.pending.get_mut(&(tenant.to_owned(), query_hash)) {
            p.evals += 1;
            p.total_us += cost_us;
            p.max_us = p.max_us.max(cost_us);
            p.last_us = cost_us;
            return;
        }
        self.pending.insert(
            (tenant.to_owned(), query_hash),
            PendingCharge {
                label: Some(label()),
                evals: 1,
                total_us: cost_us,
                max_us: cost_us,
                last_us: cost_us,
            },
        );
    }

    /// Charges `evals` evaluations totalling `cost_us` microseconds in one
    /// call. The batched matching path times a whole per-query candidate
    /// slice with a single clock-read pair; the per-evaluation cost is
    /// approximated by the slice mean for the max/last fields.
    pub fn charge_n(
        &mut self,
        tenant: &str,
        query_hash: u64,
        label: impl FnOnce() -> String,
        evals: u64,
        cost_us: u64,
    ) {
        if evals == 0 {
            return;
        }
        let per_eval = cost_us / evals;
        if let Some(p) = self.pending.get_mut(&(tenant.to_owned(), query_hash)) {
            p.evals += evals;
            p.total_us += cost_us;
            p.max_us = p.max_us.max(per_eval);
            p.last_us = per_eval;
            return;
        }
        self.pending.insert(
            (tenant.to_owned(), query_hash),
            PendingCharge {
                label: Some(label()),
                evals,
                total_us: cost_us,
                max_us: per_eval,
                last_us: per_eval,
            },
        );
    }

    /// Number of distinct queries with unflushed charges.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether there is anything to flush.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Drains every accumulated charge into `log` under a single lock
    /// acquisition. A no-op when nothing was charged.
    pub fn flush(&mut self, log: &SlowQueryLog) {
        if self.pending.is_empty() {
            return;
        }
        let now = now_micros();
        let mut entries = log.inner.entries.lock();
        for ((tenant, query_hash), p) in self.pending.drain() {
            if let Some(e) = entries.get_mut(&(tenant.clone(), query_hash)) {
                e.evals += p.evals;
                e.total_us += p.total_us;
                e.max_us = e.max_us.max(p.max_us);
                e.last_us = p.last_us;
                e.last_seen_micros = now;
                continue;
            }
            if entries.len() >= log.inner.capacity {
                if let Some(victim) =
                    entries.iter().min_by_key(|(_, e)| e.total_us).map(|(k, _)| k.clone())
                {
                    entries.remove(&victim);
                }
            }
            entries.insert(
                (tenant.clone(), query_hash),
                SlowQueryEntry {
                    tenant,
                    query_hash,
                    label: p.label.unwrap_or_default(),
                    evals: p.evals,
                    total_us: p.total_us,
                    max_us: p.max_us,
                    last_us: p.last_us,
                    last_seen_micros: now,
                },
            );
        }
    }
}

impl std::fmt::Debug for SlowQueryScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowQueryScratch").field("pending", &self.pending.len()).finish()
    }
}

impl std::fmt::Debug for SlowQueryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowQueryLog").field("tracked", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_query() {
        let log = SlowQueryLog::with_capacity(8);
        log.charge("t1", 42, || "a".into(), 100);
        log.charge("t1", 42, || "never".into(), 300);
        log.charge("t2", 42, || "b".into(), 50);
        assert_eq!(log.len(), 2);
        let top = log.top(10);
        assert_eq!(top[0].label, "a");
        assert_eq!(top[0].evals, 2);
        assert_eq!(top[0].total_us, 400);
        assert_eq!(top[0].max_us, 300);
        assert_eq!(top[0].mean_us(), 200);
        assert_eq!(top[1].label, "b");
    }

    #[test]
    fn eviction_keeps_expensive_queries() {
        let log = SlowQueryLog::with_capacity(2);
        log.charge("t", 1, || "heavy".into(), 10_000);
        log.charge("t", 2, || "medium".into(), 500);
        log.charge("t", 3, || "new".into(), 100);
        // The cheapest entry ("medium", 500us total) is evicted to make
        // room; the persistent offender ("heavy") survives.
        let top = log.top(10);
        let labels: Vec<&str> = top.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, vec!["heavy", "new"]);
    }

    #[test]
    fn forget_removes_entry() {
        let log = SlowQueryLog::with_capacity(4);
        log.charge("t", 1, || "q".into(), 10);
        log.forget("t", 1);
        assert!(log.is_empty());
    }

    #[test]
    fn scratch_batches_and_flushes() {
        let log = SlowQueryLog::with_capacity(8);
        let mut scratch = SlowQueryScratch::new();
        scratch.charge("t", 1, || "a".into(), 100);
        scratch.charge("t", 1, || "never".into(), 300);
        scratch.charge("t", 2, || "b".into(), 50);
        assert_eq!(scratch.len(), 2);
        assert!(log.is_empty(), "nothing reaches the shared log before flush");
        scratch.flush(&log);
        assert!(scratch.is_empty());
        let top = log.top(10);
        assert_eq!(top[0].label, "a");
        assert_eq!(top[0].evals, 2);
        assert_eq!(top[0].total_us, 400);
        assert_eq!(top[0].max_us, 300);
        assert_eq!(top[0].last_us, 300);
        assert_eq!(top[1].label, "b");
        // A second flush accumulates into the existing entries.
        scratch.charge("t", 1, || "ignored".into(), 50);
        scratch.flush(&log);
        let top = log.top(10);
        assert_eq!(top[0].evals, 3);
        assert_eq!(top[0].total_us, 450);
        assert_eq!(top[0].label, "a", "label captured once, kept across flushes");
    }

    #[test]
    fn scratch_flush_respects_capacity_eviction() {
        let log = SlowQueryLog::with_capacity(2);
        log.charge("t", 1, || "heavy".into(), 10_000);
        log.charge("t", 2, || "medium".into(), 500);
        let mut scratch = SlowQueryScratch::new();
        scratch.charge("t", 3, || "new".into(), 100);
        scratch.flush(&log);
        let labels: Vec<String> = log.top(10).into_iter().map(|e| e.label).collect();
        assert_eq!(labels, vec!["heavy", "new"]);
    }
}
