//! Point-in-time metric snapshots and their renderers.

use invalidb_common::{Document, Histogram, Value};
use std::collections::BTreeMap;

/// Summary statistics of one histogram, in whole microseconds.
///
/// All fields are integers so the JSON and text renderers carry exactly
/// the same numbers and the JSON round-trips losslessly. Besides the
/// summary statistics the snapshot also carries the non-empty log-linear
/// buckets, so the Prometheus renderer can expose a *native* histogram
/// (cumulative `le` series plus `_sum`/`_count`) instead of gauges.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples, rounded to the nearest integer.
    pub sum: u64,
    /// Mean, rounded to the nearest integer.
    pub mean: u64,
    /// Median (p50).
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Smallest recorded sample (0 when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
    /// `(upper bound, count)` of every non-empty log-linear bucket, in
    /// ascending bound order. Counts are per-bucket (not cumulative).
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSummary {
    /// Summarizes a histogram.
    pub fn of(h: &Histogram) -> HistogramSummary {
        HistogramSummary {
            count: h.count(),
            sum: h.sum().round() as u64,
            mean: h.mean().round() as u64,
            p50: h.quantile(0.50),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
            min: if h.count() == 0 { 0 } else { h.min() },
            max: h.max(),
            buckets: h.nonzero_buckets().collect(),
        }
    }
}

/// A point-in-time copy of every metric a [`crate::MetricsRegistry`] can
/// see: counters, gauges, and histogram summaries, each keyed by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Gauges (levels).
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries.
    pub hists: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// The per-stage latency breakdown recorded via
    /// [`crate::MetricsRegistry::record_trace`], as
    /// `(stage name, summary)` rows in pipeline order, ending with the
    /// `total` row. Empty when no traces were recorded.
    pub fn stage_breakdown(&self) -> Vec<(String, HistogramSummary)> {
        use crate::registry::{E2E_HIST, STAGE_PREFIX};
        let mut rows: Vec<(String, HistogramSummary)> = invalidb_common::ALL_STAGES
            .iter()
            .filter_map(|stage| {
                let key = format!("{STAGE_PREFIX}{stage}");
                self.hists.get(&key).map(|s| (stage.to_string(), s.clone()))
            })
            .collect();
        if let Some(total) = self.hists.get(E2E_HIST) {
            rows.push(("total".to_owned(), total.clone()));
        }
        rows
    }

    /// Renders the snapshot as an aligned, human-readable text table.
    pub fn to_text_table(&self) -> String {
        let mut out = String::new();
        let name_width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.hists.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(4)
            .max("metric".len());
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            out.push_str(&format!("{:<name_width$}  {:>12}  kind\n", "metric", "value"));
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<name_width$}  {v:>12}  counter\n"));
            }
            for (name, v) in &self.gauges {
                out.push_str(&format!("{name:<name_width$}  {v:>12}  gauge\n"));
            }
        }
        if !self.hists.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!(
                "{:<name_width$}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}\n",
                "histogram (µs)", "count", "mean", "p50", "p99", "p999", "min", "max"
            ));
            for (name, h) in &self.hists {
                out.push_str(&format!(
                    "{:<name_width$}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}\n",
                    name, h.count, h.mean, h.p50, h.p99, h.p999, h.min, h.max
                ));
            }
        }
        out
    }

    /// Encodes the snapshot as a document (the JSON object model).
    pub fn to_document(&self) -> Document {
        let mut d = Document::with_capacity(3);
        let mut counters = Document::with_capacity(self.counters.len());
        for (name, v) in &self.counters {
            counters.insert(name.as_str(), *v as i64);
        }
        d.insert("counters", counters);
        let mut gauges = Document::with_capacity(self.gauges.len());
        for (name, v) in &self.gauges {
            gauges.insert(name.as_str(), *v as i64);
        }
        d.insert("gauges", gauges);
        let mut hists = Document::with_capacity(self.hists.len());
        for (name, h) in &self.hists {
            let mut hd = Document::with_capacity(9);
            hd.insert("count", h.count as i64);
            hd.insert("sum", h.sum as i64);
            hd.insert("mean", h.mean as i64);
            hd.insert("p50", h.p50 as i64);
            hd.insert("p99", h.p99 as i64);
            hd.insert("p999", h.p999 as i64);
            hd.insert("min", h.min as i64);
            hd.insert("max", h.max as i64);
            hd.insert(
                "buckets",
                Value::Array(
                    h.buckets
                        .iter()
                        .map(|(le, n)| Value::Array(vec![(*le as i64).into(), (*n as i64).into()]))
                        .collect(),
                ),
            );
            hists.insert(name.as_str(), hd);
        }
        d.insert("hists", hists);
        d
    }

    /// Decodes a snapshot from its document encoding.
    pub fn from_document(d: &Document) -> Option<MetricsSnapshot> {
        let mut snap = MetricsSnapshot::default();
        for (name, v) in d.get("counters")?.as_object()?.iter() {
            snap.counters.insert(name.to_owned(), v.as_i64()? as u64);
        }
        for (name, v) in d.get("gauges")?.as_object()?.iter() {
            snap.gauges.insert(name.to_owned(), v.as_i64()? as u64);
        }
        for (name, v) in d.get("hists")?.as_object()?.iter() {
            let hd = v.as_object()?;
            let field = |k: &str| hd.get(k).and_then(Value::as_i64).map(|x| x as u64);
            // `sum`, `p999`, and `buckets` are additive fields: snapshots
            // serialized before they existed decode with zero/empty.
            let mut buckets = Vec::new();
            if let Some(rows) = hd.get("buckets").and_then(Value::as_array) {
                for row in rows {
                    let pair = row.as_array()?;
                    if pair.len() != 2 {
                        return None;
                    }
                    buckets.push((pair[0].as_i64()? as u64, pair[1].as_i64()? as u64));
                }
            }
            snap.hists.insert(
                name.to_owned(),
                HistogramSummary {
                    count: field("count")?,
                    sum: field("sum").unwrap_or(0),
                    mean: field("mean")?,
                    p50: field("p50")?,
                    p99: field("p99")?,
                    p999: field("p999").unwrap_or(0),
                    min: field("min")?,
                    max: field("max")?,
                    buckets,
                },
            );
        }
        Some(snap)
    }

    /// Renders the snapshot as a JSON string.
    pub fn to_json(&self) -> String {
        invalidb_json::to_string(&self.to_document())
    }

    /// Parses a snapshot from the JSON produced by [`MetricsSnapshot::to_json`].
    pub fn from_json(json: &str) -> Option<MetricsSnapshot> {
        let doc = invalidb_json::parse_document(json).ok()?;
        MetricsSnapshot::from_document(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("writes".into(), 12);
        snap.counters.insert("matched".into(), 7);
        snap.gauges.insert("queue_depth".into(), 3);
        snap.hists.insert(
            "stage.matching".into(),
            HistogramSummary {
                count: 5,
                sum: 200,
                mean: 40,
                p50: 32,
                p99: 130,
                p999: 130,
                min: 10,
                max: 130,
                buckets: vec![(10, 1), (33, 2), (47, 1), (131, 1)],
            },
        );
        snap
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let snap = sample();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn text_and_json_carry_the_same_numbers() {
        let snap = sample();
        let text = snap.to_text_table();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        // Every number in the JSON round-trip also appears in the table.
        for (name, v) in &back.counters {
            assert!(text.contains(name));
            assert!(text.contains(&v.to_string()), "{v} missing from table");
        }
        for (name, h) in &back.hists {
            assert!(text.contains(name));
            for v in [h.count, h.mean, h.p50, h.p99, h.min, h.max] {
                assert!(text.contains(&v.to_string()), "{v} missing from table");
            }
        }
    }

    #[test]
    fn stage_breakdown_orders_rows_and_appends_total() {
        let mut snap = MetricsSnapshot::default();
        snap.hists.insert("stage.matching".into(), HistogramSummary::default());
        snap.hists.insert("stage.ingestion".into(), HistogramSummary::default());
        snap.hists.insert("stage.total".into(), HistogramSummary::default());
        snap.hists.insert("unrelated".into(), HistogramSummary::default());
        let rows: Vec<String> = snap.stage_breakdown().into_iter().map(|(n, _)| n).collect();
        assert_eq!(rows, vec!["ingestion", "matching", "total"]);
    }

    #[test]
    fn legacy_hist_documents_decode() {
        // Snapshots serialized before sum/p999/buckets existed still parse.
        let json = r#"{"counters":{},"gauges":{},"hists":{"lat":{"count":1,"mean":2,"p50":2,"p99":2,"min":2,"max":2}}}"#;
        let snap = MetricsSnapshot::from_json(json).unwrap();
        assert_eq!(snap.hists["lat"].count, 1);
        assert_eq!(snap.hists["lat"].sum, 0);
        assert_eq!(snap.hists["lat"].p999, 0);
        assert!(snap.hists["lat"].buckets.is_empty());
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = MetricsSnapshot::default();
        assert!(snap.to_text_table().is_empty());
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, back);
    }
}
