//! Point-in-time metric snapshots and their renderers.

use invalidb_common::{Document, Histogram, Value};
use std::collections::BTreeMap;

/// Summary statistics of one histogram, in whole microseconds.
///
/// All fields are integers so the JSON and text renderers carry exactly
/// the same numbers and the JSON round-trips losslessly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Mean, rounded to the nearest integer.
    pub mean: u64,
    /// Median (p50).
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Smallest recorded sample (0 when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
}

impl HistogramSummary {
    /// Summarizes a histogram.
    pub fn of(h: &Histogram) -> HistogramSummary {
        HistogramSummary {
            count: h.count(),
            mean: h.mean().round() as u64,
            p50: h.quantile(0.50),
            p99: h.quantile(0.99),
            min: if h.count() == 0 { 0 } else { h.min() },
            max: h.max(),
        }
    }
}

/// A point-in-time copy of every metric a [`crate::MetricsRegistry`] can
/// see: counters, gauges, and histogram summaries, each keyed by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Gauges (levels).
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries.
    pub hists: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// The per-stage latency breakdown recorded via
    /// [`crate::MetricsRegistry::record_trace`], as
    /// `(stage name, summary)` rows in pipeline order, ending with the
    /// `total` row. Empty when no traces were recorded.
    pub fn stage_breakdown(&self) -> Vec<(String, HistogramSummary)> {
        use crate::registry::{E2E_HIST, STAGE_PREFIX};
        let mut rows: Vec<(String, HistogramSummary)> = invalidb_common::ALL_STAGES
            .iter()
            .filter_map(|stage| {
                let key = format!("{STAGE_PREFIX}{stage}");
                self.hists.get(&key).map(|s| (stage.to_string(), *s))
            })
            .collect();
        if let Some(total) = self.hists.get(E2E_HIST) {
            rows.push(("total".to_owned(), *total));
        }
        rows
    }

    /// Renders the snapshot as an aligned, human-readable text table.
    pub fn to_text_table(&self) -> String {
        let mut out = String::new();
        let name_width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.hists.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(4)
            .max("metric".len());
        if !self.counters.is_empty() || !self.gauges.is_empty() {
            out.push_str(&format!("{:<name_width$}  {:>12}  kind\n", "metric", "value"));
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<name_width$}  {v:>12}  counter\n"));
            }
            for (name, v) in &self.gauges {
                out.push_str(&format!("{name:<name_width$}  {v:>12}  gauge\n"));
            }
        }
        if !self.hists.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!(
                "{:<name_width$}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}\n",
                "histogram (µs)", "count", "mean", "p50", "p99", "min", "max"
            ));
            for (name, h) in &self.hists {
                out.push_str(&format!(
                    "{:<name_width$}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}  {:>8}\n",
                    name, h.count, h.mean, h.p50, h.p99, h.min, h.max
                ));
            }
        }
        out
    }

    /// Encodes the snapshot as a document (the JSON object model).
    pub fn to_document(&self) -> Document {
        let mut d = Document::with_capacity(3);
        let mut counters = Document::with_capacity(self.counters.len());
        for (name, v) in &self.counters {
            counters.insert(name.as_str(), *v as i64);
        }
        d.insert("counters", counters);
        let mut gauges = Document::with_capacity(self.gauges.len());
        for (name, v) in &self.gauges {
            gauges.insert(name.as_str(), *v as i64);
        }
        d.insert("gauges", gauges);
        let mut hists = Document::with_capacity(self.hists.len());
        for (name, h) in &self.hists {
            let mut hd = Document::with_capacity(6);
            hd.insert("count", h.count as i64);
            hd.insert("mean", h.mean as i64);
            hd.insert("p50", h.p50 as i64);
            hd.insert("p99", h.p99 as i64);
            hd.insert("min", h.min as i64);
            hd.insert("max", h.max as i64);
            hists.insert(name.as_str(), hd);
        }
        d.insert("hists", hists);
        d
    }

    /// Decodes a snapshot from its document encoding.
    pub fn from_document(d: &Document) -> Option<MetricsSnapshot> {
        let mut snap = MetricsSnapshot::default();
        for (name, v) in d.get("counters")?.as_object()?.iter() {
            snap.counters.insert(name.to_owned(), v.as_i64()? as u64);
        }
        for (name, v) in d.get("gauges")?.as_object()?.iter() {
            snap.gauges.insert(name.to_owned(), v.as_i64()? as u64);
        }
        for (name, v) in d.get("hists")?.as_object()?.iter() {
            let hd = v.as_object()?;
            let field = |k: &str| hd.get(k).and_then(Value::as_i64).map(|x| x as u64);
            snap.hists.insert(
                name.to_owned(),
                HistogramSummary {
                    count: field("count")?,
                    mean: field("mean")?,
                    p50: field("p50")?,
                    p99: field("p99")?,
                    min: field("min")?,
                    max: field("max")?,
                },
            );
        }
        Some(snap)
    }

    /// Renders the snapshot as a JSON string.
    pub fn to_json(&self) -> String {
        invalidb_json::to_string(&self.to_document())
    }

    /// Parses a snapshot from the JSON produced by [`MetricsSnapshot::to_json`].
    pub fn from_json(json: &str) -> Option<MetricsSnapshot> {
        let doc = invalidb_json::parse_document(json).ok()?;
        MetricsSnapshot::from_document(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("writes".into(), 12);
        snap.counters.insert("matched".into(), 7);
        snap.gauges.insert("queue_depth".into(), 3);
        snap.hists.insert(
            "stage.matching".into(),
            HistogramSummary { count: 5, mean: 40, p50: 32, p99: 130, min: 10, max: 130 },
        );
        snap
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let snap = sample();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn text_and_json_carry_the_same_numbers() {
        let snap = sample();
        let text = snap.to_text_table();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        // Every number in the JSON round-trip also appears in the table.
        for (name, v) in &back.counters {
            assert!(text.contains(name));
            assert!(text.contains(&v.to_string()), "{v} missing from table");
        }
        for (name, h) in &back.hists {
            assert!(text.contains(name));
            for v in [h.count, h.mean, h.p50, h.p99, h.min, h.max] {
                assert!(text.contains(&v.to_string()), "{v} missing from table");
            }
        }
    }

    #[test]
    fn stage_breakdown_orders_rows_and_appends_total() {
        let mut snap = MetricsSnapshot::default();
        snap.hists.insert("stage.matching".into(), HistogramSummary::default());
        snap.hists.insert("stage.ingestion".into(), HistogramSummary::default());
        snap.hists.insert("stage.total".into(), HistogramSummary::default());
        snap.hists.insert("unrelated".into(), HistogramSummary::default());
        let rows: Vec<String> = snap.stage_breakdown().into_iter().map(|(n, _)| n).collect();
        assert_eq!(rows, vec!["ingestion", "matching", "total"]);
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = MetricsSnapshot::default();
        assert!(snap.to_text_table().is_empty());
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, back);
    }
}
