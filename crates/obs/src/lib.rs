//! Observability for the InvaliDB notification pipeline.
//!
//! The paper's evaluation (§6, Fig. 6) is about *where latency lives*:
//! how much of a notification's end-to-end time is spent in the app
//! server, the event layer, ingestion, matching, sorting, and delivery.
//! This crate provides the machinery to answer that for a running system
//! without external dependencies:
//!
//! * **Stage tracing** — `invalidb_common::TraceContext` rides in message
//!   envelopes; [`MetricsRegistry::record_trace`] folds completed traces
//!   into per-stage latency histograms.
//! * **Metrics registry** — one [`MetricsRegistry`] unifies named counters,
//!   gauges, and log-bucket histograms with the topology/link metrics that
//!   previously lived scattered in `crates/stream`
//!   ([`ComponentMetrics`], [`LinkMetrics`], [`LinkRegistry`],
//!   [`TopologyMetrics`] are now hosted here; `invalidb-stream` re-exports
//!   them for back-compat).
//! * **Export** — [`MetricsSnapshot`] renders as an aligned text table or
//!   as JSON, and both renderers carry exactly the same numbers (the JSON
//!   round-trips losslessly).

#![deny(missing_docs)]

mod link;
mod registry;
mod snapshot;

pub use link::{ComponentMetrics, LinkMetrics, LinkRegistry, TopologyMetrics};
pub use registry::MetricsRegistry;
pub use snapshot::{HistogramSummary, MetricsSnapshot};
