//! Observability for the InvaliDB notification pipeline.
//!
//! The paper's evaluation (§6, Fig. 6) is about *where latency lives*:
//! how much of a notification's end-to-end time is spent in the app
//! server, the event layer, ingestion, matching, sorting, and delivery.
//! This crate provides the machinery to answer that for a running system
//! without external dependencies:
//!
//! * **Stage tracing** — `invalidb_common::TraceContext` rides in message
//!   envelopes; [`MetricsRegistry::record_trace`] folds completed traces
//!   into per-stage latency histograms.
//! * **Metrics registry** — one [`MetricsRegistry`] unifies named counters,
//!   gauges, and log-bucket histograms with the topology/link metrics that
//!   previously lived scattered in `crates/stream`
//!   ([`ComponentMetrics`], [`LinkMetrics`], [`LinkRegistry`],
//!   [`TopologyMetrics`] are now hosted here; `invalidb-stream` re-exports
//!   them for back-compat).
//! * **Export** — [`MetricsSnapshot`] renders as an aligned text table or
//!   as JSON, and both renderers carry exactly the same numbers (the JSON
//!   round-trips losslessly).
//!
//! And, on top of those, the **operational plane** for a running cluster:
//!
//! * **Admin endpoint** — [`AdminServer`], a dependency-free HTTP/1.0
//!   server exposing `/metrics` (Prometheus text exposition via
//!   [`to_prometheus`], same numbers as the JSON), `/metrics.json`,
//!   `/healthz`, `/queries`, and `/flight`.
//! * **Health model** — [`HealthMonitor`] derives
//!   Healthy/Degraded/Unavailable (with machine-readable
//!   [`HealthCause`]s) from heartbeat staleness, queue saturation,
//!   ingestion lag, and drop/decode-error deltas in metric snapshots.
//! * **Flight recorder** — [`FlightRecorder`], a fixed-size ring of
//!   structured pipeline events (reconnects, drops, decode errors,
//!   subscription churn, health transitions), auto-snapshotted when the
//!   cluster becomes Unavailable. Every [`MetricsRegistry`] hosts one
//!   ([`MetricsRegistry::flight`]), so components that already share a
//!   registry feed the same ring.
//! * **Slow-query log** — [`SlowQueryLog`]
//!   ([`MetricsRegistry::slow_queries`]): per-query match/sort cost
//!   accounting, top-K by cumulative cost.

#![deny(missing_docs)]

mod admin;
mod flight;
mod health;
mod link;
mod prom;
mod registry;
mod slow;
mod snapshot;

pub use admin::{AdminConfig, AdminRoute, AdminServer};
pub use flight::{
    events_from_json, events_to_json, FlightEvent, FlightEventKind, FlightRecorder,
    DEFAULT_FLIGHT_CAPACITY,
};
pub use health::{
    HealthCause, HealthCauseKind, HealthMonitor, HealthPolicy, HealthReport, HealthStatus,
};
pub use link::{ComponentMetrics, LinkMetrics, LinkRegistry, TopologyMetrics};
pub use prom::{
    from_prometheus, from_prometheus_federated, to_prometheus, to_prometheus_federated,
    to_prometheus_labeled, COUNTER_FAMILY, GAUGE_FAMILY, HISTOGRAM_FAMILY, HISTOGRAM_STAT_FAMILY,
};
pub use registry::MetricsRegistry;
pub use slow::{SlowQueryEntry, SlowQueryLog, SlowQueryScratch, DEFAULT_SLOW_LOG_CAPACITY};
pub use snapshot::{HistogramSummary, MetricsSnapshot};
