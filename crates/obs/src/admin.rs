//! The admin endpoint: a tiny HTTP/1.0 text server exposing a registry's
//! operational plane to scrapers and humans.
//!
//! Routes:
//!
//! * `GET /metrics` — Prometheus text exposition 0.0.4 (see
//!   [`crate::to_prometheus`]); same numbers as the JSON renderer.
//! * `GET /metrics.json` — the [`MetricsSnapshot`] JSON document.
//! * `GET /healthz` — latest [`HealthReport`] as JSON; `200` while
//!   Healthy or Degraded, `503` when Unavailable.
//! * `GET /queries` — the slow-query log's top offenders as JSON.
//! * `GET /flight` — the flight-recorder dump as JSON.
//!
//! No external HTTP dependency: requests are parsed by hand (method +
//! path only) and responses always close the connection, which is all a
//! Prometheus scraper or `curl` needs. The accept/shutdown discipline
//! mirrors `invalidb-net`'s `BrokerServer`: a non-blocking listener
//! polled every 50 ms against a shared `running` flag, live connections
//! tracked for teardown.
//!
//! A background evaluator thread feeds snapshots to a [`HealthMonitor`]
//! on a fixed cadence, so health transitions (and their flight-recorder
//! events) happen even when nobody is scraping.

use crate::health::{HealthMonitor, HealthPolicy, HealthReport, HealthStatus};
use crate::prom::to_prometheus;
use crate::registry::MetricsRegistry;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How often blocked reads/accepts wake up to poll the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A custom route handler: returns `(status, content type, body)`.
pub type AdminRoute = Arc<dyn Fn() -> (u16, &'static str, String) + Send + Sync>;

/// Tuning for [`AdminServer`].
#[derive(Clone)]
pub struct AdminConfig {
    /// Thresholds for the health state machine.
    pub health: HealthPolicy,
    /// Cadence of the background health evaluator.
    pub eval_interval: Duration,
    /// How many slow-query entries `/queries` returns.
    pub slow_query_top_k: usize,
    /// Extra routes, consulted *before* the built-ins — a host can add
    /// endpoints (the coordinator's `/cluster`) or shadow a built-in (its
    /// federated `/metrics`). Exact-path match, GET only.
    pub routes: Vec<(String, AdminRoute)>,
}

impl AdminConfig {
    /// Adds (or shadows) a route at `path`.
    pub fn with_route(
        mut self,
        path: impl Into<String>,
        handler: impl Fn() -> (u16, &'static str, String) + Send + Sync + 'static,
    ) -> AdminConfig {
        self.routes.push((path.into(), Arc::new(handler)));
        self
    }
}

impl Default for AdminConfig {
    fn default() -> AdminConfig {
        AdminConfig {
            health: HealthPolicy::default(),
            eval_interval: Duration::from_millis(250),
            slow_query_top_k: 32,
            routes: Vec::new(),
        }
    }
}

impl std::fmt::Debug for AdminConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdminConfig")
            .field("health", &self.health)
            .field("eval_interval", &self.eval_interval)
            .field("slow_query_top_k", &self.slow_query_top_k)
            .field("routes", &self.routes.iter().map(|(p, _)| p.as_str()).collect::<Vec<_>>())
            .finish()
    }
}

struct Shared {
    registry: MetricsRegistry,
    config: AdminConfig,
    monitor: Mutex<HealthMonitor>,
    latest: Mutex<HealthReport>,
    running: Arc<AtomicBool>,
    /// Live connection sockets keyed by a per-connection token, for
    /// shutdown(). Admin connections are one-per-request, so each handler
    /// removes its own entry when it finishes — otherwise every scrape
    /// would leak one fd for the life of the server.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

/// The admin HTTP server. Binds a listener, spawns an accept thread and
/// a health-evaluator thread; [`AdminServer::shutdown`] (or drop) stops
/// both and closes every live connection.
pub struct AdminServer {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    eval_thread: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Binds `addr` and starts serving `registry`'s operational plane.
    pub fn bind(
        addr: impl ToSocketAddrs,
        registry: MetricsRegistry,
        config: AdminConfig,
    ) -> io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let monitor = HealthMonitor::new(config.health.clone());
        let shared = Arc::new(Shared {
            registry,
            config,
            monitor: Mutex::new(monitor),
            latest: Mutex::new(HealthReport::default()),
            running: Arc::new(AtomicBool::new(true)),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("admin-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn admin accept thread");

        let eval_shared = Arc::clone(&shared);
        let eval_thread = thread::Builder::new()
            .name("admin-health".into())
            .spawn(move || eval_loop(eval_shared))
            .expect("spawn admin health thread");

        Ok(AdminServer {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            eval_thread: Some(eval_thread),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// The registry this server exposes (a shared handle).
    pub fn registry(&self) -> MetricsRegistry {
        self.shared.registry.clone()
    }

    /// The most recent health report computed by the evaluator thread.
    pub fn health(&self) -> HealthReport {
        self.shared.latest.lock().clone()
    }

    /// The flight-recorder dump frozen when the cluster last transitioned
    /// to Unavailable, if it ever did.
    pub fn last_incident(&self) -> Option<Vec<crate::flight::FlightEvent>> {
        self.shared.monitor.lock().last_incident().map(|e| e.to_vec())
    }

    /// Stops accepting, closes every connection, and joins both
    /// background threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.running.store(false, Ordering::SeqCst);
        for (_, conn) in self.shared.conns.lock().drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.eval_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for AdminServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdminServer").field("local_addr", &self.local_addr).finish()
    }
}

fn eval_loop(shared: Arc<Shared>) {
    while shared.running.load(Ordering::SeqCst) {
        let snap = shared.registry.snapshot();
        let report = {
            let mut monitor = shared.monitor.lock();
            monitor.observe(&snap, &shared.registry.flight())
        };
        shared.registry.set_gauge("health.status", report.status.as_gauge());
        *shared.latest.lock() = report;
        // Sleep in poll-sized steps so shutdown never waits a full
        // evaluation interval.
        let mut remaining = shared.config.eval_interval;
        while shared.running.load(Ordering::SeqCst) && remaining > Duration::ZERO {
            let step = remaining.min(POLL_INTERVAL);
            thread::sleep(step);
            remaining = remaining.saturating_sub(step);
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    listener.set_nonblocking(true).expect("set_nonblocking");
    while shared.running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().insert(id, clone);
                }
                let conn_shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("admin-conn-{peer}"))
                    .spawn(move || {
                        serve_connection(stream, &conn_shared);
                        conn_shared.conns.lock().remove(&id);
                    })
                    .expect("spawn admin connection thread");
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    let request = match read_request_head(&mut stream) {
        Some(r) => r,
        None => return,
    };
    let (status, content_type, body) = match route(&request, shared) {
        Some(r) => r,
        None => (404, "text/plain; charset=utf-8", "not found\n".to_owned()),
    };
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.shutdown(Shutdown::Both);
}

/// Reads until the end of the request head and returns the request line
/// (`GET /path HTTP/1.x`). Bodies are ignored — every route is a GET.
fn read_request_head(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        if buf.len() > 16 * 1024 {
            return None; // refuse absurd request heads
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    head.lines().next().map(|l| l.to_owned())
}

/// Dispatches a request line to its handler. Returns
/// `(status, content type, body)`; `None` is a 404.
fn route(request_line: &str, shared: &Shared) -> Option<(u16, &'static str, String)> {
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return Some((404, "text/plain; charset=utf-8", "only GET is supported\n".to_owned()));
    }
    let path = path.split('?').next().unwrap_or(path);
    if let Some((_, handler)) = shared.config.routes.iter().find(|(p, _)| p == path) {
        return Some(handler());
    }
    match path {
        "/metrics" => {
            let snap = shared.registry.snapshot();
            Some((200, "text/plain; version=0.0.4; charset=utf-8", to_prometheus(&snap)))
        }
        "/metrics.json" => {
            let snap = shared.registry.snapshot();
            Some((200, "application/json", snap.to_json()))
        }
        "/healthz" => {
            let report = shared.latest.lock().clone();
            let status = if report.status == HealthStatus::Unavailable { 503 } else { 200 };
            Some((status, "application/json", report.to_json()))
        }
        "/queries" => {
            let top = shared.registry.slow_queries().top_json(shared.config.slow_query_top_k);
            Some((200, "application/json", top))
        }
        "/flight" => Some((200, "application/json", shared.registry.flight().dump_json())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::FlightEventKind;
    use crate::prom::from_prometheus;
    use crate::snapshot::MetricsSnapshot;

    fn get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let status: u16 = response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
        let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_metrics_health_queries_and_flight() {
        let registry = MetricsRegistry::new();
        registry.inc("writes");
        registry.record("lat", 120);
        registry.flight().record(FlightEventKind::Reconnect, "peer a");
        registry.slow_queries().charge("t", 7, || "q".into(), 900);
        let mut admin =
            AdminServer::bind("127.0.0.1:0", registry.clone(), AdminConfig::default()).unwrap();
        let addr = admin.local_addr();

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        let scraped = from_prometheus(&body).unwrap();
        assert_eq!(scraped.counters["writes"], 1);
        assert_eq!(scraped.hists["lat"].count, 1);

        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\""));

        let (status, body) = get(addr, "/queries");
        assert_eq!(status, 200);
        assert!(body.contains("\"query_hash\":7"));

        let (status, body) = get(addr, "/flight");
        assert_eq!(status, 200);
        assert!(body.contains("\"kind\":\"reconnect\""));

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);

        admin.shutdown();
        assert!(TcpStream::connect(addr).is_err() || get_fails_fast(addr));
    }

    fn get_fails_fast(addr: std::net::SocketAddr) -> bool {
        // After shutdown the listener is gone; a connect may still succeed
        // briefly on some platforms (backlog), but reads must fail/EOF.
        match TcpStream::connect(addr) {
            Err(_) => true,
            Ok(mut s) => {
                s.set_read_timeout(Some(Duration::from_millis(200))).ok();
                let mut buf = [0u8; 1];
                !matches!(s.read(&mut buf), Ok(n) if n > 0)
            }
        }
    }

    #[test]
    fn finished_connections_are_pruned() {
        let registry = MetricsRegistry::new();
        let mut admin =
            AdminServer::bind("127.0.0.1:0", registry.clone(), AdminConfig::default()).unwrap();
        let addr = admin.local_addr();
        for _ in 0..8 {
            let (status, _) = get(addr, "/healthz");
            assert_eq!(status, 200);
        }
        // Each handler drops its tracking entry after responding; give the
        // handler threads a moment to finish.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !admin.shared.conns.lock().is_empty() {
            assert!(
                std::time::Instant::now() < deadline,
                "connection handles leaked: {} still tracked",
                admin.shared.conns.lock().len()
            );
            thread::sleep(Duration::from_millis(10));
        }
        admin.shutdown();
    }

    #[test]
    fn custom_routes_extend_and_shadow_builtins() {
        let registry = MetricsRegistry::new();
        registry.inc("own.counter");
        let config = AdminConfig::default()
            .with_route("/cluster", || (200, "application/json", "{\"workers\":[]}".to_owned()))
            .with_route("/metrics", || (200, "text/plain; charset=utf-8", "shadowed\n".to_owned()));
        let mut admin = AdminServer::bind("127.0.0.1:0", registry, config).unwrap();
        let addr = admin.local_addr();
        let (status, body) = get(addr, "/cluster");
        assert_eq!(status, 200);
        assert!(body.contains("\"workers\""));
        let (_, body) = get(addr, "/metrics");
        assert_eq!(body, "shadowed\n", "custom route takes precedence over the built-in");
        // Untouched built-ins still serve.
        let (status, _) = get(addr, "/healthz");
        assert_eq!(status, 200);
        admin.shutdown();
    }

    #[test]
    fn metrics_json_equals_prometheus_numbers() {
        let registry = MetricsRegistry::new();
        registry.add("a.b", 42);
        registry.set_gauge("c.d", 9);
        registry.record("stage.matching", 77);
        let mut admin =
            AdminServer::bind("127.0.0.1:0", registry.clone(), AdminConfig::default()).unwrap();
        let addr = admin.local_addr();
        // Wait for the evaluator's first pass so the health.status gauge
        // exists and the registry is quiescent for the comparison.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !registry.snapshot().gauges.contains_key("health.status") {
            assert!(std::time::Instant::now() < deadline, "evaluator never ran");
            thread::sleep(Duration::from_millis(10));
        }
        // Scrape twice around the JSON fetch; equal first/last proves the
        // registry was quiescent, so comparing across requests is sound.
        let (_, prom1) = get(addr, "/metrics");
        let (_, json) = get(addr, "/metrics.json");
        let (_, prom2) = get(addr, "/metrics");
        assert_eq!(prom1, prom2, "registry changed mid-test");
        let via_prom = from_prometheus(&prom1).unwrap();
        let via_json = MetricsSnapshot::from_json(&json).unwrap();
        assert_eq!(via_prom, via_json);
        admin.shutdown();
    }

    #[test]
    fn unavailable_returns_503() {
        let registry = MetricsRegistry::new();
        registry.set_gauge("net.client.heartbeat_stale_ms", 60_000);
        let config = AdminConfig { eval_interval: Duration::from_millis(20), ..AdminConfig::default() };
        let mut admin = AdminServer::bind("127.0.0.1:0", registry.clone(), config).unwrap();
        let addr = admin.local_addr();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let (status, body) = get(addr, "/healthz");
            if status == 503 {
                assert!(body.contains("\"kind\":\"heartbeat_stale\""));
                break;
            }
            assert!(std::time::Instant::now() < deadline, "never became unavailable");
            thread::sleep(Duration::from_millis(20));
        }
        // The incident dump was frozen and contains the transition.
        let incident = admin.last_incident().expect("incident recorded");
        assert!(incident.iter().any(|e| e.kind == FlightEventKind::HealthTransition));
        // Heal: staleness drops, status returns to healthy (200).
        registry.set_gauge("net.client.heartbeat_stale_ms", 0);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let (status, _) = get(addr, "/healthz");
            if status == 200 {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "never healed");
            thread::sleep(Duration::from_millis(20));
        }
        admin.shutdown();
    }
}
