//! The cluster health model: a state machine deriving
//! Healthy/Degraded/Unavailable (with machine-readable causes) from
//! metric snapshots.
//!
//! The monitor is deliberately *derived* rather than event-driven: every
//! evaluation reads one [`MetricsSnapshot`] and recomputes status from
//! the gauges and counter deltas below, so components only have to keep
//! their gauges honest — no component ever calls "set health" directly.
//!
//! Signals consumed (by suffix convention, so per-partition and per-link
//! instances are picked up automatically):
//!
//! * `*.heartbeat_stale_ms` (gauge) — time since the last frame from a
//!   peer; stale past the degraded/unavailable thresholds means a broker
//!   link is partitioned.
//! * `*.connected` (gauge, 0/1) — transport link state.
//! * `*.queue_depth` (gauge) — send-queue and stage-input saturation.
//! * `*.ingest_lag_us` (gauge) — how far matching trails the write stream.
//! * `*.dropped`, `*.decode_errors` (counters) — evaluated as deltas
//!   between consecutive evaluations, so old incidents age out.

use crate::flight::{FlightEventKind, FlightRecorder};
use crate::snapshot::MetricsSnapshot;
use invalidb_common::Document;
use std::collections::BTreeMap;
use std::time::Duration;

/// Overall cluster health.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthStatus {
    /// All signals within thresholds.
    #[default]
    Healthy,
    /// Service continues but at least one signal crossed its degraded
    /// threshold (stale heartbeat, saturated queue, drops observed).
    Degraded,
    /// At least one signal crossed its unavailable threshold; pushed
    /// notifications can no longer be trusted to arrive.
    Unavailable,
}

impl HealthStatus {
    /// Stable wire name (`healthy` / `degraded` / `unavailable`).
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthStatus::Healthy => "healthy",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Unavailable => "unavailable",
        }
    }

    /// Numeric encoding for the `health.status` gauge
    /// (0 healthy, 1 degraded, 2 unavailable).
    pub fn as_gauge(&self) -> u64 {
        match self {
            HealthStatus::Healthy => 0,
            HealthStatus::Degraded => 1,
            HealthStatus::Unavailable => 2,
        }
    }
}

impl std::fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What kind of signal pushed the cluster out of Healthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthCauseKind {
    /// A peer's heartbeat is stale (`*.heartbeat_stale_ms`).
    HeartbeatStale,
    /// A transport link reports disconnected (`*.connected` == 0).
    Disconnected,
    /// A send or stage queue is saturated (`*.queue_depth`).
    QueueSaturated,
    /// Matching trails the write stream (`*.ingest_lag_us`).
    IngestionLag,
    /// Frames were dropped by backpressure since the last evaluation
    /// (`*.dropped` delta).
    QueueDrops,
    /// Frames failed to decode since the last evaluation
    /// (`*.decode_errors` delta).
    DecodeErrors,
    /// Grid cells are currently not assigned to any live worker
    /// (`*.cells_unassigned` gauge): writes for those cells are not being
    /// matched until the coordinator reassigns them.
    CellsUnassigned,
}

impl HealthCauseKind {
    /// Stable wire name of the cause kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthCauseKind::HeartbeatStale => "heartbeat_stale",
            HealthCauseKind::Disconnected => "disconnected",
            HealthCauseKind::QueueSaturated => "queue_saturated",
            HealthCauseKind::IngestionLag => "ingestion_lag",
            HealthCauseKind::QueueDrops => "queue_drops",
            HealthCauseKind::DecodeErrors => "decode_errors",
            HealthCauseKind::CellsUnassigned => "cells_unassigned",
        }
    }
}

impl std::fmt::Display for HealthCauseKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One machine-readable reason the cluster is not Healthy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthCause {
    /// What kind of signal fired.
    pub kind: HealthCauseKind,
    /// The metric that fired (full dotted name, e.g.
    /// `net.client.heartbeat_stale_ms`).
    pub subject: String,
    /// The observed value (same unit as the metric).
    pub value: u64,
    /// The threshold it crossed.
    pub threshold: u64,
}

impl HealthCause {
    /// Encodes the cause as a document (the JSON object model).
    pub fn to_document(&self) -> Document {
        let mut d = Document::with_capacity(4);
        d.insert("kind", self.kind.as_str());
        d.insert("subject", self.subject.as_str());
        d.insert("value", self.value as i64);
        d.insert("threshold", self.threshold as i64);
        d
    }
}

impl std::fmt::Display for HealthCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {} = {} (threshold {})", self.kind, self.subject, self.value, self.threshold)
    }
}

/// Thresholds for the health state machine.
#[derive(Debug, Clone)]
pub struct HealthPolicy {
    /// Heartbeat staleness above this is Degraded.
    pub heartbeat_degraded: Duration,
    /// Heartbeat staleness above this is Unavailable.
    pub heartbeat_unavailable: Duration,
    /// Queue depth (send queue or stage input) at or above this is
    /// Degraded.
    pub queue_depth_degraded: u64,
    /// Ingestion lag above this is Degraded.
    pub ingest_lag_degraded: Duration,
    /// This many drops between consecutive evaluations is Degraded.
    pub drops_degraded: u64,
    /// This many decode errors between consecutive evaluations is
    /// Degraded.
    pub decode_errors_degraded: u64,
}

impl Default for HealthPolicy {
    fn default() -> HealthPolicy {
        HealthPolicy {
            heartbeat_degraded: Duration::from_secs(2),
            heartbeat_unavailable: Duration::from_secs(10),
            queue_depth_degraded: 4096,
            ingest_lag_degraded: Duration::from_secs(1),
            drops_degraded: 1,
            decode_errors_degraded: 1,
        }
    }
}

/// One evaluation's verdict: the status plus every cause that fired.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HealthReport {
    /// Overall status.
    pub status: HealthStatus,
    /// Every signal that pushed the status out of Healthy (empty when
    /// Healthy).
    pub causes: Vec<HealthCause>,
}

impl HealthReport {
    /// Encodes the report as a document (the JSON object model).
    pub fn to_document(&self) -> Document {
        let mut d = Document::with_capacity(2);
        d.insert("status", self.status.as_str());
        let causes: Vec<invalidb_common::Value> =
            self.causes.iter().map(|c| c.to_document().into()).collect();
        d.insert("causes", causes);
        d
    }

    /// Renders the report as a JSON string.
    pub fn to_json(&self) -> String {
        invalidb_json::to_string(&self.to_document())
    }
}

/// The health state machine. Feed it snapshots with
/// [`HealthMonitor::observe`]; it tracks counter deltas between
/// evaluations, records status transitions into the flight recorder, and
/// snapshots the flight ring on transition to Unavailable.
#[derive(Debug)]
pub struct HealthMonitor {
    policy: HealthPolicy,
    status: HealthStatus,
    prev_counters: BTreeMap<String, u64>,
    last_incident: Option<Vec<crate::flight::FlightEvent>>,
    transitions: u64,
}

impl HealthMonitor {
    /// A monitor starting Healthy under `policy`.
    pub fn new(policy: HealthPolicy) -> HealthMonitor {
        HealthMonitor {
            policy,
            status: HealthStatus::Healthy,
            prev_counters: BTreeMap::new(),
            last_incident: None,
            transitions: 0,
        }
    }

    /// Current status (as of the last [`HealthMonitor::observe`]).
    pub fn status(&self) -> HealthStatus {
        self.status
    }

    /// Number of status transitions observed so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// The flight-recorder dump captured when the cluster last became
    /// Unavailable, if it ever did.
    pub fn last_incident(&self) -> Option<&[crate::flight::FlightEvent]> {
        self.last_incident.as_deref()
    }

    /// Evaluates one snapshot: computes the report, records any status
    /// transition as a [`FlightEventKind::HealthTransition`] event, and on
    /// transition to Unavailable freezes a copy of the flight ring as the
    /// incident record.
    pub fn observe(&mut self, snap: &MetricsSnapshot, flight: &FlightRecorder) -> HealthReport {
        let report = self.evaluate(snap);
        if report.status != self.status {
            let detail = format!(
                "{} -> {}{}",
                self.status,
                report.status,
                if report.causes.is_empty() {
                    String::new()
                } else {
                    format!(
                        " [{}]",
                        report.causes.iter().map(|c| c.to_string()).collect::<Vec<_>>().join("; ")
                    )
                }
            );
            flight.record(FlightEventKind::HealthTransition, detail);
            self.transitions += 1;
            if report.status == HealthStatus::Unavailable {
                self.last_incident = Some(flight.dump());
            }
            self.status = report.status;
        }
        report
    }

    /// Pure evaluation of a snapshot against the policy (no side
    /// effects on the transition state; counter deltas *are* updated).
    pub fn evaluate(&mut self, snap: &MetricsSnapshot) -> HealthReport {
        let mut causes = Vec::new();
        let mut worst = HealthStatus::Healthy;
        let p = &self.policy;

        let degraded_ms = p.heartbeat_degraded.as_millis() as u64;
        let unavailable_ms = p.heartbeat_unavailable.as_millis() as u64;
        for (name, &v) in &snap.gauges {
            if name.ends_with(".heartbeat_stale_ms") {
                if v > unavailable_ms {
                    worst = HealthStatus::Unavailable;
                    causes.push(HealthCause {
                        kind: HealthCauseKind::HeartbeatStale,
                        subject: name.clone(),
                        value: v,
                        threshold: unavailable_ms,
                    });
                } else if v > degraded_ms {
                    worst = worst.max_with(HealthStatus::Degraded);
                    causes.push(HealthCause {
                        kind: HealthCauseKind::HeartbeatStale,
                        subject: name.clone(),
                        value: v,
                        threshold: degraded_ms,
                    });
                }
            } else if name.ends_with(".connected") && v == 0 {
                worst = worst.max_with(HealthStatus::Degraded);
                causes.push(HealthCause {
                    kind: HealthCauseKind::Disconnected,
                    subject: name.clone(),
                    value: v,
                    threshold: 1,
                });
            } else if name.ends_with(".queue_depth") && v >= p.queue_depth_degraded {
                worst = worst.max_with(HealthStatus::Degraded);
                causes.push(HealthCause {
                    kind: HealthCauseKind::QueueSaturated,
                    subject: name.clone(),
                    value: v,
                    threshold: p.queue_depth_degraded,
                });
            } else if name.ends_with(".cells_unassigned") && v > 0 {
                worst = worst.max_with(HealthStatus::Degraded);
                causes.push(HealthCause {
                    kind: HealthCauseKind::CellsUnassigned,
                    subject: name.clone(),
                    value: v,
                    threshold: 1,
                });
            } else if name.ends_with(".ingest_lag_us") && v > p.ingest_lag_degraded.as_micros() as u64 {
                worst = worst.max_with(HealthStatus::Degraded);
                causes.push(HealthCause {
                    kind: HealthCauseKind::IngestionLag,
                    subject: name.clone(),
                    value: v,
                    threshold: p.ingest_lag_degraded.as_micros() as u64,
                });
            }
        }

        for (name, &v) in &snap.counters {
            let (kind, threshold) = if name.ends_with(".dropped") {
                (HealthCauseKind::QueueDrops, p.drops_degraded)
            } else if name.ends_with(".decode_errors") {
                (HealthCauseKind::DecodeErrors, p.decode_errors_degraded)
            } else {
                continue;
            };
            let prev = self.prev_counters.insert(name.clone(), v).unwrap_or(v);
            let delta = v.saturating_sub(prev);
            if delta >= threshold {
                worst = worst.max_with(HealthStatus::Degraded);
                causes.push(HealthCause { kind, subject: name.clone(), value: delta, threshold });
            }
        }

        HealthReport { status: worst, causes }
    }
}

impl HealthStatus {
    fn max_with(self, other: HealthStatus) -> HealthStatus {
        if other.as_gauge() > self.as_gauge() {
            other
        } else {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> HealthMonitor {
        HealthMonitor::new(HealthPolicy::default())
    }

    #[test]
    fn empty_snapshot_is_healthy() {
        let report = monitor().evaluate(&MetricsSnapshot::default());
        assert_eq!(report.status, HealthStatus::Healthy);
        assert!(report.causes.is_empty());
    }

    #[test]
    fn stale_heartbeat_degrades_then_fails() {
        let mut m = monitor();
        let mut snap = MetricsSnapshot::default();
        snap.gauges.insert("net.client.heartbeat_stale_ms".into(), 3_000);
        let r = m.evaluate(&snap);
        assert_eq!(r.status, HealthStatus::Degraded);
        assert_eq!(r.causes[0].kind, HealthCauseKind::HeartbeatStale);
        snap.gauges.insert("net.client.heartbeat_stale_ms".into(), 60_000);
        assert_eq!(m.evaluate(&snap).status, HealthStatus::Unavailable);
    }

    #[test]
    fn counter_deltas_age_out() {
        let mut m = monitor();
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("net.server.peer.dropped".into(), 5);
        // First sighting establishes the baseline — no delta yet.
        assert_eq!(m.evaluate(&snap).status, HealthStatus::Healthy);
        snap.counters.insert("net.server.peer.dropped".into(), 8);
        let r = m.evaluate(&snap);
        assert_eq!(r.status, HealthStatus::Degraded);
        assert_eq!(r.causes[0].value, 3);
        // No new drops: incident ages out.
        assert_eq!(m.evaluate(&snap).status, HealthStatus::Healthy);
    }

    #[test]
    fn transitions_recorded_in_flight_and_incident_frozen() {
        let mut m = monitor();
        let flight = FlightRecorder::with_capacity(16);
        let mut snap = MetricsSnapshot::default();
        m.observe(&snap, &flight);
        assert_eq!(m.transitions(), 0);

        snap.gauges.insert("net.client.heartbeat_stale_ms".into(), 60_000);
        let r = m.observe(&snap, &flight);
        assert_eq!(r.status, HealthStatus::Unavailable);
        assert_eq!(m.transitions(), 1);
        let incident = m.last_incident().expect("incident frozen");
        assert!(incident.iter().any(|e| e.kind == FlightEventKind::HealthTransition
            && e.detail.contains("healthy -> unavailable")));

        snap.gauges.insert("net.client.heartbeat_stale_ms".into(), 0);
        assert_eq!(m.observe(&snap, &flight).status, HealthStatus::Healthy);
        assert_eq!(m.transitions(), 2);
        let kinds: Vec<_> = flight.dump().into_iter().map(|e| e.detail).collect();
        assert_eq!(kinds.len(), 2);
        assert!(kinds[0].contains("healthy -> unavailable"));
        assert!(kinds[1].contains("unavailable -> healthy"));
    }

    #[test]
    fn unassigned_cells_degrade() {
        let mut m = monitor();
        let mut snap = MetricsSnapshot::default();
        snap.gauges.insert("cluster.cells_unassigned".into(), 2);
        let r = m.evaluate(&snap);
        assert_eq!(r.status, HealthStatus::Degraded);
        assert_eq!(r.causes[0].kind, HealthCauseKind::CellsUnassigned);
        snap.gauges.insert("cluster.cells_unassigned".into(), 0);
        assert_eq!(m.evaluate(&snap).status, HealthStatus::Healthy);
    }

    #[test]
    fn report_json_is_machine_readable() {
        let mut m = monitor();
        let mut snap = MetricsSnapshot::default();
        snap.gauges.insert("cluster.matching.queue_depth".into(), 9_999);
        let r = m.evaluate(&snap);
        let json = r.to_json();
        assert!(json.contains("\"status\":\"degraded\""));
        assert!(json.contains("\"kind\":\"queue_saturated\""));
        assert!(json.contains("\"subject\":\"cluster.matching.queue_depth\""));
        assert!(json.contains("\"value\":9999"));
    }
}
