//! Prometheus text exposition (format 0.0.4) for [`MetricsSnapshot`].
//!
//! InvaliDB metric names are dotted paths (`appserver.renewals`,
//! `stage.matching`), which are not legal Prometheus metric names. Rather
//! than mangle dots into underscores (lossy: `a.b_c` and `a.b.c` would
//! collide), the exposition uses fixed metric families with the original
//! name carried as a label:
//!
//! ```text
//! invalidb_counter_total{name="appserver.renewals"} 3
//! invalidb_gauge{name="net.client.heartbeat_stale_ms"} 12
//! invalidb_histogram_us_bucket{name="stage.matching",le="47"} 4
//! invalidb_histogram_us_bucket{name="stage.matching",le="+Inf"} 5
//! invalidb_histogram_us_sum{name="stage.matching"} 200
//! invalidb_histogram_us_count{name="stage.matching"} 5
//! invalidb_histogram_us_stat{name="stage.matching",stat="p99"} 130
//! ```
//!
//! Histograms are exposed as *native* Prometheus histograms: cumulative
//! `le`-labeled bucket series derived from the log-linear buckets, plus
//! `_sum` and `_count`. The precomputed summary statistics (mean and
//! quantiles, which Prometheus cannot recover exactly from buckets) ride
//! in a separate `_stat` gauge family.
//!
//! Every number is the same `u64` the JSON renderer emits, so the
//! exposition parses back into a [`MetricsSnapshot`] that is equal to the
//! one `to_json` serializes — the admin endpoint's golden-file test relies
//! on this round-trip.
//!
//! For federation, [`to_prometheus_federated`] renders one exposition for
//! a whole fleet: the coordinator's own series unlabeled, each worker's
//! series carrying a `worker="<name>"` label. The inverse,
//! [`from_prometheus_federated`], splits such a document back into
//! per-worker snapshots (key `""` holds the unlabeled series).

use crate::snapshot::MetricsSnapshot;
use std::collections::BTreeMap;

/// Metric family carrying counters.
pub const COUNTER_FAMILY: &str = "invalidb_counter_total";
/// Metric family carrying gauges.
pub const GAUGE_FAMILY: &str = "invalidb_gauge";
/// Metric family carrying native histograms (microseconds): rendered as
/// `_bucket`/`_sum`/`_count` series.
pub const HISTOGRAM_FAMILY: &str = "invalidb_histogram_us";
/// Metric family carrying histogram summary statistics (mean and
/// quantiles) that buckets alone cannot reproduce exactly.
pub const HISTOGRAM_STAT_FAMILY: &str = "invalidb_histogram_us_stat";

const HIST_STATS: [&str; 6] = ["mean", "p50", "p99", "p999", "min", "max"];

/// Renders a snapshot in Prometheus text exposition format 0.0.4.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    render(&[(snap, Vec::new())])
}

/// Renders a snapshot with extra labels (e.g. `worker="w1"`) appended to
/// every series, after the `name` label.
pub fn to_prometheus_labeled(snap: &MetricsSnapshot, extra: &[(&str, &str)]) -> String {
    let extra = extra.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    render(&[(snap, extra)])
}

/// Renders one exposition document for a whole fleet: `local`'s series
/// unlabeled, then each `(worker name, snapshot)` with a `worker` label.
/// Family headers appear exactly once.
pub fn to_prometheus_federated(
    local: &MetricsSnapshot,
    workers: &[(String, MetricsSnapshot)],
) -> String {
    let mut parts: Vec<(&MetricsSnapshot, Vec<(String, String)>)> = vec![(local, Vec::new())];
    for (name, snap) in workers {
        parts.push((snap, vec![("worker".to_string(), name.clone())]));
    }
    render(&parts)
}

fn render(parts: &[(&MetricsSnapshot, Vec<(String, String)>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# HELP {COUNTER_FAMILY} InvaliDB monotonic counters, keyed by dotted metric name.\n"
    ));
    out.push_str(&format!("# TYPE {COUNTER_FAMILY} counter\n"));
    for (snap, extra) in parts {
        for (name, v) in &snap.counters {
            out.push_str(&format!("{COUNTER_FAMILY}{{{}}} {v}\n", labels(name, extra, &[])));
        }
    }
    out.push_str(&format!(
        "# HELP {GAUGE_FAMILY} InvaliDB gauges (levels), keyed by dotted metric name.\n"
    ));
    out.push_str(&format!("# TYPE {GAUGE_FAMILY} gauge\n"));
    for (snap, extra) in parts {
        for (name, v) in &snap.gauges {
            out.push_str(&format!("{GAUGE_FAMILY}{{{}}} {v}\n", labels(name, extra, &[])));
        }
    }
    out.push_str(&format!("# HELP {HISTOGRAM_FAMILY} InvaliDB latency histograms in microseconds.\n"));
    out.push_str(&format!("# TYPE {HISTOGRAM_FAMILY} histogram\n"));
    for (snap, extra) in parts {
        for (name, h) in &snap.hists {
            let mut cumulative = 0u64;
            for (le, n) in &h.buckets {
                cumulative += n;
                out.push_str(&format!(
                    "{HISTOGRAM_FAMILY}_bucket{{{}}} {cumulative}\n",
                    labels(name, extra, &[("le", &le.to_string())])
                ));
            }
            out.push_str(&format!(
                "{HISTOGRAM_FAMILY}_bucket{{{}}} {}\n",
                labels(name, extra, &[("le", "+Inf")]),
                h.count
            ));
            out.push_str(&format!("{HISTOGRAM_FAMILY}_sum{{{}}} {}\n", labels(name, extra, &[]), h.sum));
            out.push_str(&format!(
                "{HISTOGRAM_FAMILY}_count{{{}}} {}\n",
                labels(name, extra, &[]),
                h.count
            ));
        }
    }
    out.push_str(&format!(
        "# HELP {HISTOGRAM_STAT_FAMILY} InvaliDB histogram summary statistics (microseconds).\n"
    ));
    out.push_str(&format!("# TYPE {HISTOGRAM_STAT_FAMILY} gauge\n"));
    for (snap, extra) in parts {
        for (name, h) in &snap.hists {
            for (stat, v) in HIST_STATS.iter().zip([h.mean, h.p50, h.p99, h.p999, h.min, h.max]) {
                out.push_str(&format!(
                    "{HISTOGRAM_STAT_FAMILY}{{{}}} {v}\n",
                    labels(name, extra, &[("stat", stat)])
                ));
            }
        }
    }
    out
}

/// Renders the label set of one series: the `name` label, then any extra
/// (federation) labels, then series-specific labels like `le`/`stat`.
fn labels(name: &str, extra: &[(String, String)], more: &[(&str, &str)]) -> String {
    let mut s = format!("name=\"{}\"", escape_label(name));
    for (k, v) in extra {
        s.push_str(&format!(",{k}=\"{}\"", escape_label(v)));
    }
    for (k, v) in more {
        s.push_str(&format!(",{k}=\"{}\"", escape_label(v)));
    }
    s
}

/// Parses text produced by [`to_prometheus`] back into a snapshot.
///
/// Returns `None` on any malformed sample line; unknown families and
/// comment lines are ignored (so the parser tolerates future additions).
/// Series carrying a `worker` label are ignored here — use
/// [`from_prometheus_federated`] to split a federated document.
pub fn from_prometheus(text: &str) -> Option<MetricsSnapshot> {
    let mut fleet = from_prometheus_federated(text)?;
    Some(fleet.remove("").unwrap_or_default())
}

/// Parses a (possibly federated) exposition into per-worker snapshots,
/// keyed by the `worker` label value; unlabeled series land under `""`.
pub fn from_prometheus_federated(text: &str) -> Option<BTreeMap<String, MetricsSnapshot>> {
    let bucket_family = format!("{HISTOGRAM_FAMILY}_bucket");
    let sum_family = format!("{HISTOGRAM_FAMILY}_sum");
    let count_family = format!("{HISTOGRAM_FAMILY}_count");
    let mut fleet: BTreeMap<String, MetricsSnapshot> = BTreeMap::new();
    // Cumulative bucket counts per (worker, metric name), de-cumulated at
    // the end once every bucket line for the series has been seen.
    let mut cumulative: BTreeMap<(String, String), BTreeMap<u64, u64>> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (family, rest) = line.split_once('{')?;
        let (labels, value) = rest.split_once('}')?;
        let labels = parse_labels(labels)?;
        let name = labels.iter().find(|(k, _)| k == "name").map(|(_, v)| v.clone())?;
        let worker =
            labels.iter().find(|(k, _)| k == "worker").map(|(_, v)| v.clone()).unwrap_or_default();
        let snap = fleet.entry(worker.clone()).or_default();
        if family == bucket_family {
            let le = labels.iter().find(|(k, _)| k == "le").map(|(_, v)| v.clone())?;
            if le == "+Inf" {
                continue; // the +Inf count duplicates `_count`
            }
            let value: u64 = value.trim().parse().ok()?;
            cumulative.entry((worker, name)).or_default().insert(le.parse().ok()?, value);
            continue;
        }
        let value: u64 = value.trim().parse().ok()?;
        if family == COUNTER_FAMILY {
            snap.counters.insert(name, value);
        } else if family == GAUGE_FAMILY {
            snap.gauges.insert(name, value);
        } else if family == sum_family {
            snap.hists.entry(name).or_default().sum = value;
        } else if family == count_family {
            snap.hists.entry(name).or_default().count = value;
        } else if family == HISTOGRAM_STAT_FAMILY {
            let stat = labels.iter().find(|(k, _)| k == "stat").map(|(_, v)| v.clone())?;
            let h = snap.hists.entry(name).or_default();
            match stat.as_str() {
                "mean" => h.mean = value,
                "p50" => h.p50 = value,
                "p99" => h.p99 = value,
                "p999" => h.p999 = value,
                "min" => h.min = value,
                "max" => h.max = value,
                _ => return None,
            }
        }
    }
    for ((worker, name), cums) in cumulative {
        let mut prev = 0u64;
        let buckets = cums
            .into_iter()
            .map(|(le, cum)| {
                let n = cum.saturating_sub(prev);
                prev = cum;
                (le, n)
            })
            .collect();
        fleet.entry(worker).or_default().hists.entry(name).or_default().buckets = buckets;
    }
    Some(fleet)
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Parses `k="v",k2="v2"` into pairs, unescaping label values.
fn parse_labels(s: &str) -> Option<Vec<(String, String)>> {
    let mut pairs = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let (key, after_key) = rest.split_once("=\"")?;
        let mut value = String::new();
        let mut chars = after_key.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, c2)) => value.push(c2),
                    None => return None,
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end?;
        pairs.push((key.trim_start_matches(',').to_owned(), value));
        rest = &after_key[end + 1..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    Some(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::HistogramSummary;

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("appserver.renewals".into(), 3);
        snap.counters.insert("matching.matched".into(), 70);
        snap.gauges.insert("net.client.heartbeat_stale_ms".into(), 12);
        snap.hists.insert(
            "stage.matching".into(),
            HistogramSummary {
                count: 5,
                sum: 200,
                mean: 40,
                p50: 32,
                p99: 130,
                p999: 130,
                min: 10,
                max: 130,
                buckets: vec![(10, 1), (33, 2), (47, 1), (131, 1)],
            },
        );
        snap.hists.insert(
            "stage.total".into(),
            HistogramSummary {
                count: 5,
                sum: 4500,
                mean: 900,
                p50: 800,
                p99: 2100,
                p999: 2100,
                min: 300,
                max: 2100,
                buckets: vec![(319, 1), (831, 2), (1087, 1), (2175, 1)],
            },
        );
        snap
    }

    #[test]
    fn roundtrip_is_lossless() {
        let snap = sample();
        let text = to_prometheus(&snap);
        let back = from_prometheus(&text).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn same_numbers_as_json() {
        let snap = sample();
        let via_prom = from_prometheus(&to_prometheus(&snap)).unwrap();
        let via_json = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(via_prom, via_json);
    }

    #[test]
    fn label_escaping_survives() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("weird\"name\\with\nstuff".into(), 1);
        let back = from_prometheus(&to_prometheus(&snap)).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn families_are_typed() {
        let text = to_prometheus(&sample());
        assert!(text.contains("# TYPE invalidb_counter_total counter"));
        assert!(text.contains("# TYPE invalidb_gauge gauge"));
        assert!(text.contains("# TYPE invalidb_histogram_us histogram"));
        assert!(text.contains("# TYPE invalidb_histogram_us_stat gauge"));
        assert!(text.contains("invalidb_counter_total{name=\"appserver.renewals\"} 3"));
        assert!(text.contains("invalidb_histogram_us_stat{name=\"stage.matching\",stat=\"p99\"} 130"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_with_sum_and_count() {
        let text = to_prometheus(&sample());
        // Per-bucket counts 1,2,1,1 render cumulatively as 1,3,4,5.
        assert!(text.contains("invalidb_histogram_us_bucket{name=\"stage.matching\",le=\"10\"} 1"));
        assert!(text.contains("invalidb_histogram_us_bucket{name=\"stage.matching\",le=\"33\"} 3"));
        assert!(text.contains("invalidb_histogram_us_bucket{name=\"stage.matching\",le=\"47\"} 4"));
        assert!(text.contains("invalidb_histogram_us_bucket{name=\"stage.matching\",le=\"131\"} 5"));
        assert!(text.contains("invalidb_histogram_us_bucket{name=\"stage.matching\",le=\"+Inf\"} 5"));
        assert!(text.contains("invalidb_histogram_us_sum{name=\"stage.matching\"} 200"));
        assert!(text.contains("invalidb_histogram_us_count{name=\"stage.matching\"} 5"));
    }

    #[test]
    fn real_histogram_roundtrips_through_exposition() {
        // End to end: record into a real log-linear histogram, snapshot,
        // render, parse — the parsed summary equals the original.
        let mut h = invalidb_common::Histogram::new();
        for v in [3u64, 17, 17, 450, 12_000, 900_000] {
            h.record(v);
        }
        let mut snap = MetricsSnapshot::default();
        snap.hists.insert("lat".into(), HistogramSummary::of(&h));
        let back = from_prometheus(&to_prometheus(&snap)).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn labeled_series_carry_extra_labels() {
        let text = to_prometheus_labeled(&sample(), &[("worker", "w1")]);
        assert!(text.contains("invalidb_counter_total{name=\"appserver.renewals\",worker=\"w1\"} 3"));
        assert!(text.contains(
            "invalidb_histogram_us_bucket{name=\"stage.matching\",worker=\"w1\",le=\"10\"} 1"
        ));
    }

    #[test]
    fn federated_document_splits_back_into_per_worker_snapshots() {
        let local = {
            let mut s = MetricsSnapshot::default();
            s.gauges.insert("cluster.workers_alive".into(), 2);
            s
        };
        let w1 = sample();
        let mut w2 = sample();
        w2.counters.insert("matching.matched".into(), 99);
        let text = to_prometheus_federated(
            &local,
            &[("w1".to_string(), w1.clone()), ("w2".to_string(), w2.clone())],
        );
        let fleet = from_prometheus_federated(&text).unwrap();
        assert_eq!(fleet[""], local);
        assert_eq!(fleet["w1"], w1);
        assert_eq!(fleet["w2"], w2);
        // Headers appear exactly once in the federated document.
        assert_eq!(text.matches("# TYPE invalidb_counter_total counter").count(), 1);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = MetricsSnapshot::default();
        let back = from_prometheus(&to_prometheus(&snap)).unwrap();
        assert_eq!(snap, back);
    }
}
