//! Prometheus text exposition (format 0.0.4) for [`MetricsSnapshot`].
//!
//! InvaliDB metric names are dotted paths (`appserver.renewals`,
//! `stage.matching`), which are not legal Prometheus metric names. Rather
//! than mangle dots into underscores (lossy: `a.b_c` and `a.b.c` would
//! collide), the exposition uses three fixed metric families with the
//! original name carried as a label:
//!
//! ```text
//! invalidb_counter_total{name="appserver.renewals"} 3
//! invalidb_gauge{name="net.client.heartbeat_stale_ms"} 12
//! invalidb_histogram_us{name="stage.matching",stat="p99"} 130
//! ```
//!
//! Every number is the same `u64` the JSON renderer emits, so the
//! exposition parses back into a [`MetricsSnapshot`] that is equal to the
//! one `to_json` serializes — the admin endpoint's golden-file test relies
//! on this round-trip.

use crate::snapshot::MetricsSnapshot;

/// Metric family carrying counters.
pub const COUNTER_FAMILY: &str = "invalidb_counter_total";
/// Metric family carrying gauges.
pub const GAUGE_FAMILY: &str = "invalidb_gauge";
/// Metric family carrying histogram summary statistics (microseconds).
pub const HISTOGRAM_FAMILY: &str = "invalidb_histogram_us";

const HIST_STATS: [&str; 6] = ["count", "mean", "p50", "p99", "min", "max"];

/// Renders a snapshot in Prometheus text exposition format 0.0.4.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# HELP {COUNTER_FAMILY} InvaliDB monotonic counters, keyed by dotted metric name.\n"
    ));
    out.push_str(&format!("# TYPE {COUNTER_FAMILY} counter\n"));
    for (name, v) in &snap.counters {
        out.push_str(&format!("{COUNTER_FAMILY}{{name=\"{}\"}} {v}\n", escape_label(name)));
    }
    out.push_str(&format!(
        "# HELP {GAUGE_FAMILY} InvaliDB gauges (levels), keyed by dotted metric name.\n"
    ));
    out.push_str(&format!("# TYPE {GAUGE_FAMILY} gauge\n"));
    for (name, v) in &snap.gauges {
        out.push_str(&format!("{GAUGE_FAMILY}{{name=\"{}\"}} {v}\n", escape_label(name)));
    }
    out.push_str(&format!(
        "# HELP {HISTOGRAM_FAMILY} InvaliDB latency histogram summaries in microseconds.\n"
    ));
    out.push_str(&format!("# TYPE {HISTOGRAM_FAMILY} gauge\n"));
    for (name, h) in &snap.hists {
        let name = escape_label(name);
        for (stat, v) in HIST_STATS.iter().zip([h.count, h.mean, h.p50, h.p99, h.min, h.max]) {
            out.push_str(&format!("{HISTOGRAM_FAMILY}{{name=\"{name}\",stat=\"{stat}\"}} {v}\n"));
        }
    }
    out
}

/// Parses text produced by [`to_prometheus`] back into a snapshot.
///
/// Returns `None` on any malformed sample line; unknown families and
/// comment lines are ignored (so the parser tolerates future additions).
pub fn from_prometheus(text: &str) -> Option<MetricsSnapshot> {
    let mut snap = MetricsSnapshot::default();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (family, rest) = line.split_once('{')?;
        let (labels, value) = rest.split_once('}')?;
        let value: u64 = value.trim().parse().ok()?;
        let labels = parse_labels(labels)?;
        let name = labels.iter().find(|(k, _)| k == "name").map(|(_, v)| v.clone())?;
        match family {
            COUNTER_FAMILY => {
                snap.counters.insert(name, value);
            }
            GAUGE_FAMILY => {
                snap.gauges.insert(name, value);
            }
            HISTOGRAM_FAMILY => {
                let stat = labels.iter().find(|(k, _)| k == "stat").map(|(_, v)| v.clone())?;
                let h = snap.hists.entry(name).or_default();
                match stat.as_str() {
                    "count" => h.count = value,
                    "mean" => h.mean = value,
                    "p50" => h.p50 = value,
                    "p99" => h.p99 = value,
                    "min" => h.min = value,
                    "max" => h.max = value,
                    _ => return None,
                }
            }
            _ => {}
        }
    }
    Some(snap)
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Parses `k="v",k2="v2"` into pairs, unescaping label values.
fn parse_labels(s: &str) -> Option<Vec<(String, String)>> {
    let mut pairs = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let (key, after_key) = rest.split_once("=\"")?;
        let mut value = String::new();
        let mut chars = after_key.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, c2)) => value.push(c2),
                    None => return None,
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end?;
        pairs.push((key.trim_start_matches(',').to_owned(), value));
        rest = &after_key[end + 1..];
        rest = rest.strip_prefix(',').unwrap_or(rest);
    }
    Some(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::HistogramSummary;

    fn sample() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("appserver.renewals".into(), 3);
        snap.counters.insert("matching.matched".into(), 70);
        snap.gauges.insert("net.client.heartbeat_stale_ms".into(), 12);
        snap.hists.insert(
            "stage.matching".into(),
            HistogramSummary { count: 5, mean: 40, p50: 32, p99: 130, min: 10, max: 130 },
        );
        snap.hists.insert(
            "stage.total".into(),
            HistogramSummary { count: 5, mean: 900, p50: 800, p99: 2100, min: 300, max: 2100 },
        );
        snap
    }

    #[test]
    fn roundtrip_is_lossless() {
        let snap = sample();
        let text = to_prometheus(&snap);
        let back = from_prometheus(&text).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn same_numbers_as_json() {
        let snap = sample();
        let via_prom = from_prometheus(&to_prometheus(&snap)).unwrap();
        let via_json = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(via_prom, via_json);
    }

    #[test]
    fn label_escaping_survives() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("weird\"name\\with\nstuff".into(), 1);
        let back = from_prometheus(&to_prometheus(&snap)).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn families_are_typed() {
        let text = to_prometheus(&sample());
        assert!(text.contains("# TYPE invalidb_counter_total counter"));
        assert!(text.contains("# TYPE invalidb_gauge gauge"));
        assert!(text.contains("invalidb_counter_total{name=\"appserver.renewals\"} 3"));
        assert!(text.contains("invalidb_histogram_us{name=\"stage.matching\",stat=\"p99\"} 130"));
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = MetricsSnapshot::default();
        let back = from_prometheus(&to_prometheus(&snap)).unwrap();
        assert_eq!(snap, back);
    }
}
