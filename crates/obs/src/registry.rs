//! The unified metrics registry.

use crate::flight::FlightRecorder;
use crate::link::{LinkRegistry, TopologyMetrics};
use crate::slow::SlowQueryLog;
use crate::snapshot::{HistogramSummary, MetricsSnapshot};
use invalidb_common::trace::now_micros;
use invalidb_common::{Histogram, TraceContext, MAX_PLAUSIBLE_HOP_MICROS};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Prefix for per-stage latency histograms fed by [`MetricsRegistry::record_trace`].
pub(crate) const STAGE_PREFIX: &str = "stage.";
/// Name of the end-to-end latency histogram fed by `record_trace`.
pub(crate) const E2E_HIST: &str = "stage.total";
/// Counter of per-hop deltas discarded as clock skew (negative or absurd)
/// instead of being folded into the stage histograms.
pub(crate) const SKEW_CLAMPED: &str = "trace.skew_clamped";
/// Prefix of the per-tenant notification-staleness SLO histograms fed by
/// [`MetricsRegistry::record_staleness`] (`slo.<tenant>.staleness_us`).
pub(crate) const SLO_PREFIX: &str = "slo.";

#[derive(Default)]
struct Inner {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    hists: RwLock<BTreeMap<String, Arc<Mutex<Histogram>>>>,
    topologies: RwLock<Vec<(String, Arc<TopologyMetrics>)>>,
    links: RwLock<Vec<(String, Arc<LinkRegistry>)>>,
    flight: FlightRecorder,
    slow: SlowQueryLog,
}

/// One registry unifying every metric of a deployment: named counters,
/// gauges, log-bucket latency histograms, plus attached topology and
/// network-link metric families. Cheap to clone (all clones share state);
/// every accessor creates the metric on first use, so instrumentation
/// sites never need registration boilerplate.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Gets (or creates) the monotonic counter `name`.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        get_or_insert(&self.inner.counters, name, Arc::default)
    }

    /// Gets (or creates) the gauge `name` (a settable level, not a rate).
    pub fn gauge(&self, name: &str) -> Arc<AtomicU64> {
        get_or_insert(&self.inner.gauges, name, Arc::default)
    }

    /// Gets (or creates) the log-bucket histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Mutex<Histogram>> {
        get_or_insert(&self.inner.hists, name, || Arc::new(Mutex::new(Histogram::new())))
    }

    /// Adds `delta` to counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        self.counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments counter `name` by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: u64) {
        self.gauge(name).store(value, Ordering::Relaxed);
    }

    /// Records `value` into histogram `name`.
    pub fn record(&self, name: &str, value: u64) {
        self.histogram(name).lock().record(value);
    }

    /// Folds a completed trace into the per-stage latency histograms:
    /// each hop's delta goes into `stage.<destination>` and the full
    /// first-to-last span into `stage.total`.
    ///
    /// Consecutive stamps may come from different hosts, so a hop delta is
    /// latency *plus clock skew*. Negative or implausibly large deltas are
    /// counted in `trace.skew_clamped` and kept out of the stage tables —
    /// a skewed pair of clocks must not manufacture latency data. The
    /// end-to-end span stays in: its first and last stamps (app server
    /// accept and delivery) share one process and therefore one clock.
    pub fn record_trace(&self, trace: &TraceContext) {
        for (_, to, delta) in trace.hops() {
            if delta < 0 || delta as u64 > MAX_PLAUSIBLE_HOP_MICROS {
                self.inc(SKEW_CLAMPED);
                continue;
            }
            self.record(&format!("{STAGE_PREFIX}{to}"), delta as u64);
        }
        self.record(E2E_HIST, trace.elapsed_micros());
        self.inc("traces.recorded");
    }

    /// Records one delivered notification's save→notify staleness into the
    /// tenant's SLO histogram `slo.<tenant>.staleness_us` — the paper's
    /// headline metric, per tenant. `written_at_micros` is the app-server
    /// wall clock at write acceptance; since delivery happens back on an
    /// app server, the pair is same-clock in the single-app-server case
    /// and skew-clamped (like trace hops) otherwise.
    pub fn record_staleness(&self, tenant: &str, written_at_micros: u64) {
        let delta = now_micros() as i64 - written_at_micros as i64;
        if delta < 0 || delta as u64 > MAX_PLAUSIBLE_HOP_MICROS {
            self.inc(SKEW_CLAMPED);
            return;
        }
        self.record(&format!("{SLO_PREFIX}{tenant}.staleness_us"), delta as u64);
    }

    /// The registry's flight recorder: every component sharing this
    /// registry records its structured pipeline events (reconnects, queue
    /// drops, decode errors, churn, health transitions) into one ring.
    pub fn flight(&self) -> FlightRecorder {
        self.inner.flight.clone()
    }

    /// The registry's slow-query log: the matching and sorting stages
    /// charge per-query evaluation costs here.
    pub fn slow_queries(&self) -> SlowQueryLog {
        self.inner.slow.clone()
    }

    /// Attaches a topology's component metrics; its counters appear in
    /// snapshots as `<label>.<component>.{processed,emitted,ticks}`.
    pub fn attach_topology(&self, label: &str, metrics: Arc<TopologyMetrics>) {
        self.inner.topologies.write().push((label.to_owned(), metrics));
    }

    /// Attaches a link registry; its counters appear in snapshots as
    /// `<label>.<link>.{frames_in,frames_out,...}` and its queue depths as
    /// gauges.
    pub fn attach_links(&self, label: &str, links: Arc<LinkRegistry>) {
        self.inner.links.write().push((label.to_owned(), links));
    }

    /// A point-in-time copy of every metric this registry can see.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for (name, c) in self.inner.counters.read().iter() {
            snap.counters.insert(name.clone(), c.load(Ordering::Relaxed));
        }
        for (name, g) in self.inner.gauges.read().iter() {
            snap.gauges.insert(name.clone(), g.load(Ordering::Relaxed));
        }
        for (name, h) in self.inner.hists.read().iter() {
            snap.hists.insert(name.clone(), HistogramSummary::of(&h.lock()));
        }
        for (label, topo) in self.inner.topologies.read().iter() {
            let mut names = topo.component_names();
            names.sort();
            for comp in names {
                let m = topo.component(&comp);
                let (processed, emitted, ticks) = m.snapshot();
                snap.counters.insert(format!("{label}.{comp}.processed"), processed);
                snap.counters.insert(format!("{label}.{comp}.emitted"), emitted);
                snap.counters.insert(format!("{label}.{comp}.ticks"), ticks);
                snap.gauges.insert(
                    format!("{label}.{comp}.queue_depth"),
                    m.queue_depth.load(Ordering::Relaxed),
                );
            }
        }
        for (label, links) in self.inner.links.read().iter() {
            let mut names = links.link_names();
            names.sort();
            for link in names {
                let m = links.link(&link);
                let base = format!("{label}.{link}");
                snap.counters.insert(format!("{base}.frames_in"), m.frames_in.load(Ordering::Relaxed));
                snap.counters.insert(format!("{base}.frames_out"), m.frames_out.load(Ordering::Relaxed));
                snap.counters.insert(format!("{base}.bytes_in"), m.bytes_in.load(Ordering::Relaxed));
                snap.counters.insert(format!("{base}.bytes_out"), m.bytes_out.load(Ordering::Relaxed));
                snap.counters.insert(format!("{base}.dropped"), m.dropped.load(Ordering::Relaxed));
                snap.counters.insert(format!("{base}.reconnects"), m.reconnects.load(Ordering::Relaxed));
                snap.counters
                    .insert(format!("{base}.decode_errors"), m.decode_errors.load(Ordering::Relaxed));
                snap.gauges.insert(format!("{base}.queue_depth"), m.queue_depth.load(Ordering::Relaxed));
            }
        }
        snap
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &self.inner.counters.read().len())
            .field("gauges", &self.inner.gauges.read().len())
            .field("hists", &self.inner.hists.read().len())
            .finish()
    }
}

fn get_or_insert<T: Clone>(map: &RwLock<BTreeMap<String, T>>, name: &str, mk: impl FnOnce() -> T) -> T {
    if let Some(v) = map.read().get(name) {
        return v.clone();
    }
    let mut w = map.write();
    w.entry(name.to_owned()).or_insert_with(mk).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_common::Stage;

    #[test]
    fn counters_gauges_histograms() {
        let reg = MetricsRegistry::new();
        reg.inc("writes");
        reg.add("writes", 2);
        reg.set_gauge("depth", 7);
        reg.record("lat", 100);
        reg.record("lat", 300);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["writes"], 3);
        assert_eq!(snap.gauges["depth"], 7);
        assert_eq!(snap.hists["lat"].count, 2);
    }

    #[test]
    fn clones_share_state() {
        let reg = MetricsRegistry::new();
        let clone = reg.clone();
        clone.inc("shared");
        assert_eq!(reg.snapshot().counters["shared"], 1);
    }

    #[test]
    fn record_trace_feeds_stage_histograms() {
        let reg = MetricsRegistry::new();
        let mut t = TraceContext { trace_id: 1, stamps: Vec::new() };
        t.stamp_at(Stage::AppServer, 1_000);
        t.stamp_at(Stage::Ingestion, 1_040);
        t.stamp_at(Stage::Matching, 1_100);
        t.stamp_at(Stage::Delivery, 1_150);
        reg.record_trace(&t);
        let snap = reg.snapshot();
        assert_eq!(snap.hists["stage.ingestion"].count, 1);
        assert_eq!(snap.hists["stage.matching"].count, 1);
        assert_eq!(snap.hists["stage.delivery"].count, 1);
        assert_eq!(snap.hists["stage.total"].count, 1);
        assert_eq!(snap.counters["traces.recorded"], 1);
    }

    #[test]
    fn skewed_hops_are_clamped_not_recorded() {
        let reg = MetricsRegistry::new();
        let mut t = TraceContext { trace_id: 2, stamps: Vec::new() };
        t.stamp_at(Stage::AppServer, 10_000);
        t.stamp_at(Stage::Broker, 9_000); // broker clock behind: skew
        t.stamp_at(Stage::Delivery, 10_500);
        reg.record_trace(&t);
        let snap = reg.snapshot();
        assert!(!snap.hists.contains_key("stage.broker"), "skewed hop must not pollute stage table");
        assert_eq!(snap.counters["trace.skew_clamped"], 1);
        // The broker→delivery hop (1_500) and the e2e span still record.
        assert_eq!(snap.hists["stage.delivery"].count, 1);
        assert_eq!(snap.hists["stage.total"].count, 1);
    }

    #[test]
    fn staleness_feeds_per_tenant_histogram() {
        let reg = MetricsRegistry::new();
        reg.record_staleness("tenant-a", invalidb_common::trace::now_micros());
        let snap = reg.snapshot();
        assert_eq!(snap.hists["slo.tenant-a.staleness_us"].count, 1);
        // A write "from the future" is skew, not negative staleness.
        reg.record_staleness("tenant-a", invalidb_common::trace::now_micros() + 120_000_000);
        let snap = reg.snapshot();
        assert_eq!(snap.hists["slo.tenant-a.staleness_us"].count, 1);
        assert_eq!(snap.counters["trace.skew_clamped"], 1);
    }

    #[test]
    fn concurrent_writers_lose_nothing() {
        let reg = MetricsRegistry::new();
        let threads = 8u64;
        let per_thread = 2_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        reg.inc("hammered.counter");
                        reg.add("hammered.bulk", 3);
                        reg.record("hammered.hist", i % 97 + 1);
                        reg.set_gauge(&format!("hammered.gauge.{t}"), i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counters["hammered.counter"], threads * per_thread);
        assert_eq!(snap.counters["hammered.bulk"], threads * per_thread * 3);
        assert_eq!(snap.hists["hammered.hist"].count, threads * per_thread);
        for t in 0..threads {
            assert_eq!(snap.gauges[&format!("hammered.gauge.{t}")], per_thread - 1);
        }
    }

    #[test]
    fn flight_and_slow_log_are_shared_across_clones() {
        let reg = MetricsRegistry::new();
        let clone = reg.clone();
        clone.flight().record(crate::FlightEventKind::Reconnect, "peer");
        clone.slow_queries().charge("t", 1, || "q".into(), 10);
        assert_eq!(reg.flight().dump().len(), 1);
        assert_eq!(reg.slow_queries().len(), 1);
    }

    #[test]
    fn attached_topology_and_links_appear_in_snapshot() {
        let reg = MetricsRegistry::new();
        let topo = Arc::new(crate::TopologyMetrics::default());
        topo.component("matching").processed.fetch_add(5, Ordering::Relaxed);
        reg.attach_topology("cluster", Arc::clone(&topo));
        let links = Arc::new(crate::LinkRegistry::default());
        links.link("peer").frames_in.fetch_add(9, Ordering::Relaxed);
        links.link("peer").queue_depth.store(4, Ordering::Relaxed);
        reg.attach_links("net", Arc::clone(&links));
        let snap = reg.snapshot();
        assert_eq!(snap.counters["cluster.matching.processed"], 5);
        assert_eq!(snap.counters["net.peer.frames_in"], 9);
        assert_eq!(snap.gauges["net.peer.queue_depth"], 4);
    }
}
