//! Component, topology, and network-link counters.
//!
//! These types originated in `invalidb-stream` (which still re-exports
//! them); they live here so the whole workspace shares one observability
//! vocabulary and so [`crate::MetricsRegistry`] can absorb them into
//! unified snapshots.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters for one component (all tasks combined).
#[derive(Debug, Default)]
pub struct ComponentMetrics {
    /// Messages executed by the component's bolts (or emitted by sources).
    pub processed: AtomicU64,
    /// Messages emitted downstream.
    pub emitted: AtomicU64,
    /// Ticks delivered.
    pub ticks: AtomicU64,
    /// Recent peak depth of the component's input queues (gauge): tasks
    /// raise it while draining messages and reset it on idle ticks, so a
    /// persistently high value means the stage is saturated.
    pub queue_depth: AtomicU64,
}

impl ComponentMetrics {
    /// Snapshot of `(processed, emitted, ticks)`.
    pub fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.processed.load(Ordering::Relaxed),
            self.emitted.load(Ordering::Relaxed),
            self.ticks.load(Ordering::Relaxed),
        )
    }
}

/// Counters for one network link (a TCP connection of `invalidb-net`, or
/// any other transport hop worth observing). All fields are monotonic
/// except `queue_depth`, which is a gauge.
#[derive(Debug, Default)]
pub struct LinkMetrics {
    /// Frames received on this link.
    pub frames_in: AtomicU64,
    /// Frames sent on this link.
    pub frames_out: AtomicU64,
    /// Payload bytes received (frame bodies, excluding headers).
    pub bytes_in: AtomicU64,
    /// Payload bytes sent.
    pub bytes_out: AtomicU64,
    /// Current depth of the outbound send queue (gauge).
    pub queue_depth: AtomicU64,
    /// Frames dropped by backpressure policy (drop-oldest overflow).
    pub dropped: AtomicU64,
    /// Successful (re)connects — 1 after the first connect, +1 per
    /// reconnect.
    pub reconnects: AtomicU64,
    /// Frames rejected by the codec (bad magic/version/CRC/truncation).
    pub decode_errors: AtomicU64,
}

impl LinkMetrics {
    /// Snapshot of `(frames_in, frames_out, queue_depth, dropped,
    /// reconnects)` — the numbers dashboards poll together.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.frames_in.load(Ordering::Relaxed),
            self.frames_out.load(Ordering::Relaxed),
            self.queue_depth.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
            self.reconnects.load(Ordering::Relaxed),
        )
    }
}

/// Registry of link metrics, keyed by link name (e.g. peer address).
#[derive(Debug, Default)]
pub struct LinkRegistry {
    links: parking_lot::RwLock<HashMap<String, Arc<LinkMetrics>>>,
}

impl LinkRegistry {
    /// Gets (or creates) the metrics handle for a link.
    pub fn link(&self, name: &str) -> Arc<LinkMetrics> {
        if let Some(m) = self.links.read().get(name) {
            return Arc::clone(m);
        }
        let mut map = self.links.write();
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Names of all observed links.
    pub fn link_names(&self) -> Vec<String> {
        self.links.read().keys().cloned().collect()
    }

    /// Drops a link's metrics (connection closed and not coming back).
    pub fn forget(&self, name: &str) {
        self.links.write().remove(name);
    }
}

/// Metrics for a whole topology, keyed by component name.
#[derive(Debug, Default)]
pub struct TopologyMetrics {
    components: parking_lot::RwLock<HashMap<String, Arc<ComponentMetrics>>>,
}

impl TopologyMetrics {
    /// Gets (or creates) the metrics handle for a component.
    pub fn component(&self, name: &str) -> Arc<ComponentMetrics> {
        if let Some(m) = self.components.read().get(name) {
            return Arc::clone(m);
        }
        let mut map = self.components.write();
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Names of all observed components.
    pub fn component_names(&self) -> Vec<String> {
        self.components.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = TopologyMetrics::default();
        let c = m.component("matcher");
        c.processed.fetch_add(3, Ordering::Relaxed);
        c.emitted.fetch_add(1, Ordering::Relaxed);
        // Same handle returned for the same name.
        let again = m.component("matcher");
        assert_eq!(again.snapshot(), (3, 1, 0));
        assert_eq!(m.component_names().len(), 1);
    }

    #[test]
    fn link_registry_creates_and_forgets() {
        let reg = LinkRegistry::default();
        let link = reg.link("127.0.0.1:9999");
        link.frames_in.fetch_add(2, Ordering::Relaxed);
        assert_eq!(reg.link("127.0.0.1:9999").snapshot().0, 2);
        reg.forget("127.0.0.1:9999");
        assert_eq!(reg.link("127.0.0.1:9999").snapshot().0, 0);
    }
}
