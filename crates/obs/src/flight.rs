//! The flight recorder: a fixed-size ring buffer of structured pipeline
//! events (reconnects, queue drops, decode errors, subscription churn,
//! health transitions) kept for post-mortem analysis.
//!
//! Recording is designed for hot paths: a single atomic `fetch_add`
//! reserves a slot (no global lock, writers never contend on a shared
//! mutex), then the event is stored under that slot's own uncontended
//! lock. When the ring wraps, the oldest events are overwritten — the
//! recorder always holds the most recent `capacity` events, in order.

use invalidb_common::trace::now_micros;
use invalidb_common::Document;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default ring capacity of a [`FlightRecorder`].
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// What kind of pipeline event a [`FlightEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A transport link (re)connected. The first connect counts too.
    Reconnect,
    /// A transport link disconnected (session ended, peer gone).
    Disconnect,
    /// A frame was dropped by backpressure policy (queue overflow).
    QueueDrop,
    /// A frame failed to decode (bad magic/version/CRC/truncation).
    DecodeError,
    /// A subscription was registered.
    Subscribe,
    /// A subscription was cancelled.
    Unsubscribe,
    /// The cluster health status changed.
    HealthTransition,
    /// A worker process joined the cluster (coordinator membership).
    WorkerJoin,
    /// A worker process left the cluster (shutdown or missed heartbeats).
    WorkerLeave,
    /// The coordinator bumped the epoch and reassigned cells.
    Failover,
}

impl FlightEventKind {
    /// Stable wire name of the kind.
    pub fn as_str(&self) -> &'static str {
        match self {
            FlightEventKind::Reconnect => "reconnect",
            FlightEventKind::Disconnect => "disconnect",
            FlightEventKind::QueueDrop => "queue_drop",
            FlightEventKind::DecodeError => "decode_error",
            FlightEventKind::Subscribe => "subscribe",
            FlightEventKind::Unsubscribe => "unsubscribe",
            FlightEventKind::HealthTransition => "health_transition",
            FlightEventKind::WorkerJoin => "worker_join",
            FlightEventKind::WorkerLeave => "worker_leave",
            FlightEventKind::Failover => "failover",
        }
    }

    /// Parses a kind from its wire name.
    pub fn parse(s: &str) -> Option<FlightEventKind> {
        Some(match s {
            "reconnect" => FlightEventKind::Reconnect,
            "disconnect" => FlightEventKind::Disconnect,
            "queue_drop" => FlightEventKind::QueueDrop,
            "decode_error" => FlightEventKind::DecodeError,
            "subscribe" => FlightEventKind::Subscribe,
            "unsubscribe" => FlightEventKind::Unsubscribe,
            "health_transition" => FlightEventKind::HealthTransition,
            "worker_join" => FlightEventKind::WorkerJoin,
            "worker_leave" => FlightEventKind::WorkerLeave,
            "failover" => FlightEventKind::Failover,
            _ => return None,
        })
    }
}

impl std::fmt::Display for FlightEventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded pipeline event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number (monotonic across wraparound; earlier events
    /// have smaller numbers, so dumps are totally ordered).
    pub seq: u64,
    /// Wall-clock microseconds when the event was recorded.
    pub at_micros: u64,
    /// What happened.
    pub kind: FlightEventKind,
    /// Free-form detail: the subject (peer address, topic, tenant) and any
    /// event-specific context.
    pub detail: String,
    /// Assignment epoch in force when the event happened, for cluster
    /// events (membership, failover). `None` for non-cluster events, so an
    /// incident dump reads as an ordered epoch timeline without noise.
    pub epoch: Option<u64>,
    /// Worker the event concerns, for cluster events.
    pub worker_id: Option<String>,
}

impl FlightEvent {
    /// Encodes the event as a document (the JSON object model). The
    /// cluster annotations (`epoch`, `worker_id`) are emitted only when
    /// present, keeping non-cluster events identical to older dumps.
    pub fn to_document(&self) -> Document {
        let mut d = Document::with_capacity(6);
        d.insert("seq", self.seq as i64);
        d.insert("at_micros", self.at_micros as i64);
        d.insert("kind", self.kind.as_str());
        d.insert("detail", self.detail.as_str());
        if let Some(epoch) = self.epoch {
            d.insert("epoch", epoch as i64);
        }
        if let Some(worker) = &self.worker_id {
            d.insert("worker_id", worker.as_str());
        }
        d
    }

    /// Decodes an event from its document encoding. Dumps recorded before
    /// the cluster annotations existed decode with both set to `None`.
    pub fn from_document(d: &Document) -> Option<FlightEvent> {
        Some(FlightEvent {
            seq: d.get("seq")?.as_i64()? as u64,
            at_micros: d.get("at_micros")?.as_i64()? as u64,
            kind: FlightEventKind::parse(d.get("kind")?.as_str()?)?,
            detail: d.get("detail")?.as_str()?.to_owned(),
            epoch: d.get("epoch").and_then(|v| v.as_i64()).map(|e| e as u64),
            worker_id: d.get("worker_id").and_then(|v| v.as_str()).map(str::to_owned),
        })
    }
}

struct FlightInner {
    slots: Vec<Mutex<Option<FlightEvent>>>,
    head: AtomicU64,
}

/// Fixed-size ring buffer of [`FlightEvent`]s.
///
/// Cheap to clone (all clones share the ring). Recording reserves a slot
/// with one `fetch_add` and overwrites the oldest event on wraparound;
/// [`FlightRecorder::dump`] returns the surviving events oldest-first.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        let slots = (0..capacity).map(|_| Mutex::new(None)).collect();
        FlightRecorder { inner: Arc::new(FlightInner { slots, head: AtomicU64::new(0) }) }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Total number of events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.inner.head.load(Ordering::Relaxed)
    }

    /// Records an event, timestamped now.
    pub fn record(&self, kind: FlightEventKind, detail: impl Into<String>) {
        self.record_at(now_micros(), kind, detail);
    }

    /// Records an event with an explicit timestamp.
    pub fn record_at(&self, at_micros: u64, kind: FlightEventKind, detail: impl Into<String>) {
        let seq = self.inner.head.fetch_add(1, Ordering::Relaxed);
        self.store(FlightEvent {
            seq,
            at_micros,
            kind,
            detail: detail.into(),
            epoch: None,
            worker_id: None,
        });
    }

    /// Records a cluster event annotated with the worker it concerns and
    /// the assignment epoch in force, timestamped now.
    pub fn record_cluster(
        &self,
        kind: FlightEventKind,
        detail: impl Into<String>,
        worker_id: impl Into<String>,
        epoch: u64,
    ) {
        let seq = self.inner.head.fetch_add(1, Ordering::Relaxed);
        self.store(FlightEvent {
            seq,
            at_micros: now_micros(),
            kind,
            detail: detail.into(),
            epoch: Some(epoch),
            worker_id: Some(worker_id.into()),
        });
    }

    /// Stores an already-sequenced event into its ring slot. Reservation
    /// (the `fetch_add` above) and the slot write are not atomic together,
    /// so a writer delayed in between may find that a newer event already
    /// wrapped into its slot — the stale write must yield, or the ring
    /// would silently drop its most recent event.
    fn store(&self, event: FlightEvent) {
        let slot = (event.seq % self.inner.slots.len() as u64) as usize;
        let mut slot = self.inner.slots[slot].lock();
        if slot.as_ref().is_none_or(|existing| existing.seq < event.seq) {
            *slot = Some(event);
        }
    }

    /// All surviving events, oldest first. At most `capacity` entries;
    /// after wraparound the oldest events are gone and the dump starts at
    /// the earliest survivor.
    pub fn dump(&self) -> Vec<FlightEvent> {
        let mut events: Vec<FlightEvent> =
            self.inner.slots.iter().filter_map(|slot| slot.lock().clone()).collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Renders [`FlightRecorder::dump`] as a JSON array string.
    pub fn dump_json(&self) -> String {
        events_to_json(&self.dump())
    }
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

/// Renders a slice of events as a JSON array string.
pub fn events_to_json(events: &[FlightEvent]) -> String {
    let docs: Vec<String> = events.iter().map(|e| invalidb_json::to_string(&e.to_document())).collect();
    format!("[{}]", docs.join(","))
}

/// Parses a JSON array produced by [`events_to_json`] /
/// [`FlightRecorder::dump_json`].
pub fn events_from_json(json: &str) -> Option<Vec<FlightEvent>> {
    let value = invalidb_json::parse_value(json).ok()?;
    value
        .as_array()?
        .iter()
        .map(|v| v.as_object().and_then(FlightEvent::from_document))
        .collect::<Option<Vec<_>>>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let rec = FlightRecorder::with_capacity(8);
        rec.record(FlightEventKind::Reconnect, "a");
        rec.record(FlightEventKind::QueueDrop, "b");
        rec.record(FlightEventKind::Disconnect, "c");
        let dump = rec.dump();
        assert_eq!(dump.len(), 3);
        assert_eq!(dump[0].detail, "a");
        assert_eq!(dump[1].detail, "b");
        assert_eq!(dump[2].detail, "c");
        assert!(dump.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn wraparound_evicts_oldest_and_preserves_order() {
        let capacity = 16usize;
        let extra = 5usize;
        let rec = FlightRecorder::with_capacity(capacity);
        for i in 0..(capacity + extra) {
            rec.record(FlightEventKind::Subscribe, format!("e{i}"));
        }
        let dump = rec.dump();
        assert_eq!(dump.len(), capacity);
        // Oldest `extra` events evicted: dump starts at e{extra}.
        assert_eq!(dump[0].detail, format!("e{extra}"));
        assert_eq!(dump.last().unwrap().detail, format!("e{}", capacity + extra - 1));
        // Order preserved: seq strictly increasing and contiguous.
        for (i, e) in dump.iter().enumerate() {
            assert_eq!(e.seq, (extra + i) as u64);
        }
        assert_eq!(rec.recorded(), (capacity + extra) as u64);
    }

    #[test]
    fn stalled_writer_does_not_clobber_newer_event() {
        let rec = FlightRecorder::with_capacity(4);
        // A writer reserves seq 0 but stalls before storing. Meanwhile the
        // ring wraps: seq 4 lands in slot 0.
        let stalled_seq = rec.inner.head.fetch_add(1, Ordering::Relaxed);
        assert_eq!(stalled_seq, 0);
        for i in 1..=4u64 {
            rec.record(FlightEventKind::Subscribe, format!("e{i}"));
        }
        // The stalled writer finally performs its slot write: it must not
        // overwrite the newer event that already occupies the slot.
        rec.store(FlightEvent {
            seq: stalled_seq,
            at_micros: 0,
            kind: FlightEventKind::QueueDrop,
            detail: "stalled".into(),
            epoch: None,
            worker_id: None,
        });
        let dump = rec.dump();
        assert_eq!(dump.len(), 4);
        assert_eq!(dump.last().unwrap().detail, "e4", "newest event survives");
        assert!(dump.iter().all(|e| e.detail != "stalled"));
    }

    #[test]
    fn json_roundtrip() {
        let rec = FlightRecorder::with_capacity(4);
        rec.record(FlightEventKind::HealthTransition, "healthy -> degraded");
        rec.record(FlightEventKind::DecodeError, "peer 127.0.0.1:1: bad crc");
        rec.record_cluster(FlightEventKind::Failover, "1 cell orphaned", "victim", 3);
        let back = events_from_json(&rec.dump_json()).unwrap();
        assert_eq!(back, rec.dump());
        assert_eq!(back[2].epoch, Some(3));
        assert_eq!(back[2].worker_id.as_deref(), Some("victim"));
        assert_eq!(back[0].epoch, None);
    }

    #[test]
    fn legacy_dumps_without_cluster_fields_decode() {
        let json = r#"[{"seq":0,"at_micros":5,"kind":"reconnect","detail":"peer"}]"#;
        let events = events_from_json(json).unwrap();
        assert_eq!(events[0].epoch, None);
        assert_eq!(events[0].worker_id, None);
    }

    #[test]
    fn concurrent_recording_keeps_every_slot_valid() {
        let rec = FlightRecorder::with_capacity(64);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        rec.record(FlightEventKind::QueueDrop, format!("t{t}.{i}"));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(rec.recorded(), 800);
        let dump = rec.dump();
        assert_eq!(dump.len(), 64);
        assert!(dump.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
