//! The cluster coordinator: membership, heartbeat supervision, and
//! epoch-numbered cell assignment.
//!
//! Workers dial the coordinator's frame port, negotiate capabilities via
//! `Hello` (the coordinator requires [`CAP_CLUSTER`]), register with
//! `JoinCluster`, and prove liveness with `WorkerHeartbeat` frames. Every
//! membership change — join, leave, missed heartbeats — bumps the epoch,
//! recomputes the assignment table through the pluggable [`Placement`]
//! strategy (stable: survivors keep their cells), broadcasts the new
//! `Assign` frame to every connected worker, announces the epoch on
//! [`EPOCH_TOPIC`] so application servers can replay buffered writes, and
//! silently re-registers every cached subscription (`renewal: true`) so
//! replacement workers rebuild matching state without clients seeing a
//! stale initial result.

use crate::assignment::{AssignmentTable, Placement, RoundRobin, WorkerInfo};
use invalidb_broker::{BrokerHandle, CLUSTER_TOPIC, EPOCH_TOPIC};
use invalidb_common::{doc, ClusterMessage, Document, GridShape, Value};
use invalidb_net::frame::{Decoder, Frame, CAP_BINARY, CAP_CLUSTER, CAP_METRICS};
use invalidb_obs::{
    to_prometheus_federated, AdminConfig, AdminServer, FlightEventKind, HealthMonitor, HealthPolicy,
    HealthStatus, MetricsRegistry, MetricsSnapshot,
};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Coordinator tuning knobs.
#[derive(Clone)]
pub struct CoordinatorConfig {
    /// Shape of the grid to assign.
    pub grid: GridShape,
    /// A worker silent for longer than this is declared dead and its cells
    /// are reassigned.
    pub heartbeat_timeout: Duration,
    /// How often the supervisor scans for missed heartbeats.
    pub supervise_interval: Duration,
    /// Placement strategy for orphaned cells.
    pub placement: Arc<dyn Placement>,
    /// Metrics registry (gauges `cluster.workers_alive`, `cluster.epoch`,
    /// `cluster.cells_unassigned` live here, and the hosted admin endpoint
    /// derives `/healthz` from it).
    pub metrics: MetricsRegistry,
    /// Optional admin endpoint bind address (e.g. `127.0.0.1:0`).
    pub admin_addr: Option<String>,
    /// Codec for epoch notices and replayed subscription envelopes.
    pub wire_codec: invalidb_json::WireCodec,
}

impl CoordinatorConfig {
    /// Defaults: 2 s heartbeat timeout, 100 ms supervision, weighted
    /// round-robin placement, no admin endpoint.
    pub fn new(grid: GridShape) -> CoordinatorConfig {
        CoordinatorConfig {
            grid,
            heartbeat_timeout: Duration::from_secs(2),
            supervise_interval: Duration::from_millis(100),
            placement: Arc::new(RoundRobin),
            metrics: MetricsRegistry::new(),
            admin_addr: None,
            wire_codec: invalidb_json::WireCodec::default(),
        }
    }
}

struct WorkerConn {
    weight: u32,
    last_heartbeat: Instant,
    /// Write half of the worker's control connection, for Assign pushes.
    stream: Arc<Mutex<TcpStream>>,
    /// Highest epoch this worker has been caught up to with a subscription
    /// replay *after* it reported hosting cells at that epoch (see the
    /// `CellState` arm of the connection loop).
    caught_up_epoch: u64,
    /// Epoch the worker last announced in a heartbeat.
    heartbeat_epoch: u64,
    /// Latest federated metrics snapshot (`MetricsReport`), with the epoch
    /// the worker reported it under. `None` until the first report.
    snapshot: Option<(u64, MetricsSnapshot)>,
    /// Per-worker health state machine, fed by `MetricsReport` snapshots.
    health: HealthMonitor,
    /// Status from the last evaluated snapshot.
    health_status: HealthStatus,
}

impl WorkerConn {
    fn new(weight: u32, stream: Arc<Mutex<TcpStream>>) -> WorkerConn {
        WorkerConn {
            weight,
            last_heartbeat: Instant::now(),
            stream,
            caught_up_epoch: 0,
            heartbeat_epoch: 0,
            snapshot: None,
            health: HealthMonitor::new(HealthPolicy::default()),
            health_status: HealthStatus::default(),
        }
    }
}

struct State {
    table: AssignmentTable,
    workers: HashMap<String, WorkerConn>,
    /// Cached Subscribe envelopes by (tenant, subscription id) — replayed
    /// with `renewal: true` after every reassignment so replacement workers
    /// rebuild matching state.
    subscriptions: HashMap<(String, u64), invalidb_common::SubscriptionRequest>,
    /// When cells were last orphaned (worker death/hangup) and recovery is
    /// still incomplete. Cleared — and `cluster.failover_mttr_ms` recorded
    /// — once every cell is assigned and every owner has been caught up at
    /// the current epoch.
    failover_since: Option<Instant>,
}

struct Inner {
    config: CoordinatorConfig,
    broker: BrokerHandle,
    state: Mutex<State>,
    running: AtomicBool,
}

/// A running coordinator. Dropping it stops all supervision threads.
pub struct Coordinator {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    admin: Option<AdminServer>,
    threads: Vec<JoinHandle<()>>,
}

impl Coordinator {
    /// Binds the coordinator's frame port and starts the accept,
    /// supervision, and subscription-cache threads. `broker` is the event
    /// layer shared with workers and application servers.
    pub fn bind(
        addr: impl ToSocketAddrs,
        broker: impl Into<BrokerHandle>,
        config: CoordinatorConfig,
    ) -> std::io::Result<Coordinator> {
        let broker: BrokerHandle = broker.into();
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                table: AssignmentTable::new(config.grid),
                workers: HashMap::new(),
                subscriptions: HashMap::new(),
                failover_since: None,
            }),
            config,
            broker,
            running: AtomicBool::new(true),
        });
        publish_gauges(&inner, &inner.state.lock());
        // The coordinator's admin endpoint adds two cluster-wide views on
        // top of the built-ins: `/cluster` (membership, health, and the
        // assignment table as JSON) and a federated `/metrics` that shadows
        // the built-in with per-worker labeled series.
        let admin = inner.config.admin_addr.as_deref().and_then(|addr| {
            let cluster_inner = Arc::clone(&inner);
            let metrics_inner = Arc::clone(&inner);
            let admin_config = AdminConfig::default()
                .with_route("/cluster", move || (200, "application/json", cluster_json(&cluster_inner)))
                .with_route("/metrics", move || {
                    let local = metrics_inner.config.metrics.snapshot();
                    let workers: Vec<(String, MetricsSnapshot)> = {
                        let state = metrics_inner.state.lock();
                        state
                            .workers
                            .iter()
                            .filter_map(|(name, w)| {
                                w.snapshot.as_ref().map(|(_, snap)| (name.clone(), snap.clone()))
                            })
                            .collect()
                    };
                    (
                        200,
                        "text/plain; version=0.0.4; charset=utf-8",
                        to_prometheus_federated(&local, &workers),
                    )
                });
            match AdminServer::bind(addr, inner.config.metrics.clone(), admin_config) {
                Ok(server) => Some(server),
                Err(_) => {
                    inner.config.metrics.inc("admin.bind_errors");
                    None
                }
            }
        });

        let mut threads = Vec::new();
        {
            let inner = Arc::clone(&inner);
            threads.push(
                thread::Builder::new()
                    .name("coord-accept".into())
                    .spawn(move || accept_loop(listener, inner))
                    .expect("spawn accept thread"),
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                thread::Builder::new()
                    .name("coord-supervise".into())
                    .spawn(move || supervise_loop(inner))
                    .expect("spawn supervisor thread"),
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                thread::Builder::new()
                    .name("coord-subcache".into())
                    .spawn(move || subscription_cache_loop(inner))
                    .expect("spawn subscription cache thread"),
            );
        }
        Ok(Coordinator { inner, local_addr, admin, threads })
    }

    /// Where the coordinator's frame port listens.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Where the hosted admin endpoint listens, if one is running.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin.as_ref().map(|a| a.local_addr())
    }

    /// Current assignment epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.state.lock().table.epoch
    }

    /// Number of workers currently considered alive.
    pub fn workers_alive(&self) -> usize {
        self.inner.state.lock().workers.len()
    }

    /// A snapshot of the current assignment table.
    pub fn assignment(&self) -> AssignmentTable {
        self.inner.state.lock().table.clone()
    }

    /// Blocks until every cell is assigned (or the timeout passes);
    /// returns whether the grid is fully assigned.
    pub fn wait_assigned(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.inner.state.lock().table.unassigned() == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(10));
        }
    }

    /// Stops the coordinator; worker connections are closed.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if !self.inner.running.swap(false, Ordering::SeqCst) {
            return;
        }
        if let Some(mut admin) = self.admin.take() {
            admin.shutdown();
        }
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.local_addr);
        {
            let state = self.inner.state.lock();
            for worker in state.workers.values() {
                let _ = worker.stream.lock().shutdown(Shutdown::Both);
            }
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.stop();
    }
}

fn publish_gauges(inner: &Inner, state: &State) {
    let m = &inner.config.metrics;
    m.set_gauge("cluster.workers_alive", state.workers.len() as u64);
    m.set_gauge("cluster.epoch", state.table.epoch);
    m.set_gauge("cluster.cells_unassigned", state.table.unassigned() as u64);
}

/// Renders the `/cluster` admin document: epoch, grid shape, assignment
/// table, failover state, and per-worker membership/health rows.
fn cluster_json(inner: &Inner) -> String {
    let state = inner.state.lock();
    // BTreeMap for deterministic row order in the rendered JSON.
    let rows: BTreeMap<&String, &WorkerConn> = state.workers.iter().collect();
    let workers: Vec<Value> = rows
        .into_iter()
        .map(|(name, w)| {
            let mut d = Document::with_capacity(8);
            d.insert("name", name.as_str());
            d.insert("weight", w.weight as i64);
            d.insert("heartbeat_epoch", w.heartbeat_epoch as i64);
            d.insert("caught_up_epoch", w.caught_up_epoch as i64);
            d.insert("last_heartbeat_ms", w.last_heartbeat.elapsed().as_millis() as i64);
            d.insert("health", w.health_status.as_str());
            d.insert(
                "cells",
                Value::Array(
                    state.table.cells_of(name).into_iter().map(|c| (c as i64).into()).collect(),
                ),
            );
            match &w.snapshot {
                Some((epoch, _)) => d.insert("metrics_epoch", *epoch as i64),
                None => d.insert("metrics_epoch", Value::Null),
            };
            Value::Object(d)
        })
        .collect();
    let assignment: Vec<Value> = state
        .table
        .cells
        .iter()
        .map(|owner| match owner {
            Some(w) => Value::String(w.clone()),
            None => Value::Null,
        })
        .collect();
    let doc = doc! {
        "epoch" => state.table.epoch as i64,
        "grid" => Value::Object(doc! {
            "query_partitions" => state.table.grid.query_partitions as i64,
            "write_partitions" => state.table.grid.write_partitions as i64,
        }),
        "unassigned" => state.table.unassigned() as i64,
        "cached_subscriptions" => state.subscriptions.len() as i64,
        "failover_in_progress" => state.failover_since.is_some(),
        "workers" => Value::Array(workers),
        "assignment" => Value::Array(assignment),
    };
    invalidb_json::to_string(&doc)
}

/// Closes the failover timeline once the grid has actually recovered:
/// every cell assigned *and* every owner caught up (subscription replay
/// delivered after it reported cells) at the current epoch. Records
/// `cluster.failover_mttr_ms` — SIGKILL-to-recovered as one number — as
/// both a gauge (last recovery) and a histogram (all recoveries).
fn maybe_complete_failover(inner: &Inner, state: &mut State) {
    let Some(since) = state.failover_since else { return };
    if state.table.unassigned() != 0 {
        return;
    }
    let epoch = state.table.epoch;
    let caught_up = state
        .table
        .cells
        .iter()
        .flatten()
        .all(|owner| state.workers.get(owner).map(|w| w.caught_up_epoch >= epoch).unwrap_or(false));
    if !caught_up {
        return;
    }
    let mttr_ms = since.elapsed().as_millis() as u64;
    state.failover_since = None;
    let m = &inner.config.metrics;
    m.set_gauge("cluster.failover_mttr_ms", mttr_ms);
    m.record("cluster.failover_mttr_ms", mttr_ms);
    m.flight().record_cluster(
        FlightEventKind::Failover,
        format!("recovered in {mttr_ms} ms at epoch {epoch}"),
        "coordinator",
        epoch,
    );
}

/// Recomputes placement after a membership change, broadcasts the table,
/// announces the epoch, and replays cached subscriptions. Caller must have
/// already updated `state.workers` / evicted dead owners.
fn reassign(inner: &Inner, state: &mut State, cause: &str, cause_worker: &str) {
    state.table.epoch += 1;
    let workers: Vec<WorkerInfo> = state
        .workers
        .iter()
        .map(|(name, w)| WorkerInfo { name: name.clone(), weight: w.weight })
        .collect();
    let before: Vec<Option<String>> = state.table.cells.clone();
    inner.config.placement.place(inner.config.grid, &workers, &mut state.table.cells);
    let moved = before.iter().zip(&state.table.cells).filter(|(a, b)| a != b).count();
    publish_gauges(inner, state);
    inner.config.metrics.flight().record_cluster(
        FlightEventKind::Failover,
        format!(
            "epoch {} ({cause}): {moved} cells reassigned, {} unassigned",
            state.table.epoch,
            state.table.unassigned()
        ),
        cause_worker,
        state.table.epoch,
    );

    // Push the new table to every live worker.
    let assign = Frame::Assign {
        epoch: state.table.epoch,
        query_partitions: inner.config.grid.query_partitions as u32,
        write_partitions: inner.config.grid.write_partitions as u32,
        cells: state.table.assigned_cells(),
    };
    let wire = assign.encode();
    for worker in state.workers.values() {
        let _ = worker.stream.lock().write_all(&wire);
    }

    // Tell application servers the epoch moved so they can replay their
    // recent-write buffers and renew subscriptions against the store.
    let notice = doc! {
        "epoch" => state.table.epoch as i64,
        "reassigned" => moved as i64,
    };
    inner.broker.publish(EPOCH_TOPIC, inner.config.wire_codec.encode(&notice));

    // Silent re-registration: replacement workers rebuild matching state
    // from the cached subscription (plus retention replay); `renewal: true`
    // suppresses the stale initial result at the notifier.
    replay_subscriptions(inner, state);
}

/// Publishes every cached subscription with `renewal: true`. Called at
/// reassignment time and again when a worker first reports cells at the
/// current epoch — the second pass closes the race where a replacement
/// worker's rebuilt topology subscribes to the cluster topic *after* the
/// reassignment-time replay was published.
fn replay_subscriptions(inner: &Inner, state: &State) {
    let mut replayed = 0usize;
    for req in state.subscriptions.values() {
        let mut req = req.clone();
        req.renewal = true;
        let payload = inner.config.wire_codec.encode(&ClusterMessage::Subscribe(req).to_document());
        inner.broker.publish(CLUSTER_TOPIC, payload);
        replayed += 1;
    }
    if replayed > 0 {
        inner.config.metrics.add("cluster.subscriptions_replayed", replayed as u64);
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    while inner.running.load(Ordering::SeqCst) {
        let (stream, peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => continue,
        };
        if !inner.running.load(Ordering::SeqCst) {
            break;
        }
        let inner = Arc::clone(&inner);
        let _ = thread::Builder::new()
            .name(format!("coord-conn-{peer}"))
            .spawn(move || connection_loop(stream, inner));
    }
}

/// One worker control connection: Hello negotiation, JoinCluster
/// registration, heartbeat and cell-state ingestion.
fn connection_loop(mut stream: TcpStream, inner: Arc<Inner>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let write_half = match stream.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => return,
    };
    let mut decoder = Decoder::new();
    let mut buf = [0u8; 16 * 1024];
    // The worker this connection registered as, for cleanup on hangup.
    let mut registered: Option<String> = None;

    'outer: while inner.running.load(Ordering::SeqCst) {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        decoder.feed(&buf[..n]);
        loop {
            let frame = match decoder.next() {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(_) => {
                    inner.config.metrics.inc("cluster.decode_errors");
                    break 'outer;
                }
            };
            match frame {
                Frame::Hello { capabilities, .. } => {
                    // A legacy peer without CAP_CLUSTER gets a polite Hello
                    // back and is otherwise ignored — it will never send
                    // the membership frames this port exists for.
                    // CAP_METRICS invites workers to ship MetricsReport
                    // snapshots for federation.
                    let reply = Frame::Hello {
                        client: "invalidb-coordinator".into(),
                        capabilities: CAP_BINARY | CAP_CLUSTER | CAP_METRICS,
                    };
                    let _ = write_half.lock().write_all(&reply.encode());
                    if capabilities & CAP_CLUSTER == 0 {
                        inner.config.metrics.inc("cluster.legacy_hellos");
                    }
                }
                Frame::JoinCluster { worker, weight } => {
                    let mut state = inner.state.lock();
                    state
                        .workers
                        .insert(worker.clone(), WorkerConn::new(weight, Arc::clone(&write_half)));
                    registered = Some(worker.clone());
                    inner.config.metrics.flight().record_cluster(
                        FlightEventKind::WorkerJoin,
                        format!("{worker} weight={weight}"),
                        worker.as_str(),
                        state.table.epoch,
                    );
                    reassign(&inner, &mut state, &format!("join {worker}"), &worker);
                }
                Frame::WorkerHeartbeat { worker, epoch, .. } => {
                    let mut state = inner.state.lock();
                    if let Some(w) = state.workers.get_mut(&worker) {
                        w.last_heartbeat = Instant::now();
                        w.heartbeat_epoch = epoch;
                    }
                }
                Frame::CellState { worker, epoch, cell, active_queries, retained_writes } => {
                    let m = &inner.config.metrics;
                    m.set_gauge(&format!("cluster.{worker}.cell{cell}.active_queries"), active_queries);
                    m.set_gauge(
                        &format!("cluster.{worker}.cell{cell}.retained_writes"),
                        retained_writes,
                    );
                    // First report at the current epoch: the worker's
                    // rebuilt topology is live, so catch it up with a
                    // subscription replay (idempotent for everyone else).
                    let mut state = inner.state.lock();
                    if epoch == state.table.epoch {
                        if let Some(w) = state.workers.get_mut(&worker) {
                            if w.caught_up_epoch < epoch {
                                w.caught_up_epoch = epoch;
                                replay_subscriptions(&inner, &state);
                            }
                        }
                        // A catch-up may be the last step of a failover:
                        // close the MTTR timeline if everything recovered.
                        maybe_complete_failover(&inner, &mut state);
                    }
                }
                Frame::MetricsReport { worker, epoch, snapshot } => {
                    let m = &inner.config.metrics;
                    m.inc("cluster.metrics_reports");
                    let parsed =
                        std::str::from_utf8(&snapshot).ok().and_then(MetricsSnapshot::from_json);
                    let Some(snap) = parsed else {
                        m.inc("cluster.metrics_decode_errors");
                        continue;
                    };
                    let mut state = inner.state.lock();
                    if let Some(w) = state.workers.get_mut(&worker) {
                        // Per-worker health, derived from the federated
                        // snapshot with the same policy the worker's own
                        // admin endpoint would use.
                        let report = w.health.evaluate(&snap);
                        if report.status != w.health_status {
                            m.flight().record_cluster(
                                FlightEventKind::HealthTransition,
                                format!(
                                    "worker {worker}: {} -> {}",
                                    w.health_status.as_str(),
                                    report.status.as_str()
                                ),
                                worker.as_str(),
                                epoch,
                            );
                            w.health_status = report.status;
                        }
                        m.set_gauge(&format!("cluster.{worker}.health"), report.status.as_gauge());
                        w.snapshot = Some((epoch, snap));
                    }
                }
                Frame::Heartbeat { nonce } => {
                    let _ = write_half.lock().write_all(&Frame::Heartbeat { nonce }.encode());
                }
                // Broker traffic does not belong on the coordinator port.
                Frame::Subscribe { .. }
                | Frame::Unsubscribe { .. }
                | Frame::Publish { .. }
                | Frame::Ack { .. }
                | Frame::Assign { .. } => {}
            }
        }
    }

    // Connection gone: treat as an immediate leave (faster than waiting
    // for the heartbeat timeout).
    if let Some(worker) = registered {
        let mut state = inner.state.lock();
        // Only evict if this connection is still the registered one (the
        // worker may have reconnected on a fresh socket).
        let same_conn =
            state.workers.get(&worker).map(|w| Arc::ptr_eq(&w.stream, &write_half)).unwrap_or(false);
        if same_conn && inner.running.load(Ordering::SeqCst) {
            state.workers.remove(&worker);
            let orphaned = state.table.evict(&worker);
            if orphaned > 0 {
                // Start (or keep) the failover clock: cells just lost
                // their host; MTTR runs until the grid is rebuilt.
                state.failover_since.get_or_insert_with(Instant::now);
            }
            inner.config.metrics.flight().record_cluster(
                FlightEventKind::WorkerLeave,
                format!("{worker} hangup, {orphaned} cells"),
                worker.as_str(),
                state.table.epoch,
            );
            reassign(&inner, &mut state, &format!("hangup {worker}"), &worker);
            maybe_complete_failover(&inner, &mut state);
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Declares workers dead after `heartbeat_timeout` of silence.
fn supervise_loop(inner: Arc<Inner>) {
    while inner.running.load(Ordering::SeqCst) {
        thread::sleep(inner.config.supervise_interval);
        let mut state = inner.state.lock();
        let timeout = inner.config.heartbeat_timeout;
        let dead: Vec<String> = state
            .workers
            .iter()
            .filter(|(_, w)| w.last_heartbeat.elapsed() > timeout)
            .map(|(name, _)| name.clone())
            .collect();
        if dead.is_empty() {
            continue;
        }
        for worker in &dead {
            // MTTR starts when the worker went silent, not when the
            // timeout fired — detection latency is part of recovery time.
            let mut last_seen = Instant::now();
            if let Some(conn) = state.workers.remove(worker) {
                last_seen = conn.last_heartbeat;
                let _ = conn.stream.lock().shutdown(Shutdown::Both);
            }
            let orphaned = state.table.evict(worker);
            if orphaned > 0 {
                let since = state.failover_since.get_or_insert(last_seen);
                *since = (*since).min(last_seen);
            }
            inner.config.metrics.flight().record_cluster(
                FlightEventKind::WorkerLeave,
                format!("{worker} missed heartbeats ({timeout:?}), {orphaned} cells"),
                worker.as_str(),
                state.table.epoch,
            );
        }
        let cause_workers = dead.join(",");
        reassign(&inner, &mut state, &format!("heartbeat timeout: {cause_workers}"), &cause_workers);
    }
}

/// Caches Subscribe envelopes off the cluster topic for failover replay.
fn subscription_cache_loop(inner: Arc<Inner>) {
    let sub = inner.broker.subscribe(CLUSTER_TOPIC);
    while inner.running.load(Ordering::SeqCst) {
        let payload = match sub.recv_timeout(Duration::from_millis(250)) {
            Some(payload) => payload,
            None => continue,
        };
        let Some(msg) = invalidb_json::payload_to_document(&payload)
            .ok()
            .and_then(|d| ClusterMessage::from_document(&d).ok())
        else {
            continue;
        };
        match msg {
            // Our own renewal replays are skipped (they would only write
            // back what is already cached); app-server renewals carry
            // `renewal: false` and a fresh bootstrap result, so they
            // refresh the cache — last write wins.
            ClusterMessage::Subscribe(req) if !req.renewal => {
                let mut state = inner.state.lock();
                state.subscriptions.insert((req.tenant.0.clone(), req.subscription.0), req);
                let count = state.subscriptions.len() as u64;
                inner.config.metrics.set_gauge("cluster.cached_subscriptions", count);
            }
            ClusterMessage::Unsubscribe { tenant, subscription, .. } => {
                let mut state = inner.state.lock();
                state.subscriptions.remove(&(tenant.0, subscription.0));
                let count = state.subscriptions.len() as u64;
                inner.config.metrics.set_gauge("cluster.cached_subscriptions", count);
            }
            _ => {}
        }
    }
}
