//! The cluster coordinator: membership, heartbeat supervision, and
//! epoch-numbered cell assignment.
//!
//! Workers dial the coordinator's frame port, negotiate capabilities via
//! `Hello` (the coordinator requires [`CAP_CLUSTER`]), register with
//! `JoinCluster`, and prove liveness with `WorkerHeartbeat` frames. Every
//! membership change — join, leave, missed heartbeats — bumps the epoch,
//! recomputes the assignment table through the pluggable [`Placement`]
//! strategy (stable: survivors keep their cells), broadcasts the new
//! `Assign` frame to every connected worker, announces the epoch on
//! [`EPOCH_TOPIC`] so application servers can replay buffered writes, and
//! silently re-registers every cached subscription (`renewal: true`) so
//! replacement workers rebuild matching state without clients seeing a
//! stale initial result.

use crate::assignment::{AssignmentTable, Placement, RoundRobin, WorkerInfo};
use invalidb_broker::{BrokerHandle, CLUSTER_TOPIC, EPOCH_TOPIC};
use invalidb_common::{doc, ClusterMessage, GridShape};
use invalidb_net::frame::{Decoder, Frame, CAP_BINARY, CAP_CLUSTER};
use invalidb_obs::{AdminConfig, AdminServer, FlightEventKind, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Coordinator tuning knobs.
#[derive(Clone)]
pub struct CoordinatorConfig {
    /// Shape of the grid to assign.
    pub grid: GridShape,
    /// A worker silent for longer than this is declared dead and its cells
    /// are reassigned.
    pub heartbeat_timeout: Duration,
    /// How often the supervisor scans for missed heartbeats.
    pub supervise_interval: Duration,
    /// Placement strategy for orphaned cells.
    pub placement: Arc<dyn Placement>,
    /// Metrics registry (gauges `cluster.workers_alive`, `cluster.epoch`,
    /// `cluster.cells_unassigned` live here, and the hosted admin endpoint
    /// derives `/healthz` from it).
    pub metrics: MetricsRegistry,
    /// Optional admin endpoint bind address (e.g. `127.0.0.1:0`).
    pub admin_addr: Option<String>,
    /// Codec for epoch notices and replayed subscription envelopes.
    pub wire_codec: invalidb_json::WireCodec,
}

impl CoordinatorConfig {
    /// Defaults: 2 s heartbeat timeout, 100 ms supervision, weighted
    /// round-robin placement, no admin endpoint.
    pub fn new(grid: GridShape) -> CoordinatorConfig {
        CoordinatorConfig {
            grid,
            heartbeat_timeout: Duration::from_secs(2),
            supervise_interval: Duration::from_millis(100),
            placement: Arc::new(RoundRobin),
            metrics: MetricsRegistry::new(),
            admin_addr: None,
            wire_codec: invalidb_json::WireCodec::default(),
        }
    }
}

struct WorkerConn {
    weight: u32,
    last_heartbeat: Instant,
    /// Write half of the worker's control connection, for Assign pushes.
    stream: Arc<Mutex<TcpStream>>,
    /// Highest epoch this worker has been caught up to with a subscription
    /// replay *after* it reported hosting cells at that epoch (see the
    /// `CellState` arm of the connection loop).
    caught_up_epoch: u64,
}

struct State {
    table: AssignmentTable,
    workers: HashMap<String, WorkerConn>,
    /// Cached Subscribe envelopes by (tenant, subscription id) — replayed
    /// with `renewal: true` after every reassignment so replacement workers
    /// rebuild matching state.
    subscriptions: HashMap<(String, u64), invalidb_common::SubscriptionRequest>,
}

struct Inner {
    config: CoordinatorConfig,
    broker: BrokerHandle,
    state: Mutex<State>,
    running: AtomicBool,
}

/// A running coordinator. Dropping it stops all supervision threads.
pub struct Coordinator {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    admin: Option<AdminServer>,
    threads: Vec<JoinHandle<()>>,
}

impl Coordinator {
    /// Binds the coordinator's frame port and starts the accept,
    /// supervision, and subscription-cache threads. `broker` is the event
    /// layer shared with workers and application servers.
    pub fn bind(
        addr: impl ToSocketAddrs,
        broker: impl Into<BrokerHandle>,
        config: CoordinatorConfig,
    ) -> std::io::Result<Coordinator> {
        let broker: BrokerHandle = broker.into();
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let admin = config.admin_addr.as_deref().and_then(|addr| {
            match AdminServer::bind(addr, config.metrics.clone(), AdminConfig::default()) {
                Ok(server) => Some(server),
                Err(_) => {
                    config.metrics.inc("admin.bind_errors");
                    None
                }
            }
        });
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                table: AssignmentTable::new(config.grid),
                workers: HashMap::new(),
                subscriptions: HashMap::new(),
            }),
            config,
            broker,
            running: AtomicBool::new(true),
        });
        publish_gauges(&inner, &inner.state.lock());

        let mut threads = Vec::new();
        {
            let inner = Arc::clone(&inner);
            threads.push(
                thread::Builder::new()
                    .name("coord-accept".into())
                    .spawn(move || accept_loop(listener, inner))
                    .expect("spawn accept thread"),
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                thread::Builder::new()
                    .name("coord-supervise".into())
                    .spawn(move || supervise_loop(inner))
                    .expect("spawn supervisor thread"),
            );
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(
                thread::Builder::new()
                    .name("coord-subcache".into())
                    .spawn(move || subscription_cache_loop(inner))
                    .expect("spawn subscription cache thread"),
            );
        }
        Ok(Coordinator { inner, local_addr, admin, threads })
    }

    /// Where the coordinator's frame port listens.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Where the hosted admin endpoint listens, if one is running.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin.as_ref().map(|a| a.local_addr())
    }

    /// Current assignment epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.state.lock().table.epoch
    }

    /// Number of workers currently considered alive.
    pub fn workers_alive(&self) -> usize {
        self.inner.state.lock().workers.len()
    }

    /// A snapshot of the current assignment table.
    pub fn assignment(&self) -> AssignmentTable {
        self.inner.state.lock().table.clone()
    }

    /// Blocks until every cell is assigned (or the timeout passes);
    /// returns whether the grid is fully assigned.
    pub fn wait_assigned(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.inner.state.lock().table.unassigned() == 0 {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(10));
        }
    }

    /// Stops the coordinator; worker connections are closed.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if !self.inner.running.swap(false, Ordering::SeqCst) {
            return;
        }
        if let Some(mut admin) = self.admin.take() {
            admin.shutdown();
        }
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.local_addr);
        {
            let state = self.inner.state.lock();
            for worker in state.workers.values() {
                let _ = worker.stream.lock().shutdown(Shutdown::Both);
            }
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.stop();
    }
}

fn publish_gauges(inner: &Inner, state: &State) {
    let m = &inner.config.metrics;
    m.set_gauge("cluster.workers_alive", state.workers.len() as u64);
    m.set_gauge("cluster.epoch", state.table.epoch);
    m.set_gauge("cluster.cells_unassigned", state.table.unassigned() as u64);
}

/// Recomputes placement after a membership change, broadcasts the table,
/// announces the epoch, and replays cached subscriptions. Caller must have
/// already updated `state.workers` / evicted dead owners.
fn reassign(inner: &Inner, state: &mut State, cause: &str) {
    state.table.epoch += 1;
    let workers: Vec<WorkerInfo> = state
        .workers
        .iter()
        .map(|(name, w)| WorkerInfo { name: name.clone(), weight: w.weight })
        .collect();
    let before: Vec<Option<String>> = state.table.cells.clone();
    inner.config.placement.place(inner.config.grid, &workers, &mut state.table.cells);
    let moved = before.iter().zip(&state.table.cells).filter(|(a, b)| a != b).count();
    publish_gauges(inner, state);
    inner.config.metrics.flight().record(
        FlightEventKind::Failover,
        format!(
            "epoch {} ({cause}): {moved} cells reassigned, {} unassigned",
            state.table.epoch,
            state.table.unassigned()
        ),
    );

    // Push the new table to every live worker.
    let assign = Frame::Assign {
        epoch: state.table.epoch,
        query_partitions: inner.config.grid.query_partitions as u32,
        write_partitions: inner.config.grid.write_partitions as u32,
        cells: state.table.assigned_cells(),
    };
    let wire = assign.encode();
    for worker in state.workers.values() {
        let _ = worker.stream.lock().write_all(&wire);
    }

    // Tell application servers the epoch moved so they can replay their
    // recent-write buffers and renew subscriptions against the store.
    let notice = doc! {
        "epoch" => state.table.epoch as i64,
        "reassigned" => moved as i64,
    };
    inner.broker.publish(EPOCH_TOPIC, inner.config.wire_codec.encode(&notice));

    // Silent re-registration: replacement workers rebuild matching state
    // from the cached subscription (plus retention replay); `renewal: true`
    // suppresses the stale initial result at the notifier.
    replay_subscriptions(inner, state);
}

/// Publishes every cached subscription with `renewal: true`. Called at
/// reassignment time and again when a worker first reports cells at the
/// current epoch — the second pass closes the race where a replacement
/// worker's rebuilt topology subscribes to the cluster topic *after* the
/// reassignment-time replay was published.
fn replay_subscriptions(inner: &Inner, state: &State) {
    let mut replayed = 0usize;
    for req in state.subscriptions.values() {
        let mut req = req.clone();
        req.renewal = true;
        let payload = inner.config.wire_codec.encode(&ClusterMessage::Subscribe(req).to_document());
        inner.broker.publish(CLUSTER_TOPIC, payload);
        replayed += 1;
    }
    if replayed > 0 {
        inner.config.metrics.add("cluster.subscriptions_replayed", replayed as u64);
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    while inner.running.load(Ordering::SeqCst) {
        let (stream, peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => continue,
        };
        if !inner.running.load(Ordering::SeqCst) {
            break;
        }
        let inner = Arc::clone(&inner);
        let _ = thread::Builder::new()
            .name(format!("coord-conn-{peer}"))
            .spawn(move || connection_loop(stream, inner));
    }
}

/// One worker control connection: Hello negotiation, JoinCluster
/// registration, heartbeat and cell-state ingestion.
fn connection_loop(mut stream: TcpStream, inner: Arc<Inner>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let write_half = match stream.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => return,
    };
    let mut decoder = Decoder::new();
    let mut buf = [0u8; 16 * 1024];
    // The worker this connection registered as, for cleanup on hangup.
    let mut registered: Option<String> = None;

    'outer: while inner.running.load(Ordering::SeqCst) {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        decoder.feed(&buf[..n]);
        loop {
            let frame = match decoder.next() {
                Ok(Some(frame)) => frame,
                Ok(None) => break,
                Err(_) => {
                    inner.config.metrics.inc("cluster.decode_errors");
                    break 'outer;
                }
            };
            match frame {
                Frame::Hello { capabilities, .. } => {
                    // A legacy peer without CAP_CLUSTER gets a polite Hello
                    // back and is otherwise ignored — it will never send
                    // the membership frames this port exists for.
                    let reply = Frame::Hello {
                        client: "invalidb-coordinator".into(),
                        capabilities: CAP_BINARY | CAP_CLUSTER,
                    };
                    let _ = write_half.lock().write_all(&reply.encode());
                    if capabilities & CAP_CLUSTER == 0 {
                        inner.config.metrics.inc("cluster.legacy_hellos");
                    }
                }
                Frame::JoinCluster { worker, weight } => {
                    let mut state = inner.state.lock();
                    state.workers.insert(
                        worker.clone(),
                        WorkerConn {
                            weight,
                            last_heartbeat: Instant::now(),
                            stream: Arc::clone(&write_half),
                            caught_up_epoch: 0,
                        },
                    );
                    registered = Some(worker.clone());
                    inner
                        .config
                        .metrics
                        .flight()
                        .record(FlightEventKind::WorkerJoin, format!("{worker} weight={weight}"));
                    reassign(&inner, &mut state, &format!("join {worker}"));
                }
                Frame::WorkerHeartbeat { worker, .. } => {
                    let mut state = inner.state.lock();
                    if let Some(w) = state.workers.get_mut(&worker) {
                        w.last_heartbeat = Instant::now();
                    }
                }
                Frame::CellState { worker, epoch, cell, active_queries, retained_writes } => {
                    let m = &inner.config.metrics;
                    m.set_gauge(&format!("cluster.{worker}.cell{cell}.active_queries"), active_queries);
                    m.set_gauge(
                        &format!("cluster.{worker}.cell{cell}.retained_writes"),
                        retained_writes,
                    );
                    // First report at the current epoch: the worker's
                    // rebuilt topology is live, so catch it up with a
                    // subscription replay (idempotent for everyone else).
                    let mut state = inner.state.lock();
                    if epoch == state.table.epoch {
                        if let Some(w) = state.workers.get_mut(&worker) {
                            if w.caught_up_epoch < epoch {
                                w.caught_up_epoch = epoch;
                                replay_subscriptions(&inner, &state);
                            }
                        }
                    }
                }
                Frame::Heartbeat { nonce } => {
                    let _ = write_half.lock().write_all(&Frame::Heartbeat { nonce }.encode());
                }
                // Broker traffic does not belong on the coordinator port.
                Frame::Subscribe { .. }
                | Frame::Unsubscribe { .. }
                | Frame::Publish { .. }
                | Frame::Ack { .. }
                | Frame::Assign { .. } => {}
            }
        }
    }

    // Connection gone: treat as an immediate leave (faster than waiting
    // for the heartbeat timeout).
    if let Some(worker) = registered {
        let mut state = inner.state.lock();
        // Only evict if this connection is still the registered one (the
        // worker may have reconnected on a fresh socket).
        let same_conn =
            state.workers.get(&worker).map(|w| Arc::ptr_eq(&w.stream, &write_half)).unwrap_or(false);
        if same_conn && inner.running.load(Ordering::SeqCst) {
            state.workers.remove(&worker);
            let orphaned = state.table.evict(&worker);
            inner
                .config
                .metrics
                .flight()
                .record(FlightEventKind::WorkerLeave, format!("{worker} hangup, {orphaned} cells"));
            reassign(&inner, &mut state, &format!("hangup {worker}"));
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Declares workers dead after `heartbeat_timeout` of silence.
fn supervise_loop(inner: Arc<Inner>) {
    while inner.running.load(Ordering::SeqCst) {
        thread::sleep(inner.config.supervise_interval);
        let mut state = inner.state.lock();
        let timeout = inner.config.heartbeat_timeout;
        let dead: Vec<String> = state
            .workers
            .iter()
            .filter(|(_, w)| w.last_heartbeat.elapsed() > timeout)
            .map(|(name, _)| name.clone())
            .collect();
        if dead.is_empty() {
            continue;
        }
        for worker in &dead {
            if let Some(conn) = state.workers.remove(worker) {
                let _ = conn.stream.lock().shutdown(Shutdown::Both);
            }
            let orphaned = state.table.evict(worker);
            inner.config.metrics.flight().record(
                FlightEventKind::WorkerLeave,
                format!("{worker} missed heartbeats ({timeout:?}), {orphaned} cells"),
            );
        }
        reassign(&inner, &mut state, &format!("heartbeat timeout: {}", dead.join(",")));
    }
}

/// Caches Subscribe envelopes off the cluster topic for failover replay.
fn subscription_cache_loop(inner: Arc<Inner>) {
    let sub = inner.broker.subscribe(CLUSTER_TOPIC);
    while inner.running.load(Ordering::SeqCst) {
        let payload = match sub.recv_timeout(Duration::from_millis(250)) {
            Some(payload) => payload,
            None => continue,
        };
        let Some(msg) = invalidb_json::payload_to_document(&payload)
            .ok()
            .and_then(|d| ClusterMessage::from_document(&d).ok())
        else {
            continue;
        };
        match msg {
            // Our own renewal replays are skipped (they would only write
            // back what is already cached); app-server renewals carry
            // `renewal: false` and a fresh bootstrap result, so they
            // refresh the cache — last write wins.
            ClusterMessage::Subscribe(req) if !req.renewal => {
                let mut state = inner.state.lock();
                state.subscriptions.insert((req.tenant.0.clone(), req.subscription.0), req);
                let count = state.subscriptions.len() as u64;
                inner.config.metrics.set_gauge("cluster.cached_subscriptions", count);
            }
            ClusterMessage::Unsubscribe { tenant, subscription, .. } => {
                let mut state = inner.state.lock();
                state.subscriptions.remove(&(tenant.0, subscription.0));
                let count = state.subscriptions.len() as u64;
                inner.config.metrics.set_gauge("cluster.cached_subscriptions", count);
            }
            _ => {}
        }
    }
}
