//! Multi-process InvaliDB: the cluster tier that spreads the QP × WP
//! matching grid (§5.1) across OS processes and survives losing one.
//!
//! Three roles cooperate over the existing `invalidb-net` frame protocol
//! and event layer:
//!
//! * the **coordinator** ([`Coordinator`]) owns membership — worker
//!   registration (`JoinCluster`), heartbeat-based failure detection
//!   (`WorkerHeartbeat`, configurable timeout), and epoch-numbered
//!   [`AssignmentTable`]s mapping every grid cell to a worker process,
//!   pushed as `Assign` frames;
//! * **remote workers** ([`Worker`]) host matching/sorting/aggregation
//!   stages for their assigned cells as an
//!   [`invalidb_core::Cluster`] over a [`invalidb_core::CellSet`];
//! * **application servers** stay unchanged except for epoch awareness:
//!   on an epoch bump they replay buffered writes and renew subscriptions,
//!   so a failover loses no subscription.
//!
//! Failover is the paper's recovery story made real: missed heartbeats →
//! epoch bump → cells reassigned (stable placement, survivors keep their
//! cells) → the replacement rebuilds state from the coordinator's silent
//! subscription replay (`renewal: true`, no stale initial result re-sent)
//! plus retention-guarded write replay and bootstrap-query re-execution by
//! the app servers.
//!
//! Placement is pluggable ([`Placement`]): weighted round-robin by
//! default, with a row-affinity strategy ([`RowAffinity`]) that co-locates
//! each query-partition row to eliminate shuffle traffic, per the
//! hypergraph-partitioning line of work on transactional workloads.

#![deny(missing_docs)]

pub mod assignment;
pub mod coordinator;
pub mod worker;

pub use assignment::{AssignmentTable, Placement, RoundRobin, RowAffinity, WorkerInfo};
pub use coordinator::{Coordinator, CoordinatorConfig};
pub use worker::{Worker, WorkerConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_broker::Broker;
    use invalidb_common::GridShape;
    use invalidb_core::ClusterConfig;
    use std::time::Duration;

    fn worker_config(name: &str, qp: usize, wp: usize) -> WorkerConfig {
        WorkerConfig::new(name, ClusterConfig::builder(qp, wp).build().expect("valid config"))
    }

    #[test]
    fn join_assigns_all_cells() {
        let broker = Broker::new();
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            broker.clone(),
            CoordinatorConfig::new(GridShape::new(2, 2)),
        )
        .expect("bind coordinator");
        let worker =
            Worker::connect(coord.local_addr().to_string(), broker.clone(), worker_config("w1", 2, 2));
        assert!(worker.wait_assigned(Duration::from_secs(5)), "worker should get an Assign");
        assert!(coord.wait_assigned(Duration::from_secs(5)), "all cells should be assigned");
        assert_eq!(worker.cells(), vec![0, 1, 2, 3]);
        assert!(coord.epoch() >= 1);
        assert_eq!(coord.workers_alive(), 1);
        worker.shutdown();
        coord.shutdown();
    }

    #[test]
    fn second_worker_takes_only_orphans() {
        let broker = Broker::new();
        let coord = Coordinator::bind(
            "127.0.0.1:0",
            broker.clone(),
            CoordinatorConfig::new(GridShape::new(2, 2)),
        )
        .expect("bind coordinator");
        let w1 =
            Worker::connect(coord.local_addr().to_string(), broker.clone(), worker_config("w1", 2, 2));
        assert!(w1.wait_assigned(Duration::from_secs(5)));
        let cells_before = w1.cells();
        assert_eq!(cells_before.len(), 4);

        // A second worker joins: placement is stable, so w1 keeps all four
        // cells (no orphans exist) and w2 hosts nothing yet.
        let w2 =
            Worker::connect(coord.local_addr().to_string(), broker.clone(), worker_config("w2", 2, 2));
        assert!(w2.wait_assigned(Duration::from_secs(5)));
        assert_eq!(coord.workers_alive(), 2);
        assert_eq!(w1.cells(), cells_before);
        assert!(w2.cells().is_empty());
        w1.shutdown();
        w2.shutdown();
        coord.shutdown();
    }

    #[test]
    fn dead_worker_cells_move_to_survivor() {
        let broker = Broker::new();
        let mut config = CoordinatorConfig::new(GridShape::new(2, 2));
        config.heartbeat_timeout = Duration::from_millis(400);
        let coord = Coordinator::bind("127.0.0.1:0", broker.clone(), config).expect("bind coordinator");
        let w1 =
            Worker::connect(coord.local_addr().to_string(), broker.clone(), worker_config("w1", 2, 2));
        assert!(w1.wait_assigned(Duration::from_secs(5)));
        let epoch_before = coord.epoch();

        let w2 =
            Worker::connect(coord.local_addr().to_string(), broker.clone(), worker_config("w2", 2, 2));
        assert!(w2.wait_assigned(Duration::from_secs(5)));

        // Kill w1 without a clean leave: its control thread dies with it.
        w1.shutdown();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while coord.workers_alive() != 1 || coord.assignment().unassigned() > 0 {
            assert!(std::time::Instant::now() < deadline, "failover did not converge");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(coord.epoch() > epoch_before, "failover must bump the epoch");
        let table = coord.assignment();
        assert_eq!(table.cells_of("w2").len(), 4, "{}", table.render());
        coord.shutdown();
        w2.shutdown();
    }
}
