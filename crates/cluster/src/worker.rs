//! The remote worker runtime: hosts assigned grid cells as an
//! [`invalidb_core::Cluster`] over a [`CellSet`] and keeps a control
//! connection to the coordinator.
//!
//! Lifecycle: dial the coordinator → `Hello` (announcing `CAP_CLUSTER`) →
//! `JoinCluster` → heartbeat loop. Each `Assign` frame that changes the
//! owned cell set tears down the hosted topology and rebuilds it for the
//! new cells; state is then restored by the coordinator's silent
//! subscription replay plus app-server write replay (retention-guarded, so
//! survivors drop duplicates). Connection loss triggers exponential-backoff
//! redial and a fresh `JoinCluster` — membership is lease-like, not sticky.

use invalidb_broker::BrokerHandle;
use invalidb_common::GridShape;
use invalidb_core::{CellSet, Cluster, ClusterConfig, WorkerIdentity};
use invalidb_net::frame::{Decoder, Frame, CAP_BINARY, CAP_CLUSTER, CAP_METRICS};
use invalidb_obs::MetricsRegistry;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Worker tuning knobs.
#[derive(Clone)]
pub struct WorkerConfig {
    /// Unique worker name, registered with the coordinator.
    pub name: String,
    /// Relative capacity weight (see
    /// [`crate::assignment::WorkerInfo::weight`]).
    pub weight: u32,
    /// Interval between `WorkerHeartbeat` frames. Must be well below the
    /// coordinator's heartbeat timeout.
    pub heartbeat_interval: Duration,
    /// Interval between `CellState` reports.
    pub cell_state_interval: Duration,
    /// Base configuration for the hosted topology; its grid dimensions are
    /// overwritten by each `Assign` frame.
    pub cluster: ClusterConfig,
    /// Metrics registry for worker-side gauges.
    pub metrics: MetricsRegistry,
}

impl WorkerConfig {
    /// Defaults: weight 1, 250 ms heartbeats, 1 s cell-state reports.
    pub fn new(name: impl Into<String>, cluster: ClusterConfig) -> WorkerConfig {
        WorkerConfig {
            name: name.into(),
            weight: 1,
            heartbeat_interval: Duration::from_millis(250),
            cell_state_interval: Duration::from_secs(1),
            metrics: cluster.metrics.clone(),
            cluster,
        }
    }
}

struct WorkerInner {
    config: WorkerConfig,
    broker: BrokerHandle,
    coordinator_addr: String,
    running: AtomicBool,
    /// Shared with the hosted topology's [`WorkerIdentity`], so trace
    /// stamps always carry the epoch in force at match time.
    epoch: Arc<AtomicU64>,
    /// Owned cells under the current epoch (empty before first Assign).
    cells: Mutex<BTreeSet<usize>>,
    /// Grid shape of the last accepted Assign (for cell-index → coordinate
    /// translation when reporting `CellState` load numbers).
    grid: Mutex<Option<GridShape>>,
    /// The hosted topology, rebuilt whenever the owned set changes.
    hosted: Mutex<Option<Cluster>>,
    assigned: AtomicBool,
}

/// A running remote worker. Dropping it stops the control loop and the
/// hosted topology.
pub struct Worker {
    inner: Arc<WorkerInner>,
    thread: Option<JoinHandle<()>>,
}

impl Worker {
    /// Starts a worker that dials `coordinator_addr` and hosts its assigned
    /// cells against `broker` (the shared event layer).
    pub fn connect(
        coordinator_addr: impl Into<String>,
        broker: impl Into<BrokerHandle>,
        config: WorkerConfig,
    ) -> Worker {
        let inner = Arc::new(WorkerInner {
            config,
            broker: broker.into(),
            coordinator_addr: coordinator_addr.into(),
            running: AtomicBool::new(true),
            epoch: Arc::new(AtomicU64::new(0)),
            cells: Mutex::new(BTreeSet::new()),
            grid: Mutex::new(None),
            hosted: Mutex::new(None),
            assigned: AtomicBool::new(false),
        });
        let thread = {
            let inner = Arc::clone(&inner);
            thread::Builder::new()
                .name(format!("worker-{}", inner.config.name))
                .spawn(move || control_loop(inner))
                .expect("spawn worker control thread")
        };
        Worker { inner, thread: Some(thread) }
    }

    /// The epoch of the last accepted `Assign`.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::SeqCst)
    }

    /// The cells this worker currently hosts, ascending.
    pub fn cells(&self) -> Vec<usize> {
        self.inner.cells.lock().iter().copied().collect()
    }

    /// Blocks until the worker has accepted at least one `Assign` frame
    /// (or the timeout passes); returns whether it is assigned.
    pub fn wait_assigned(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while !self.inner.assigned.load(Ordering::SeqCst) {
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(10));
        }
        true
    }

    /// Stops the worker and the hosted topology.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if !self.inner.running.swap(false, Ordering::SeqCst) {
            return;
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        if let Some(cluster) = self.inner.hosted.lock().take() {
            cluster.shutdown();
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.stop();
    }
}

fn control_loop(inner: Arc<WorkerInner>) {
    let mut backoff = Duration::from_millis(50);
    while inner.running.load(Ordering::SeqCst) {
        match TcpStream::connect(&inner.coordinator_addr) {
            Ok(stream) => {
                inner.config.metrics.set_gauge("worker.coordinator_connected", 1);
                backoff = Duration::from_millis(50);
                session(&inner, stream);
                inner.config.metrics.set_gauge("worker.coordinator_connected", 0);
            }
            Err(_) => {
                inner.config.metrics.inc("worker.connect_errors");
            }
        }
        if !inner.running.load(Ordering::SeqCst) {
            break;
        }
        thread::sleep(backoff);
        backoff = (backoff * 2).min(Duration::from_secs(2));
    }
}

/// One control-connection session: register, heartbeat, host assignments.
fn session(inner: &Arc<WorkerInner>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let hello = Frame::Hello {
        client: format!("invalidb-workerd/{}", inner.config.name),
        capabilities: CAP_BINARY | CAP_CLUSTER | CAP_METRICS,
    };
    let join = Frame::JoinCluster { worker: inner.config.name.clone(), weight: inner.config.weight };
    if stream.write_all(&hello.encode()).is_err() || stream.write_all(&join.encode()).is_err() {
        return;
    }

    let mut decoder = Decoder::new();
    let mut buf = [0u8; 16 * 1024];
    let mut last_heartbeat = Instant::now() - inner.config.heartbeat_interval;
    let mut last_cell_state = Instant::now();
    let mut nonce = 0u64;
    // Capabilities the coordinator announced in its Hello reply; metrics
    // snapshots are shipped only once CAP_METRICS is advertised.
    let mut coordinator_caps = 0u32;

    while inner.running.load(Ordering::SeqCst) {
        if last_heartbeat.elapsed() >= inner.config.heartbeat_interval {
            last_heartbeat = Instant::now();
            nonce += 1;
            let beat = Frame::WorkerHeartbeat {
                worker: inner.config.name.clone(),
                epoch: inner.epoch.load(Ordering::SeqCst),
                nonce,
            };
            if stream.write_all(&beat.encode()).is_err() {
                return;
            }
        }
        if last_cell_state.elapsed() >= inner.config.cell_state_interval {
            last_cell_state = Instant::now();
            let epoch = inner.epoch.load(Ordering::SeqCst);
            let cells: Vec<usize> = inner.cells.lock().iter().copied().collect();
            // Real load numbers: the hosted topology refreshes per-cell
            // `matching.<qp>x<wp>.*` gauges on tick into the shared
            // registry; translate cell indices back to grid coordinates
            // and read them off a snapshot.
            let grid = *inner.grid.lock();
            let snap = inner.config.metrics.snapshot();
            for cell in cells {
                let (active_queries, retained_writes) = match grid {
                    Some(g) => {
                        let c = g.coord_of(cell);
                        let prefix = format!("matching.{}x{}", c.qp, c.wp);
                        (
                            snap.gauges.get(&format!("{prefix}.active_queries")).copied().unwrap_or(0),
                            snap.gauges.get(&format!("{prefix}.retained_writes")).copied().unwrap_or(0),
                        )
                    }
                    None => (0, 0),
                };
                let report = Frame::CellState {
                    worker: inner.config.name.clone(),
                    epoch,
                    cell: cell as u32,
                    active_queries,
                    retained_writes,
                };
                if stream.write_all(&report.encode()).is_err() {
                    return;
                }
            }
            // Metrics federation: ship the full snapshot so the
            // coordinator can expose per-worker labeled series. Gated on
            // the coordinator's advertised CAP_METRICS so an old
            // coordinator never sees a frame type it cannot decode.
            if coordinator_caps & CAP_METRICS != 0 {
                let report = Frame::MetricsReport {
                    worker: inner.config.name.clone(),
                    epoch,
                    snapshot: snap.to_json().into_bytes().into(),
                };
                if stream.write_all(&report.encode()).is_err() {
                    return;
                }
                inner.config.metrics.inc("worker.metrics_reports");
            }
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        decoder.feed(&buf[..n]);
        loop {
            match decoder.next() {
                Ok(Some(Frame::Assign { epoch, query_partitions, write_partitions, cells })) => {
                    handle_assign(inner, epoch, query_partitions, write_partitions, cells);
                    // Report the new cell set immediately: the coordinator
                    // uses the first CellState at a fresh epoch to catch
                    // this worker up with a subscription replay.
                    last_cell_state = Instant::now() - inner.config.cell_state_interval;
                }
                Ok(Some(Frame::Hello { capabilities, .. })) => {
                    coordinator_caps = capabilities;
                }
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    inner.config.metrics.inc("worker.decode_errors");
                    return;
                }
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

fn handle_assign(
    inner: &Arc<WorkerInner>,
    epoch: u64,
    query_partitions: u32,
    write_partitions: u32,
    cells: Vec<(u32, String)>,
) {
    if epoch <= inner.epoch.load(Ordering::SeqCst) && inner.assigned.load(Ordering::SeqCst) {
        // Stale or duplicate table: epochs only move forward.
        return;
    }
    let mine: BTreeSet<usize> =
        cells.iter().filter(|(_, w)| *w == inner.config.name).map(|(c, _)| *c as usize).collect();
    inner.epoch.store(epoch, Ordering::SeqCst);
    *inner.grid.lock() = Some(GridShape::new(query_partitions as usize, write_partitions as usize));
    inner.config.metrics.set_gauge("worker.epoch", epoch);
    inner.config.metrics.set_gauge("worker.cells_hosted", mine.len() as u64);

    let changed = {
        let mut owned = inner.cells.lock();
        let changed = *owned != mine;
        *owned = mine.clone();
        changed
    };
    // Rebuild only when the owned set actually changed: an epoch bump that
    // reassigns *other* workers' cells must not wipe local matching state.
    if changed {
        let mut config = inner.config.cluster.clone();
        config.query_partitions = query_partitions as usize;
        config.write_partitions = write_partitions as usize;
        // Hosted cells stamp sampled traces with this worker's name and
        // the *live* epoch (the Arc is shared with the control loop).
        config.worker_identity =
            Some(WorkerIdentity::new(inner.config.name.as_str(), Arc::clone(&inner.epoch)));
        let grid = invalidb_common::GridShape::new(config.query_partitions, config.write_partitions);
        let host = Arc::new(CellSet::new(grid, mine.iter().copied()));
        let next = if mine.is_empty() {
            None
        } else {
            Some(Cluster::start_with_host(inner.broker.clone(), config, host))
        };
        let prev = {
            let mut hosted = inner.hosted.lock();
            std::mem::replace(&mut *hosted, next)
        };
        if let Some(prev) = prev {
            prev.shutdown();
        }
        inner.config.metrics.inc("worker.rebuilds");
    }
    inner.assigned.store(true, Ordering::SeqCst);
}
