//! Epoch-numbered assignment tables mapping grid cells to worker
//! processes, plus pluggable placement strategies.
//!
//! Placement is *stable*: a live worker never loses a cell it already
//! hosts. Strategies only decide where **orphaned** cells (never assigned,
//! or owned by a worker that just died) go, so a failover disturbs exactly
//! the cells of the dead worker and nothing else.

use invalidb_common::{GridCoord, GridShape};
use std::collections::BTreeMap;

/// A live worker as seen by the coordinator, input to [`Placement`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerInfo {
    /// Unique worker name (from its `JoinCluster` frame).
    pub name: String,
    /// Relative capacity; a weight-2 worker should host ~2× the cells of a
    /// weight-1 worker. Zero is treated as one.
    pub weight: u32,
}

/// One epoch's cell → worker map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssignmentTable {
    /// Epoch this table was computed in. Strictly increases on every
    /// membership change; workers reject `Assign` frames from older epochs.
    pub epoch: u64,
    /// Shape of the grid being assigned.
    pub grid: GridShape,
    /// Owner of each cell, indexed by task index (row-major); `None` while
    /// no live worker hosts the cell.
    pub cells: Vec<Option<String>>,
}

impl AssignmentTable {
    /// An empty table (epoch 0, every cell unassigned).
    pub fn new(grid: GridShape) -> AssignmentTable {
        AssignmentTable { epoch: 0, grid, cells: vec![None; grid.nodes()] }
    }

    /// The worker hosting a cell, if any.
    pub fn worker_of(&self, cell: usize) -> Option<&str> {
        self.cells.get(cell).and_then(|w| w.as_deref())
    }

    /// Task indices currently assigned to a worker, ascending.
    pub fn cells_of(&self, worker: &str) -> Vec<usize> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, w)| w.as_deref() == Some(worker))
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of cells with no live owner.
    pub fn unassigned(&self) -> usize {
        self.cells.iter().filter(|w| w.is_none()).count()
    }

    /// The assigned cells as `(task index, worker)` pairs — the payload of
    /// an `Assign` frame (unassigned cells are simply absent).
    pub fn assigned_cells(&self) -> Vec<(u32, String)> {
        self.cells
            .iter()
            .enumerate()
            .filter_map(|(i, w)| w.as_ref().map(|w| (i as u32, w.clone())))
            .collect()
    }

    /// Clears every cell owned by a worker (it died or left), returning how
    /// many cells were orphaned.
    pub fn evict(&mut self, worker: &str) -> usize {
        let mut orphaned = 0;
        for cell in self.cells.iter_mut() {
            if cell.as_deref() == Some(worker) {
                *cell = None;
                orphaned += 1;
            }
        }
        orphaned
    }

    /// Renders the table as an aligned text grid (rows = query partitions,
    /// columns = write partitions), e.g. for operator consoles:
    ///
    /// ```text
    /// epoch 3 (2x2)
    ///        wp0      wp1
    /// qp0    worker-a  worker-a
    /// qp1    worker-b  -
    /// ```
    pub fn render(&self) -> String {
        let width =
            self.cells.iter().map(|w| w.as_deref().unwrap_or("-").len()).max().unwrap_or(1).max(4);
        let mut out = format!(
            "epoch {} ({}x{})\n",
            self.epoch, self.grid.query_partitions, self.grid.write_partitions
        );
        out.push_str("     ");
        for wp in 0..self.grid.write_partitions {
            out.push_str(&format!(" {:<width$}", format!("wp{wp}")));
        }
        out.push('\n');
        for qp in 0..self.grid.query_partitions {
            out.push_str(&format!("qp{qp:<3}"));
            for wp in 0..self.grid.write_partitions {
                let task = self.grid.task_index(GridCoord { qp, wp });
                let owner = self.worker_of(task).unwrap_or("-");
                out.push_str(&format!(" {owner:<width$}"));
            }
            out.push('\n');
        }
        out
    }
}

/// A placement strategy: given the live workers and the current (already
/// evicted) table, assign every orphaned cell.
///
/// Implementations must be stable — cells already owned by a live worker
/// stay put — and must assign every orphan whenever at least one worker is
/// live.
pub trait Placement: Send + Sync {
    /// Fills the `None` entries of `cells` from `workers`. `grid` gives
    /// the row/column structure for affinity decisions.
    fn place(&self, grid: GridShape, workers: &[WorkerInfo], cells: &mut [Option<String>]);
}

fn weight_of(workers: &[WorkerInfo], name: &str) -> u64 {
    workers.iter().find(|w| w.name == name).map(|w| w.weight.max(1) as u64).unwrap_or(1)
}

/// Weighted least-loaded placement (the default): each orphan goes to the
/// worker with the lowest `assigned / weight` ratio, ties broken by name
/// for determinism.
pub struct RoundRobin;

impl Placement for RoundRobin {
    fn place(&self, _grid: GridShape, workers: &[WorkerInfo], cells: &mut [Option<String>]) {
        if workers.is_empty() {
            return;
        }
        let mut load: BTreeMap<&str, u64> = workers.iter().map(|w| (w.name.as_str(), 0)).collect();
        for owner in cells.iter().flatten() {
            if let Some(l) = load.get_mut(owner.as_str()) {
                *l += 1;
            }
        }
        for cell in cells.iter_mut() {
            if cell.is_some() {
                continue;
            }
            // Scaled comparison avoids floating point: pick the worker
            // minimizing load/weight.
            let best = load
                .iter()
                .min_by_key(|(name, &l)| (l * 1_000 / weight_of(workers, name), name.to_string()))
                .map(|(name, _)| name.to_string())
                .expect("non-empty worker set");
            *load.get_mut(best.as_str()).expect("known worker") += 1;
            *cell = Some(best);
        }
    }
}

/// Row-affinity placement, informed by hypergraph-partitioning work on
/// transactional workloads: cells of one query-partition row exchange
/// staged (sorted/aggregate) output with the row anchor `(qp, 0)`, so
/// co-locating a row on one worker eliminates that shuffle traffic. Each
/// orphan goes to the worker already hosting the most cells of its row,
/// falling back to weighted least-loaded when the row has no incumbent.
pub struct RowAffinity;

impl Placement for RowAffinity {
    fn place(&self, grid: GridShape, workers: &[WorkerInfo], cells: &mut [Option<String>]) {
        if workers.is_empty() {
            return;
        }
        let mut load: BTreeMap<&str, u64> = workers.iter().map(|w| (w.name.as_str(), 0)).collect();
        for owner in cells.iter().flatten() {
            if let Some(l) = load.get_mut(owner.as_str()) {
                *l += 1;
            }
        }
        for qp in 0..grid.query_partitions {
            let row: Vec<usize> = grid.row_tasks(qp).collect();
            for &task in &row {
                if cells[task].is_some() {
                    continue;
                }
                // Incumbent: the live worker with the most cells in this
                // row (dead owners were evicted before placement).
                let mut row_counts: BTreeMap<&str, u64> = BTreeMap::new();
                for &t in &row {
                    if let Some(owner) = cells[t].as_deref() {
                        if load.contains_key(owner) {
                            *row_counts.entry(owner).or_insert(0) += 1;
                        }
                    }
                }
                let best = row_counts
                    .iter()
                    .max_by_key(|(name, &c)| (c, std::cmp::Reverse(name.to_string())))
                    .map(|(name, _)| name.to_string())
                    .unwrap_or_else(|| {
                        load.iter()
                            .min_by_key(|(name, &l)| {
                                (l * 1_000 / weight_of(workers, name), name.to_string())
                            })
                            .map(|(name, _)| name.to_string())
                            .expect("non-empty worker set")
                    });
                *load.get_mut(best.as_str()).expect("known worker") += 1;
                cells[task] = Some(best);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workers(names: &[&str]) -> Vec<WorkerInfo> {
        names.iter().map(|n| WorkerInfo { name: n.to_string(), weight: 1 }).collect()
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let grid = GridShape::new(2, 2);
        let mut table = AssignmentTable::new(grid);
        RoundRobin.place(grid, &workers(&["a", "b"]), &mut table.cells);
        assert_eq!(table.unassigned(), 0);
        assert_eq!(table.cells_of("a").len(), 2);
        assert_eq!(table.cells_of("b").len(), 2);
    }

    #[test]
    fn placement_is_stable_for_survivors() {
        let grid = GridShape::new(2, 2);
        let mut table = AssignmentTable::new(grid);
        RoundRobin.place(grid, &workers(&["a", "b"]), &mut table.cells);
        let a_before = table.cells_of("a");
        // b dies; its cells are orphaned and must land on a — but a's own
        // cells must not move.
        table.evict("b");
        RoundRobin.place(grid, &workers(&["a"]), &mut table.cells);
        assert_eq!(table.unassigned(), 0);
        for cell in a_before {
            assert_eq!(table.worker_of(cell), Some("a"));
        }
    }

    #[test]
    fn weights_bias_load() {
        let grid = GridShape::new(2, 3);
        let mut cells = vec![None; grid.nodes()];
        let ws = vec![
            WorkerInfo { name: "big".into(), weight: 2 },
            WorkerInfo { name: "small".into(), weight: 1 },
        ];
        RoundRobin.place(grid, &ws, &mut cells);
        let big = cells.iter().filter(|c| c.as_deref() == Some("big")).count();
        let small = cells.iter().filter(|c| c.as_deref() == Some("small")).count();
        assert!(big > small, "weight-2 worker should host more cells ({big} vs {small})");
    }

    #[test]
    fn row_affinity_keeps_rows_together() {
        let grid = GridShape::new(2, 3);
        let mut cells = vec![None; grid.nodes()];
        RowAffinity.place(grid, &workers(&["a", "b"]), &mut cells);
        // Every row should be hosted by exactly one worker.
        for qp in 0..grid.query_partitions {
            let owners: std::collections::BTreeSet<_> =
                grid.row_tasks(qp).map(|t| cells[t].clone().unwrap()).collect();
            assert_eq!(owners.len(), 1, "row {qp} split across workers: {owners:?}");
        }
        assert_eq!(cells.iter().filter(|c| c.is_none()).count(), 0);
    }

    #[test]
    fn row_affinity_follows_the_incumbent() {
        let grid = GridShape::new(1, 3);
        let mut cells = vec![Some("a".to_string()), None, None];
        RowAffinity.place(grid, &workers(&["a", "b"]), &mut cells);
        // a already anchors the row: the orphans join it.
        assert!(cells.iter().all(|c| c.as_deref() == Some("a")), "{cells:?}");
    }

    #[test]
    fn eviction_orphans_only_the_dead_workers_cells() {
        let grid = GridShape::new(2, 2);
        let mut table = AssignmentTable::new(grid);
        RoundRobin.place(grid, &workers(&["a", "b"]), &mut table.cells);
        let orphaned = table.evict("a");
        assert_eq!(orphaned, 2);
        assert_eq!(table.unassigned(), 2);
        assert_eq!(table.cells_of("b").len(), 2);
    }

    #[test]
    fn render_is_a_grid() {
        let grid = GridShape::new(2, 2);
        let mut table = AssignmentTable::new(grid);
        table.epoch = 3;
        RoundRobin.place(grid, &workers(&["a"]), &mut table.cells);
        let s = table.render();
        assert!(s.contains("epoch 3 (2x2)"));
        assert!(s.contains("qp0"));
        assert!(s.contains("wp1"));
    }
}
