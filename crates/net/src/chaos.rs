//! A chaos proxy: a TCP forwarder between client and server that injects
//! the failures §6's robustness story promises to survive — added
//! latency, partitions, truncated frames, and abrupt connection resets.
//!
//! Unlike the broker's in-process chaos hooks (which reorder and delay
//! *messages*), this operates on raw byte chunks, so it exercises the
//! framing layer itself: a truncated chunk leaves a torn frame tail in
//! the peer's decoder, and a reset mid-frame must be survived by the
//! supervisor's reconnect + resubscription replay.

use parking_lot::Mutex;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Failure injection knobs. All probabilities are per forwarded chunk.
#[derive(Debug, Clone)]
pub struct ChaosProxyConfig {
    /// RNG seed (deterministic chaos for reproducible tests).
    pub seed: u64,
    /// Added delay range per chunk, if any.
    pub latency: Option<(Duration, Duration)>,
    /// Probability of forwarding only a prefix of a chunk and then
    /// killing the connection (torn frame + reset).
    pub truncate_probability: f64,
    /// Probability of resetting the connection outright.
    pub reset_probability: f64,
}

impl Default for ChaosProxyConfig {
    fn default() -> Self {
        ChaosProxyConfig { seed: 2020, latency: None, truncate_probability: 0.0, reset_probability: 0.0 }
    }
}

const POLL_INTERVAL: Duration = Duration::from_millis(50);

struct Shared {
    upstream: String,
    config: ChaosProxyConfig,
    running: AtomicBool,
    /// While set, new connections are refused and existing ones killed.
    partitioned: AtomicBool,
    /// Live sockets (both sides of each bridge), for reset/partition.
    sockets: Mutex<Vec<TcpStream>>,
    /// Connections accepted during a partition: held open but never
    /// forwarded, so the peer must detect the dead link via heartbeat
    /// timeout (a real partition drops packets, it does not refuse
    /// connections).
    blackholed: Mutex<Vec<TcpStream>>,
    conn_counter: AtomicU64,
}

/// A failure-injecting TCP forwarder. Point clients at
/// [`local_addr`](ChaosProxy::local_addr); it relays to the upstream
/// address it was built with.
pub struct ChaosProxy {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port and starts forwarding to
    /// `upstream`.
    pub fn start(upstream: impl Into<String>, config: ChaosProxyConfig) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            upstream: upstream.into(),
            config,
            running: AtomicBool::new(true),
            partitioned: AtomicBool::new(false),
            sockets: Mutex::new(Vec::new()),
            blackholed: Mutex::new(Vec::new()),
            conn_counter: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("chaos-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn chaos accept thread");
        Ok(ChaosProxy { shared, local_addr, accept_thread: Some(accept_thread) })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Starts or heals a network partition. While partitioned, existing
    /// bridges are torn down and new connections are accepted but
    /// blackholed (nothing forwarded), so peers must detect the dead
    /// link via heartbeat timeout. Healing closes the blackholed
    /// sockets so peers re-establish real bridges.
    pub fn partition(&self, active: bool) {
        self.shared.partitioned.store(active, Ordering::SeqCst);
        if active {
            self.kill_all();
        } else {
            for sock in self.shared.blackholed.lock().drain(..) {
                let _ = sock.shutdown(Shutdown::Both);
            }
        }
    }

    /// Resets every live connection once (they may reconnect).
    pub fn reset_all(&self) {
        self.kill_all();
    }

    /// Stops the proxy and joins its accept thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.running.store(false, Ordering::SeqCst);
        self.kill_all();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    fn kill_all(&self) {
        for sock in self.shared.sockets.lock().drain(..) {
            let _ = sock.shutdown(Shutdown::Both);
        }
        for sock in self.shared.blackholed.lock().drain(..) {
            let _ = sock.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    listener.set_nonblocking(true).expect("set_nonblocking");
    while shared.running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                if shared.partitioned.load(Ordering::SeqCst) {
                    shared.blackholed.lock().push(client);
                    continue;
                }
                let upstream = match TcpStream::connect(&shared.upstream) {
                    Ok(s) => s,
                    Err(_) => {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    }
                };
                client.set_nodelay(true).ok();
                upstream.set_nodelay(true).ok();
                bridge(client, upstream, &shared);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Starts the two pump threads for one client↔upstream bridge.
fn bridge(client: TcpStream, upstream: TcpStream, shared: &Arc<Shared>) {
    let conn_id = shared.conn_counter.fetch_add(1, Ordering::Relaxed);
    {
        let mut socks = shared.sockets.lock();
        if let Ok(c) = client.try_clone() {
            socks.push(c);
        }
        if let Ok(u) = upstream.try_clone() {
            socks.push(u);
        }
    }
    for (dir, from, to) in [
        (0u64, client.try_clone(), upstream.try_clone()),
        (1u64, upstream.try_clone(), client.try_clone()),
    ] {
        let (from, to) = match (from, to) {
            (Ok(f), Ok(t)) => (f, t),
            _ => return,
        };
        let pump_shared = Arc::clone(shared);
        let seed = shared.config.seed ^ conn_id.rotate_left(13) ^ dir.rotate_left(37);
        thread::Builder::new()
            .name(format!("chaos-pump-{conn_id}-{dir}"))
            .spawn(move || pump(from, to, pump_shared, seed))
            .expect("spawn chaos pump thread");
    }
}

/// Forwards bytes one chunk at a time, rolling the chaos dice per chunk.
fn pump(mut from: TcpStream, mut to: TcpStream, shared: Arc<Shared>, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    from.set_read_timeout(Some(POLL_INTERVAL)).ok();
    let mut buf = [0u8; 8 * 1024];
    loop {
        if !shared.running.load(Ordering::SeqCst) || shared.partitioned.load(Ordering::SeqCst) {
            break;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                continue;
            }
            Err(_) => break,
        };
        let cfg = &shared.config;
        if let Some((lo, hi)) = cfg.latency {
            let span = hi.saturating_sub(lo);
            let extra = span.mul_f64(rng.gen::<f64>());
            thread::sleep(lo + extra);
        }
        if cfg.reset_probability > 0.0 && rng.gen::<f64>() < cfg.reset_probability {
            break; // abrupt reset, nothing forwarded
        }
        if cfg.truncate_probability > 0.0 && rng.gen::<f64>() < cfg.truncate_probability && n > 1 {
            // Forward a strict prefix, then kill the connection: the
            // receiver is left holding a torn frame tail.
            let cut = 1 + rng.gen_range(0..n - 1);
            let _ = to.write_all(&buf[..cut]);
            break;
        }
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}
