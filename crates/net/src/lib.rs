//! A real TCP transport for InvaliDB's event layer.
//!
//! The paper's prototype connects application servers to the real-time
//! cluster through Redis pub/sub (§5.3): a dumb, best-effort,
//! at-most-once channel carrying opaque payloads. The rest of this
//! repository runs that event layer in-process ([`invalidb_broker`]);
//! this crate puts it on the wire so store+cluster and app servers can
//! live in different processes:
//!
//! * [`frame`] — a length-prefixed binary framing codec with
//!   version-tagged headers and a CRC-32 payload check. Envelope payloads
//!   stay exactly what the in-process broker carries: opaque bytes
//!   produced by `invalidb-json`.
//! * [`queue`] — bounded per-connection send queues with an explicit
//!   [`OverflowPolicy`]: shed oldest frames (Redis pub/sub semantics) or
//!   disconnect, turning overload into a visible connection event.
//! * [`server`] — [`BrokerServer`] exposes any [`BrokerHandle`]'s topic
//!   API over TCP (SUBSCRIBE / PUBLISH / ACK frames).
//! * [`client`] — [`RemoteBroker`] implements the same publish/subscribe
//!   surface as the in-process [`Broker`](invalidb_broker::Broker), so
//!   `invalidb-client` and `invalidb-core` run unchanged against either
//!   transport. A supervisor thread handles heartbeats, exponential
//!   backoff + jitter reconnect, and resubscription replay — disconnects
//!   become maintenance errors the app server already knows how to
//!   repair (paper §5.1–5.2).
//! * [`chaos`] — [`ChaosProxy`] injects latency, partitions, truncated
//!   frames, and resets between client and server, at the byte level.

pub mod chaos;
pub mod client;
pub mod frame;
pub mod queue;
pub mod server;

pub use chaos::{ChaosProxy, ChaosProxyConfig};
pub use client::{RemoteBroker, RemoteBrokerConfig};
pub use frame::{
    crc32, Decoder, Frame, FrameError, TraceInfo, CAP_BINARY, CAP_CLUSTER, CAP_METRICS, FLAG_TRACE,
    HEADER_LEN, MAX_PAYLOAD, PROTOCOL_VERSION,
};
pub use invalidb_broker::BrokerHandle;
pub use queue::{OverflowPolicy, SendQueue};
pub use server::{BrokerServer, BrokerServerConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use invalidb_broker::Broker;
    use std::sync::atomic::Ordering;
    use std::time::Duration;

    fn server() -> BrokerServer {
        BrokerServer::bind("127.0.0.1:0", Broker::new(), BrokerServerConfig::default())
            .expect("bind server")
    }

    fn client_for(addr: &std::net::SocketAddr) -> RemoteBroker {
        let client = RemoteBroker::connect(addr.to_string(), RemoteBrokerConfig::default());
        assert!(client.wait_connected(Duration::from_secs(5)), "client should connect");
        client
    }

    #[test]
    fn publish_subscribe_over_tcp() {
        let srv = server();
        let publisher = client_for(&srv.local_addr());
        let subscriber = client_for(&srv.local_addr());

        let sub = subscriber.subscribe("updates");
        // Wait for the SUBSCRIBE to be acknowledged before publishing, or
        // the frame can race past the server-side pump creation.
        wait_for(|| subscriber.last_acked() >= 1);

        assert_eq!(publisher.publish("updates", Bytes::from_static(b"hello")), 1);
        let got = sub.recv_timeout(Duration::from_secs(5)).expect("delivery over TCP");
        assert_eq!(&got[..], b"hello");

        publisher.shutdown();
        subscriber.shutdown();
    }

    #[test]
    fn json_envelopes_survive_the_wire() {
        use invalidb_common::doc;
        let srv = server();
        let client = client_for(&srv.local_addr());
        let sub = client.subscribe("docs");
        wait_for(|| client.last_acked() >= 1);

        let original = doc! { "type" => "write", "key" => "k1", "version" => 7i64 };
        client.publish("docs", invalidb_json::document_to_payload(&original));
        let payload = sub.recv_timeout(Duration::from_secs(5)).expect("delivery");
        let decoded = invalidb_json::payload_to_document(&payload).expect("valid envelope");
        assert_eq!(decoded, original);
        client.shutdown();
    }

    #[test]
    fn no_local_echo_without_server_roundtrip() {
        // Like Redis pub/sub, a publisher's own message comes back only
        // via the server — a subscriber on the same client still sees it.
        let srv = server();
        let client = client_for(&srv.local_addr());
        let sub = client.subscribe("loop");
        wait_for(|| client.last_acked() >= 1);
        client.publish("loop", Bytes::from_static(b"x"));
        assert!(sub.recv_timeout(Duration::from_secs(5)).is_some());
        client.shutdown();
    }

    #[test]
    fn reconnect_replays_subscriptions() {
        let srv = server();
        let client = client_for(&srv.local_addr());
        let sub = client.subscribe("stable");
        wait_for(|| client.last_acked() >= 1);
        let acked_before = client.last_acked();

        // Kill the connection out from under the client.
        client.kick();
        // Supervisor reconnects and replays SUBSCRIBE: a fresh ack arrives.
        wait_for(|| client.last_acked() > acked_before);
        assert!(client.metrics().reconnects.load(Ordering::Relaxed) >= 2);

        let publisher = client_for(&srv.local_addr());
        publisher.publish("stable", Bytes::from_static(b"after"));
        let got = sub.recv_timeout(Duration::from_secs(5)).expect("delivery after reconnect");
        assert_eq!(&got[..], b"after");

        client.shutdown();
        publisher.shutdown();
    }

    #[test]
    fn unsubscribe_propagates_upstream() {
        let srv = server();
        let client = client_for(&srv.local_addr());
        let sub = client.subscribe("temp");
        wait_for(|| client.last_acked() >= 1);
        assert_eq!(client.subscriber_count("temp"), 1);
        drop(sub);
        // Janitor notices the dead subscription and unsubscribes; the
        // server acks it.
        wait_for(|| client.last_acked() >= 2);
        assert_eq!(client.subscriber_count("temp"), 0);
        client.shutdown();
    }

    #[test]
    fn chaos_latency_still_delivers() {
        let srv = server();
        let proxy = ChaosProxy::start(
            srv.local_addr().to_string(),
            ChaosProxyConfig {
                latency: Some((Duration::from_millis(1), Duration::from_millis(5))),
                ..ChaosProxyConfig::default()
            },
        )
        .expect("start proxy");
        let client = client_for(&proxy.local_addr());
        let sub = client.subscribe("slow");
        wait_for(|| client.last_acked() >= 1);
        client.publish("slow", Bytes::from_static(b"delayed"));
        let got = sub.recv_timeout(Duration::from_secs(10)).expect("delivery through latency");
        assert_eq!(&got[..], b"delayed");
        client.shutdown();
    }

    #[test]
    fn chaos_partition_heals() {
        let srv = server();
        let proxy = ChaosProxy::start(srv.local_addr().to_string(), ChaosProxyConfig::default())
            .expect("start proxy");
        // Short heartbeat timeout so the blackholed link is detected fast.
        let client = RemoteBroker::connect(
            proxy.local_addr().to_string(),
            RemoteBrokerConfig {
                heartbeat_interval: Duration::from_millis(100),
                heartbeat_timeout: Duration::from_millis(500),
                ..RemoteBrokerConfig::default()
            },
        );
        assert!(client.wait_connected(Duration::from_secs(5)));
        let sub = client.subscribe("part");
        wait_for(|| client.last_acked() >= 1);
        let acked_before = client.last_acked();
        let reconnects_before = client.metrics().reconnects.load(Ordering::Relaxed);

        proxy.partition(true);
        // The partition blackholes traffic; the client must notice via
        // heartbeat timeout and start reconnecting.
        wait_for(|| client.metrics().reconnects.load(Ordering::Relaxed) > reconnects_before);
        proxy.partition(false);
        // After the heal a replayed SUBSCRIBE reaches the server: a fresh
        // (higher-seq) ack proves the subscription survived the partition.
        wait_for(|| client.last_acked() > acked_before);

        let publisher = client_for(&srv.local_addr());
        publisher.publish("part", Bytes::from_static(b"healed"));
        let got = sub.recv_timeout(Duration::from_secs(5)).expect("delivery after heal");
        assert_eq!(&got[..], b"healed");
        client.shutdown();
        publisher.shutdown();
    }

    fn wait_for(mut cond: impl FnMut() -> bool) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(std::time::Instant::now() < deadline, "condition not met in time");
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}
