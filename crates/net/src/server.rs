//! `BrokerServer`: the in-process broker's topic API, served over TCP.
//!
//! One accept thread; per connection a *reader* thread (decodes frames,
//! executes SUBSCRIBE/UNSUBSCRIBE/PUBLISH against the backing
//! [`BrokerHandle`]) and a *writer* thread (drains the connection's
//! bounded [`SendQueue`], interleaving heartbeats). Each subscribed topic
//! gets a *pump* thread bridging the broker
//! [`Subscription`](invalidb_broker::Subscription) into the
//! send queue as `Publish` frames — so a slow connection backs up only
//! its own queue, where the [`OverflowPolicy`] decides between shedding
//! frames and disconnecting.

use crate::frame::{Decoder, Frame, TraceInfo, CAP_BINARY};
use crate::queue::{Closed, OverflowPolicy, SendQueue};
use invalidb_broker::{BrokerHandle, Bytes};
use invalidb_common::trace::{now_micros, Stage, TraceContext};
use invalidb_common::Value;
use invalidb_json::bin;
use invalidb_obs::{AdminConfig, AdminServer, FlightEventKind, MetricsRegistry};
use invalidb_stream::{LinkMetrics, LinkRegistry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Tuning for [`BrokerServer`].
#[derive(Debug, Clone)]
pub struct BrokerServerConfig {
    /// Per-connection send-queue capacity in frames.
    pub queue_capacity: usize,
    /// What to do when a connection's send queue overflows.
    pub overflow_policy: OverflowPolicy,
    /// How often the server sends heartbeat frames on an idle connection.
    pub heartbeat_interval: Duration,
    /// Registry the server reports into: traced-publish counters, the
    /// client→broker hop histogram (`net.broker_hop_us`), per-connection
    /// link metrics (attached as `net.server.<peer>.*`), and flight-
    /// recorder events (connects, drops, decode errors, subscription
    /// churn). Share one registry across components to get a single
    /// unified snapshot.
    pub metrics: MetricsRegistry,
    /// When set, the server hosts an [`AdminServer`] on this address
    /// (e.g. `"127.0.0.1:9464"`), exposing `metrics` via `/metrics`,
    /// `/healthz`, `/queries`, and `/flight`.
    pub admin_addr: Option<String>,
    /// Whether the server advertises [`CAP_BINARY`] in its `Hello` reply
    /// and delivers binary payloads as-is to capable connections. When
    /// `false` (a JSON-only deployment) every outbound binary payload is
    /// transcoded to JSON before delivery.
    pub binary_payloads: bool,
    /// Upper bound on how many queued frames the writer thread coalesces
    /// into one `write_all` syscall.
    pub max_write_batch: usize,
}

impl Default for BrokerServerConfig {
    fn default() -> Self {
        BrokerServerConfig {
            queue_capacity: 1024,
            overflow_policy: OverflowPolicy::DropOldest,
            heartbeat_interval: Duration::from_millis(500),
            metrics: MetricsRegistry::new(),
            admin_addr: None,
            binary_payloads: true,
            max_write_batch: 64,
        }
    }
}

/// How often blocked reads/accepts wake up to poll the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

struct Shared {
    broker: BrokerHandle,
    config: BrokerServerConfig,
    links: Arc<LinkRegistry>,
    running: Arc<AtomicBool>,
    /// Clones of live connection sockets keyed by a per-connection token,
    /// for shutdown(). Each connection thread removes its own entry when
    /// it exits, so churned connections don't leak fds here.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

/// A TCP server exposing a broker's publish/subscribe surface.
pub struct BrokerServer {
    shared: Arc<Shared>,
    local_addr: std::net::SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    admin: Option<AdminServer>,
}

impl BrokerServer {
    /// Binds `addr` and starts serving `broker`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        broker: impl Into<BrokerHandle>,
        config: BrokerServerConfig,
    ) -> io::Result<BrokerServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let links = Arc::new(LinkRegistry::default());
        // Per-connection link metrics become part of every registry
        // snapshot (`net.server.<peer>.*`), feeding the health model's
        // queue-depth and drop signals.
        config.metrics.attach_links("net.server", Arc::clone(&links));
        // Optional admin plane. Like Cluster and AppServer, a failed admin
        // bind does not abort the broker (serving the event layer is the
        // product; the admin endpoint is a window into it) but is recorded
        // so it cannot go unnoticed.
        let admin = config.admin_addr.as_deref().and_then(|addr| {
            match AdminServer::bind(addr, config.metrics.clone(), AdminConfig::default()) {
                Ok(server) => Some(server),
                Err(_) => {
                    config.metrics.inc("admin.bind_errors");
                    None
                }
            }
        });
        let shared = Arc::new(Shared {
            broker: broker.into(),
            config,
            links,
            running: Arc::new(AtomicBool::new(true)),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = thread::Builder::new()
            .name("net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(BrokerServer { shared, local_addr, accept_thread: Some(accept_thread), admin })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Per-connection link metrics, keyed by peer address.
    pub fn links(&self) -> Arc<LinkRegistry> {
        Arc::clone(&self.shared.links)
    }

    /// The metrics registry this server reports into (a shared handle).
    pub fn registry(&self) -> MetricsRegistry {
        self.shared.config.metrics.clone()
    }

    /// The admin endpoint's address, when one was configured via
    /// [`BrokerServerConfig::admin_addr`]. `None` when no address was
    /// configured or the bind failed (counted as `admin.bind_errors`).
    pub fn admin_addr(&self) -> Option<std::net::SocketAddr> {
        self.admin.as_ref().map(|a| a.local_addr())
    }

    /// Stops accepting, closes every connection, and joins the accept
    /// thread (and the admin endpoint, if hosted). Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.running.store(false, Ordering::SeqCst);
        for (_, conn) in self.shared.conns.lock().drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(mut admin) = self.admin.take() {
            admin.shutdown();
        }
    }
}

impl Drop for BrokerServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    // Non-blocking accept + sleep keeps shutdown simple and portable: the
    // loop notices `running == false` within one poll interval.
    listener.set_nonblocking(true).expect("set_nonblocking");
    while shared.running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                stream.set_nodelay(true).ok();
                let id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().insert(id, clone);
                }
                let conn_shared = Arc::clone(&shared);
                let name = format!("net-conn-{peer}");
                thread::Builder::new()
                    .name(name)
                    .spawn(move || {
                        serve_connection(stream, peer, &conn_shared);
                        conn_shared.conns.lock().remove(&id);
                    })
                    .expect("spawn connection thread");
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
}

fn serve_connection(stream: TcpStream, peer: std::net::SocketAddr, shared: &Arc<Shared>) {
    let metrics = shared.links.link(&peer.to_string());
    let flight = shared.config.metrics.flight();
    let queue = SendQueue::with_recorder(
        shared.config.queue_capacity,
        shared.config.overflow_policy,
        Arc::clone(&metrics),
        Some((flight.clone(), format!("server conn {peer}"))),
    );
    metrics.reconnects.fetch_add(1, Ordering::Relaxed);
    flight.record(FlightEventKind::Reconnect, format!("server accepted {peer}"));

    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let writer = spawn_writer(
        writer_stream,
        queue.clone(),
        Arc::clone(&metrics),
        shared.config.heartbeat_interval,
        shared.config.max_write_batch.max(1),
        Arc::clone(&shared.running),
    );

    // Capabilities the peer declared in its Hello. Until one arrives the
    // connection is treated as JSON-only — the safe floor every peer
    // understands.
    let peer_caps = Arc::new(AtomicU32::new(0));
    read_loop(stream, peer, &queue, &metrics, &peer_caps, shared);

    // Reader is done (EOF, error, or shutdown): close the queue so the
    // writer drains and exits, then reap it. Pump threads notice the
    // closed queue on their next delivery and exit on their own.
    queue.close();
    let _ = writer.join();
    if shared.running.load(Ordering::SeqCst) {
        flight.record(FlightEventKind::Disconnect, format!("server lost {peer}"));
    }
    // Peer addresses are ephemeral; keeping dead links would grow every
    // snapshot forever.
    shared.links.forget(&peer.to_string());
}

fn read_loop(
    mut stream: TcpStream,
    peer: std::net::SocketAddr,
    queue: &SendQueue<Frame>,
    metrics: &Arc<LinkMetrics>,
    peer_caps: &Arc<AtomicU32>,
    shared: &Arc<Shared>,
) {
    stream.set_read_timeout(Some(POLL_INTERVAL)).ok();
    let mut decoder = Decoder::new();
    let mut buf = [0u8; 16 * 1024];
    // Per-topic stop flags for this connection's pump threads.
    let mut pumps: HashMap<String, Arc<AtomicBool>> = HashMap::new();

    'outer: loop {
        if !shared.running.load(Ordering::SeqCst) || queue.is_closed() {
            break;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => break, // EOF
            Ok(n) => n,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                continue;
            }
            Err(_) => break,
        };
        decoder.feed(&buf[..n]);
        loop {
            let frame = match decoder.next() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(_) => {
                    metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
                    shared
                        .config
                        .metrics
                        .flight()
                        .record(FlightEventKind::DecodeError, format!("server <- {peer}"));
                    break 'outer; // corrupt stream: drop the connection
                }
            };
            metrics.frames_in.fetch_add(1, Ordering::Relaxed);
            match frame {
                Frame::Hello { capabilities, .. } => {
                    // Remember what the peer can decode and answer with
                    // our own capabilities, completing the negotiation.
                    peer_caps.store(capabilities, Ordering::Relaxed);
                    let server_caps = if shared.config.binary_payloads { CAP_BINARY } else { 0 };
                    send(
                        queue,
                        Frame::Hello { client: "invalidb-server".into(), capabilities: server_caps },
                    );
                }
                Frame::Subscribe { seq, topic } => {
                    pumps.entry(topic.clone()).or_insert_with(|| {
                        shared
                            .config
                            .metrics
                            .flight()
                            .record(FlightEventKind::Subscribe, format!("{peer} {topic}"));
                        spawn_pump(&topic, queue.clone(), metrics, peer_caps, shared)
                    });
                    send(queue, Frame::Ack { seq });
                }
                Frame::Unsubscribe { seq, topic } => {
                    if let Some(stop) = pumps.remove(&topic) {
                        stop.store(true, Ordering::SeqCst);
                        shared
                            .config
                            .metrics
                            .flight()
                            .record(FlightEventKind::Unsubscribe, format!("{peer} {topic}"));
                    }
                    send(queue, Frame::Ack { seq });
                }
                Frame::Publish { topic, payload, trace } => {
                    metrics.bytes_in.fetch_add(payload.len() as u64, Ordering::Relaxed);
                    let payload = match trace {
                        Some(info) => stamp_broker(payload, info, &shared.config.metrics),
                        None => payload,
                    };
                    shared.broker.publish(&topic, payload);
                }
                Frame::Heartbeat { nonce } => {
                    send(queue, Frame::Heartbeat { nonce });
                }
                // Cluster membership frames belong to the coordinator
                // protocol; a broker server ignores them so legacy topologies
                // keep working when a cluster-capable peer dials in.
                Frame::Ack { .. }
                | Frame::JoinCluster { .. }
                | Frame::Assign { .. }
                | Frame::CellState { .. }
                | Frame::WorkerHeartbeat { .. }
                | Frame::MetricsReport { .. } => {}
            }
        }
    }

    for stop in pumps.values() {
        stop.store(true, Ordering::SeqCst);
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Bridges one broker subscription into the connection's send queue.
fn spawn_pump(
    topic: &str,
    queue: SendQueue<Frame>,
    metrics: &Arc<LinkMetrics>,
    peer_caps: &Arc<AtomicU32>,
    shared: &Arc<Shared>,
) -> Arc<AtomicBool> {
    let stop = Arc::new(AtomicBool::new(false));
    let pump_stop = Arc::clone(&stop);
    let metrics = Arc::clone(metrics);
    let peer_caps = Arc::clone(peer_caps);
    let subscription = shared.broker.subscribe(topic);
    let topic = topic.to_owned();
    let running = Arc::clone(&shared.running);
    let binary_ok = shared.config.binary_payloads;
    thread::Builder::new()
        .name(format!("net-pump-{topic}"))
        .spawn(move || {
            while running.load(Ordering::SeqCst) && !pump_stop.load(Ordering::SeqCst) {
                let payload = match subscription.recv_timeout(POLL_INTERVAL) {
                    Some(p) => p,
                    None => {
                        if queue.is_closed() {
                            break;
                        }
                        continue;
                    }
                };
                // Binary payloads only flow to connections that declared
                // CAP_BINARY; everyone else gets a JSON transcode. The
                // caps flag is re-read per delivery so a late Hello
                // upgrades the connection in place.
                let payload = if binary_ok && peer_caps.load(Ordering::Relaxed) & CAP_BINARY != 0 {
                    payload
                } else {
                    downgrade_to_json(payload)
                };
                metrics.bytes_out.fetch_add(payload.len() as u64, Ordering::Relaxed);
                // Delivery-side stamping happens at the app server's
                // dispatcher; the outbound hop carries no sidecar.
                let frame = Frame::Publish { topic: topic.clone(), payload, trace: None };
                if !queue.push(frame) {
                    break; // queue closed (disconnect policy or teardown)
                }
                metrics.frames_out.fetch_add(1, Ordering::Relaxed);
            }
            // Dropping `subscription` unsubscribes from the broker.
        })
        .expect("spawn pump thread");
    stop
}

/// Transcodes a binary payload to JSON for a peer that can't decode it.
/// Non-binary payloads — and binary payloads that fail to decode (the
/// pump must never drop traffic) — pass through untouched.
fn downgrade_to_json(payload: Bytes) -> Bytes {
    if !bin::is_binary(&payload) {
        return payload;
    }
    match bin::decode_document(&payload) {
        Ok(doc) => invalidb_json::document_to_payload(&doc),
        Err(_) => payload,
    }
}

fn send(queue: &SendQueue<Frame>, frame: Frame) {
    queue.push(frame);
}

/// Stamps [`Stage::Broker`] into a traced envelope and records the
/// client→server hop latency. The [`TraceInfo`] sidecar (frame-header
/// extension, see [`crate::frame::FLAG_TRACE`]) is what lets the server
/// touch *only* sampled envelopes: unflagged publishes stay opaque bytes.
/// Any parse failure passes the payload through unchanged — observability
/// must never drop traffic.
fn stamp_broker(payload: Bytes, info: TraceInfo, registry: &MetricsRegistry) -> Bytes {
    registry.inc("net.traced_publishes");
    // `sent_at_micros` came from the *sender's* clock; on another host the
    // difference to our clock is latency plus skew. A negative or absurd
    // delta is skew, not a hop measurement — count it instead of feeding
    // garbage into the hop histogram.
    let hop = now_micros() as i64 - info.sent_at_micros as i64;
    if hop >= 0 && (hop as u64) <= invalidb_common::MAX_PLAUSIBLE_HOP_MICROS {
        registry.record("net.broker_hop_us", hop as u64);
    } else {
        registry.inc("trace.skew_clamped");
    }
    let was_binary = bin::is_binary(&payload);
    let mut doc = match invalidb_json::payload_to_document(&payload) {
        Ok(d) => d,
        Err(_) => return payload,
    };
    let mut trace = match doc.get("trace").and_then(Value::as_object).map(TraceContext::from_document) {
        Some(Ok(t)) if t.trace_id == info.trace_id => t,
        _ => return payload, // sniff mismatch or malformed trace
    };
    trace.stamp(Stage::Broker);
    doc.insert("trace", trace.to_document());
    // Re-encode in the codec the producer chose: stamping must not
    // silently change what downstream consumers negotiated for.
    if was_binary {
        invalidb_json::document_to_binary_payload(&doc)
    } else {
        invalidb_json::document_to_payload(&doc)
    }
}

fn spawn_writer(
    mut stream: TcpStream,
    queue: SendQueue<Frame>,
    metrics: Arc<LinkMetrics>,
    heartbeat_interval: Duration,
    max_batch: usize,
    running: Arc<AtomicBool>,
) -> JoinHandle<()> {
    thread::Builder::new()
        .name("net-writer".into())
        .spawn(move || {
            // Heartbeats are identical every beat: encode once per
            // connection instead of once per beat.
            let heartbeat = Frame::Heartbeat { nonce: 0 }.encode();
            let mut batch: Vec<Frame> = Vec::with_capacity(max_batch);
            let mut scratch: Vec<u8> = Vec::with_capacity(16 * 1024);
            loop {
                if !running.load(Ordering::SeqCst) {
                    break;
                }
                match queue.pop_batch(&mut batch, max_batch, heartbeat_interval) {
                    Ok(0) => {
                        // Idle: prove liveness to the peer.
                        if stream.write_all(&heartbeat).is_err() {
                            queue.close();
                            break;
                        }
                        metrics.frames_out.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(_) => {
                        scratch.clear();
                        for frame in batch.drain(..) {
                            frame.encode_into(&mut scratch);
                        }
                        if stream.write_all(&scratch).is_err() {
                            queue.close();
                            break;
                        }
                    }
                    Err(Closed) => break,
                }
            }
            let _ = stream.shutdown(Shutdown::Both);
        })
        .expect("spawn writer thread")
}
