//! The wire format: length-prefixed, version-tagged, CRC-checked frames.
//!
//! ```text
//!  offset  size  field
//!  0       4     magic  "IDB1"
//!  4       1     protocol version (currently 1)
//!  5       1     frame type
//!  6       2     flags, big-endian (bit 0 = [`FLAG_TRACE`]; others reserved)
//!  8       4     payload length, big-endian (cap: 64 MiB)
//!  12      4     CRC-32 (IEEE) of the payload, big-endian
//!  16      ..    payload
//! ```
//!
//! [`FLAG_TRACE`] is the framing extension for pipeline observability: a
//! `Publish` frame with bit 0 set carries 16 extra payload bytes
//! ([`TraceInfo`]: trace id + send timestamp) after the opaque envelope
//! blob, letting the receiving broker server stamp the broker stage into a
//! sampled trace and measure the client→server hop without parsing
//! untraced payloads.
//!
//! Frame payloads are a tiny hand-rolled binary encoding (length-prefixed
//! strings and byte blobs); the *application* envelopes carried inside
//! `Publish` frames stay exactly what the in-process broker transports —
//! opaque `Bytes` produced by `invalidb-json`. The decoder is incremental:
//! feed it arbitrary chunks as they arrive off the socket and it yields
//! complete frames, holding torn tails until the rest shows up, and
//! rejecting corruption (bad magic/version/CRC, oversized lengths) with a
//! hard error so the connection can be dropped instead of silently
//! desynchronizing.

use bytes::Bytes;
use std::fmt;

/// Bytes every frame starts with.
pub const MAGIC: [u8; 4] = *b"IDB1";

/// Current protocol version.
pub const PROTOCOL_VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 16;

/// Upper bound on payload size — anything larger is corruption.
pub const MAX_PAYLOAD: usize = 64 * 1024 * 1024;

/// Header flag bit 0: the `Publish` payload is followed by [`TraceInfo`].
pub const FLAG_TRACE: u16 = 0x0001;

/// `Hello` capability bit 0: the sender can decode binary (`IVBD`)
/// envelope payloads (see `invalidb_json::bin`). A peer that did not
/// advertise this bit is only ever sent JSON-text payloads — binary ones
/// are transcoded down before they reach its connection. Unknown
/// capability bits are ignored (capability sets are additive), so future
/// bits degrade gracefully against this version.
pub const CAP_BINARY: u32 = 0x0000_0001;

/// `Hello` capability bit 1: the sender speaks the cluster-membership
/// protocol (`JoinCluster`, `Assign`, `CellState`, `WorkerHeartbeat`).
/// A coordinator never sends membership frames to a peer that did not
/// advertise this bit, so mixed fleets (old app servers, new workers)
/// stay interoperable: legacy peers only ever see the six original frame
/// types their decoder understands.
pub const CAP_CLUSTER: u32 = 0x0000_0002;

/// `Hello` capability bit 2: the sender understands metrics federation
/// (`MetricsReport`). A worker only ships snapshots to a coordinator that
/// advertised this bit in its `Hello` reply, and a coordinator ignores the
/// frame from peers entirely at its discretion — the bit exists so a new
/// worker dialing an old coordinator never emits a frame type the peer's
/// decoder would reject as [`FrameError::UnknownType`].
pub const CAP_METRICS: u32 = 0x0000_0004;

/// Stage-tracing sidecar of a `Publish` frame (present iff [`FLAG_TRACE`]
/// is set): identifies the sampled trace inside the opaque envelope and
/// carries the sender's transmit timestamp, so the server can attribute
/// client→server latency to the broker stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceInfo {
    /// Trace id, mirroring the `trace.id` field inside the JSON envelope.
    pub trace_id: u64,
    /// Sender wall clock at transmit, unix-epoch microseconds.
    pub sent_at_micros: u64,
}

/// One protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Peer introduction: the first frame a client sends on every
    /// (re)connection, answered by the server with a `Hello` of its own so
    /// both sides learn each other's capabilities.
    Hello {
        /// Peer-chosen name (diagnostics only).
        client: String,
        /// Capability bits (e.g. [`CAP_BINARY`]). Encoded after the name;
        /// a legacy `Hello` without the field decodes as `0` — no
        /// capabilities, JSON-only.
        capabilities: u32,
    },
    /// Start delivering `topic` to this connection.
    Subscribe {
        /// Client-chosen sequence number, echoed in the `Ack`.
        seq: u64,
        /// Topic name.
        topic: String,
    },
    /// Stop delivering `topic` to this connection.
    Unsubscribe {
        /// Client-chosen sequence number, echoed in the `Ack`.
        seq: u64,
        /// Topic name.
        topic: String,
    },
    /// An application envelope, in either direction: client → server to
    /// publish, server → client to deliver to a subscription.
    Publish {
        /// Topic name.
        topic: String,
        /// Opaque application payload.
        payload: Bytes,
        /// Stage-tracing sidecar ([`FLAG_TRACE`] extension).
        trace: Option<TraceInfo>,
    },
    /// Server confirmation of a `Subscribe`/`Unsubscribe`.
    Ack {
        /// The confirmed request's sequence number.
        seq: u64,
    },
    /// Liveness probe, in either direction.
    Heartbeat {
        /// Sender-chosen value, echoed back by the peer.
        nonce: u64,
    },
    /// Worker → coordinator: request membership in the matching grid.
    /// Requires [`CAP_CLUSTER`] on both sides of the `Hello` exchange.
    JoinCluster {
        /// Unique worker name (the assignment table keys on it).
        worker: String,
        /// Relative placement weight (1 = one share of cells).
        weight: u32,
    },
    /// Coordinator → worker: the authoritative epoch-numbered assignment
    /// table mapping grid cells to workers. Broadcast to every joined
    /// worker whenever membership changes.
    Assign {
        /// Epoch number; strictly increases on every membership change.
        epoch: u64,
        /// Grid rows (query partitions).
        query_partitions: u32,
        /// Grid columns (write partitions).
        write_partitions: u32,
        /// `(cell index, worker name)` pairs, one per *assigned* cell —
        /// cells missing from the list are currently unassigned.
        cells: Vec<(u32, String)>,
    },
    /// Worker → coordinator: per-cell load report (feeds placement and
    /// the coordinator's assignment-table view).
    CellState {
        /// Reporting worker.
        worker: String,
        /// Epoch the worker is running.
        epoch: u64,
        /// Cell index being reported.
        cell: u32,
        /// Active query groups hosted in the cell.
        active_queries: u64,
        /// After-images currently retained for replay.
        retained_writes: u64,
    },
    /// Worker → coordinator liveness. Unlike the plain [`Frame::Heartbeat`]
    /// it names the worker and its current epoch, so the coordinator can
    /// detect members running a stale assignment and re-send it.
    WorkerHeartbeat {
        /// Reporting worker.
        worker: String,
        /// Epoch the worker is running (0 before the first `Assign`).
        epoch: u64,
        /// Sender-chosen value (diagnostics).
        nonce: u64,
    },
    /// Worker → coordinator: a full `MetricsSnapshot` of the worker's
    /// registry, shipped on a fixed cadence so the coordinator can serve a
    /// federated `/metrics` for the whole fleet. Requires [`CAP_METRICS`]
    /// on the coordinator's side of the `Hello` exchange. The snapshot is
    /// opaque at this layer (its JSON rendering), so the wire protocol
    /// does not chase the metrics schema.
    MetricsReport {
        /// Reporting worker.
        worker: String,
        /// Epoch the worker is running.
        epoch: u64,
        /// `MetricsSnapshot::to_json` bytes.
        snapshot: Bytes,
    },
}

impl Frame {
    fn type_id(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::Subscribe { .. } => 2,
            Frame::Unsubscribe { .. } => 3,
            Frame::Publish { .. } => 4,
            Frame::Ack { .. } => 5,
            Frame::Heartbeat { .. } => 6,
            Frame::JoinCluster { .. } => 7,
            Frame::Assign { .. } => 8,
            Frame::CellState { .. } => 9,
            Frame::WorkerHeartbeat { .. } => 10,
            Frame::MetricsReport { .. } => 11,
        }
    }

    fn flags(&self) -> u16 {
        match self {
            Frame::Publish { trace: Some(_), .. } => FLAG_TRACE,
            _ => 0,
        }
    }

    /// Encodes the frame, header included, appending to `out` — the
    /// allocation-free form writer threads use to coalesce a whole batch
    /// of frames into one reused scratch buffer. The payload is written
    /// directly after the header; length and CRC are backfilled.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let header = out.len();
        out.extend_from_slice(&MAGIC);
        out.push(PROTOCOL_VERSION);
        out.push(self.type_id());
        out.extend_from_slice(&self.flags().to_be_bytes());
        out.extend_from_slice(&[0u8; 8]); // length + CRC, backfilled below
        let body = out.len();
        match self {
            Frame::Hello { client, capabilities } => {
                put_str(out, client);
                out.extend_from_slice(&capabilities.to_be_bytes());
            }
            Frame::Subscribe { seq, topic } | Frame::Unsubscribe { seq, topic } => {
                put_u64(out, *seq);
                put_str(out, topic);
            }
            Frame::Publish { topic, payload: blob, trace } => {
                put_str(out, topic);
                put_blob(out, blob);
                if let Some(info) = trace {
                    put_u64(out, info.trace_id);
                    put_u64(out, info.sent_at_micros);
                }
            }
            Frame::Ack { seq } => put_u64(out, *seq),
            Frame::Heartbeat { nonce } => put_u64(out, *nonce),
            Frame::JoinCluster { worker, weight } => {
                put_str(out, worker);
                out.extend_from_slice(&weight.to_be_bytes());
            }
            Frame::Assign { epoch, query_partitions, write_partitions, cells } => {
                put_u64(out, *epoch);
                out.extend_from_slice(&query_partitions.to_be_bytes());
                out.extend_from_slice(&write_partitions.to_be_bytes());
                out.extend_from_slice(&(cells.len() as u32).to_be_bytes());
                for (cell, worker) in cells {
                    out.extend_from_slice(&cell.to_be_bytes());
                    put_str(out, worker);
                }
            }
            Frame::CellState { worker, epoch, cell, active_queries, retained_writes } => {
                put_str(out, worker);
                put_u64(out, *epoch);
                out.extend_from_slice(&cell.to_be_bytes());
                put_u64(out, *active_queries);
                put_u64(out, *retained_writes);
            }
            Frame::WorkerHeartbeat { worker, epoch, nonce } => {
                put_str(out, worker);
                put_u64(out, *epoch);
                put_u64(out, *nonce);
            }
            Frame::MetricsReport { worker, epoch, snapshot } => {
                put_str(out, worker);
                put_u64(out, *epoch);
                put_blob(out, snapshot);
            }
        }
        let len = (out.len() - body) as u32;
        let crc = crc32(&out[body..]);
        out[header + 8..header + 12].copy_from_slice(&len.to_be_bytes());
        out[header + 12..header + 16].copy_from_slice(&crc.to_be_bytes());
    }

    /// Encodes the frame into a fresh buffer ([`Frame::encode_into`] with
    /// a one-off allocation).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + 64);
        self.encode_into(&mut out);
        out
    }

    fn decode_payload(type_id: u8, flags: u16, payload: &[u8]) -> Result<Frame, FrameError> {
        if flags & !FLAG_TRACE != 0 || (flags & FLAG_TRACE != 0 && type_id != 4) {
            return Err(FrameError::UnknownFlags(flags));
        }
        let mut r = Reader { buf: payload, pos: 0 };
        let frame = match type_id {
            1 => {
                let client = r.str()?;
                // Legacy peers sent only the name; absence of the field
                // means "no capabilities", which is exactly the safe
                // JSON-only fallback.
                let capabilities = if r.pos < payload.len() { r.u32()? } else { 0 };
                Frame::Hello { client, capabilities }
            }
            2 => Frame::Subscribe { seq: r.u64()?, topic: r.str()? },
            3 => Frame::Unsubscribe { seq: r.u64()?, topic: r.str()? },
            4 => {
                let topic = r.str()?;
                let payload = r.blob()?;
                let trace = if flags & FLAG_TRACE != 0 {
                    Some(TraceInfo { trace_id: r.u64()?, sent_at_micros: r.u64()? })
                } else {
                    None
                };
                Frame::Publish { topic, payload, trace }
            }
            5 => Frame::Ack { seq: r.u64()? },
            6 => Frame::Heartbeat { nonce: r.u64()? },
            7 => Frame::JoinCluster { worker: r.str()?, weight: r.u32()? },
            8 => {
                let epoch = r.u64()?;
                let query_partitions = r.u32()?;
                let write_partitions = r.u32()?;
                let count = r.u32()? as usize;
                // The count is attacker-controlled until the entries are
                // actually read; bound the pre-allocation by what the
                // remaining payload could possibly hold (≥ 4 bytes each).
                let mut cells = Vec::with_capacity(count.min(payload.len() / 4));
                for _ in 0..count {
                    cells.push((r.u32()?, r.str()?));
                }
                Frame::Assign { epoch, query_partitions, write_partitions, cells }
            }
            9 => Frame::CellState {
                worker: r.str()?,
                epoch: r.u64()?,
                cell: r.u32()?,
                active_queries: r.u64()?,
                retained_writes: r.u64()?,
            },
            10 => Frame::WorkerHeartbeat { worker: r.str()?, epoch: r.u64()?, nonce: r.u64()? },
            11 => Frame::MetricsReport { worker: r.str()?, epoch: r.u64()?, snapshot: r.blob()? },
            other => return Err(FrameError::UnknownType(other)),
        };
        if r.pos != payload.len() {
            return Err(FrameError::TrailingBytes { extra: payload.len() - r.pos });
        }
        Ok(frame)
    }
}

/// Why a byte stream could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// First four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame type byte.
    UnknownType(u8),
    /// Payload length exceeds [`MAX_PAYLOAD`].
    Oversized(usize),
    /// CRC of the received payload did not match the header.
    CrcMismatch {
        /// CRC from the header.
        expected: u32,
        /// CRC of the received payload.
        actual: u32,
    },
    /// Payload ended inside a field.
    Truncated,
    /// Payload had bytes left over after the last field.
    TrailingBytes {
        /// How many bytes were unconsumed.
        extra: usize,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Header flags contain unsupported bits (or a flag invalid for the
    /// frame type).
    UnknownFlags(u16),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::UnknownType(t) => write!(f, "unknown frame type {t}"),
            FrameError::Oversized(n) => write!(f, "payload of {n} bytes exceeds cap"),
            FrameError::CrcMismatch { expected, actual } => {
                write!(f, "crc mismatch: header {expected:08x}, payload {actual:08x}")
            }
            FrameError::Truncated => write!(f, "payload truncated mid-field"),
            FrameError::TrailingBytes { extra } => write!(f, "{extra} trailing payload bytes"),
            FrameError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            FrameError::UnknownFlags(flags) => write!(f, "unsupported header flags {flags:#06x}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame decoder.
///
/// Feed raw socket chunks with [`Decoder::feed`], then drain complete
/// frames with [`Decoder::next`]. `Ok(None)` means "need more bytes"
/// (including a torn tail mid-frame); an `Err` means the stream is
/// corrupt and the connection must be torn down — the decoder does not
/// attempt to resynchronize.
#[derive(Default)]
pub struct Decoder {
    buf: Vec<u8>,
    /// Set once a hard error is returned; all further reads fail.
    poisoned: bool,
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends received bytes.
    pub fn feed(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet consumed (torn tail size).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Tries to decode the next complete frame.
    // Not `Iterator`: the tri-state (frame / need-more-bytes / corrupt
    // stream) is the decoder's whole contract.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.poisoned {
            return Err(FrameError::Truncated);
        }
        match self.next_inner() {
            Ok(v) => Ok(v),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn next_inner(&mut self) -> Result<Option<Frame>, FrameError> {
        if self.buf.len() < HEADER_LEN {
            // Validate what we can see of the header early, so garbage is
            // rejected without waiting for 16 bytes that may never come.
            let seen = self.buf.len().min(4);
            if self.buf[..seen] != MAGIC[..seen] {
                let mut m = [0u8; 4];
                m[..seen].copy_from_slice(&self.buf[..seen]);
                return Err(FrameError::BadMagic(m));
            }
            return Ok(None);
        }
        if self.buf[..4] != MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&self.buf[..4]);
            return Err(FrameError::BadMagic(m));
        }
        if self.buf[4] != PROTOCOL_VERSION {
            return Err(FrameError::BadVersion(self.buf[4]));
        }
        let type_id = self.buf[5];
        let flags = u16::from_be_bytes([self.buf[6], self.buf[7]]);
        let len = u32::from_be_bytes([self.buf[8], self.buf[9], self.buf[10], self.buf[11]]) as usize;
        if len > MAX_PAYLOAD {
            return Err(FrameError::Oversized(len));
        }
        if self.buf.len() < HEADER_LEN + len {
            return Ok(None); // torn tail: wait for the rest
        }
        let expected = u32::from_be_bytes([self.buf[12], self.buf[13], self.buf[14], self.buf[15]]);
        let payload = &self.buf[HEADER_LEN..HEADER_LEN + len];
        let actual = crc32(payload);
        if actual != expected {
            return Err(FrameError::CrcMismatch { expected, actual });
        }
        let frame = Frame::decode_payload(type_id, flags, payload)?;
        self.buf.drain(..HEADER_LEN + len);
        Ok(Some(frame))
    }
}

// ---------------------------------------------------------------------------
// Payload field encoding
// ---------------------------------------------------------------------------

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    // Topics and client names are short; u16 is plenty and keeps the
    // header compact. Oversized names are a caller bug.
    assert!(s.len() <= u16::MAX as usize, "string field too long");
    out.extend_from_slice(&(s.len() as u16).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_blob(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_be_bytes());
    out.extend_from_slice(b);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], FrameError> {
        if self.buf.len() - self.pos < n {
            return Err(FrameError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes(b.try_into().expect("4 bytes")))
    }

    fn str(&mut self) -> Result<String, FrameError> {
        let len = {
            let b = self.take(2)?;
            u16::from_be_bytes([b[0], b[1]]) as usize
        };
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::BadUtf8)
    }

    fn blob(&mut self) -> Result<Bytes, FrameError> {
        let len = {
            let b = self.take(4)?;
            u32::from_be_bytes([b[0], b[1], b[2], b[3]]) as usize
        };
        Ok(Bytes::copy_from_slice(self.take(len)?))
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, no dependencies
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { client: "app-1".into(), capabilities: CAP_BINARY },
            Frame::Hello { client: "legacy".into(), capabilities: 0 },
            Frame::Subscribe { seq: 7, topic: "invalidb.cluster".into() },
            Frame::Unsubscribe { seq: 8, topic: "invalidb.notify.t".into() },
            Frame::Publish { topic: "t".into(), payload: Bytes::from_static(b"{\"n\":1}"), trace: None },
            Frame::Publish { topic: String::new(), payload: Bytes::new(), trace: None },
            Frame::Publish {
                topic: "traced".into(),
                payload: Bytes::from_static(b"{\"trace\":{\"id\":9}}"),
                trace: Some(TraceInfo { trace_id: 9, sent_at_micros: 1_700_000_000_000_000 }),
            },
            Frame::Ack { seq: u64::MAX },
            Frame::Heartbeat { nonce: 42 },
            Frame::JoinCluster { worker: "worker-1".into(), weight: 1 },
            Frame::Assign {
                epoch: 3,
                query_partitions: 2,
                write_partitions: 2,
                cells: vec![(0, "worker-1".into()), (1, "worker-1".into()), (2, "worker-2".into())],
            },
            Frame::Assign { epoch: 1, query_partitions: 1, write_partitions: 1, cells: Vec::new() },
            Frame::CellState {
                worker: "worker-2".into(),
                epoch: 3,
                cell: 2,
                active_queries: 17,
                retained_writes: 4096,
            },
            Frame::WorkerHeartbeat { worker: "worker-1".into(), epoch: 3, nonce: 99 },
            Frame::MetricsReport {
                worker: "worker-1".into(),
                epoch: 3,
                snapshot: Bytes::from_static(b"{\"counters\":{},\"gauges\":{},\"hists\":{}}"),
            },
            Frame::MetricsReport { worker: "w".into(), epoch: 0, snapshot: Bytes::new() },
        ]
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_every_type() {
        for frame in all_frames() {
            let wire = frame.encode();
            let mut d = Decoder::new();
            d.feed(&wire);
            assert_eq!(d.next().unwrap(), Some(frame.clone()), "frame {frame:?}");
            assert_eq!(d.next().unwrap(), None);
            assert_eq!(d.buffered(), 0);
        }
    }

    #[test]
    fn incremental_byte_by_byte() {
        let frames = all_frames();
        let wire: Vec<u8> = frames.iter().flat_map(|f| f.encode()).collect();
        let mut d = Decoder::new();
        let mut got = Vec::new();
        for b in wire {
            d.feed(&[b]);
            while let Some(f) = d.next().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn torn_tail_waits() {
        let wire = Frame::Heartbeat { nonce: 9 }.encode();
        let mut d = Decoder::new();
        d.feed(&wire[..wire.len() - 1]);
        assert_eq!(d.next().unwrap(), None, "incomplete frame is not an error");
        d.feed(&wire[wire.len() - 1..]);
        assert_eq!(d.next().unwrap(), Some(Frame::Heartbeat { nonce: 9 }));
    }

    #[test]
    fn corrupt_payload_is_rejected() {
        let mut wire =
            Frame::Publish { topic: "t".into(), payload: Bytes::from_static(b"abc"), trace: None }
                .encode();
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        let mut d = Decoder::new();
        d.feed(&wire);
        assert!(matches!(d.next(), Err(FrameError::CrcMismatch { .. })));
        // Poisoned: the stream cannot be trusted after corruption.
        d.feed(&Frame::Ack { seq: 1 }.encode());
        assert!(d.next().is_err());
    }

    #[test]
    fn bad_magic_fails_fast() {
        let mut d = Decoder::new();
        d.feed(b"GET "); // e.g. someone pointed an HTTP client at us
        assert!(matches!(d.next(), Err(FrameError::BadMagic(_))));
        // Even a partial bad prefix fails without waiting for a full header.
        let mut d = Decoder::new();
        d.feed(b"X");
        assert!(matches!(d.next(), Err(FrameError::BadMagic(_))));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut wire = Frame::Ack { seq: 3 }.encode();
        wire[4] = 9;
        let mut d = Decoder::new();
        d.feed(&wire);
        assert!(matches!(d.next(), Err(FrameError::BadVersion(9))));
    }

    #[test]
    fn oversized_length_rejected() {
        let mut wire = Frame::Ack { seq: 3 }.encode();
        wire[8..12].copy_from_slice(&(u32::MAX).to_be_bytes());
        let mut d = Decoder::new();
        d.feed(&wire);
        assert!(matches!(d.next(), Err(FrameError::Oversized(_))));
    }

    #[test]
    fn traced_publish_roundtrips_and_sets_flag() {
        let frame = Frame::Publish {
            topic: "invalidb.cluster".into(),
            payload: Bytes::from_static(b"{\"type\":\"write\"}"),
            trace: Some(TraceInfo { trace_id: u64::MAX, sent_at_micros: 123 }),
        };
        let wire = frame.encode();
        assert_eq!(u16::from_be_bytes([wire[6], wire[7]]), FLAG_TRACE);
        let mut d = Decoder::new();
        d.feed(&wire);
        assert_eq!(d.next().unwrap(), Some(frame));
    }

    #[test]
    fn unknown_flag_bits_rejected() {
        let mut wire = Frame::Ack { seq: 3 }.encode();
        wire[7] = 0x02; // reserved bit
        let mut d = Decoder::new();
        d.feed(&wire);
        assert!(matches!(d.next(), Err(FrameError::UnknownFlags(0x0002))));
        // FLAG_TRACE is Publish-only.
        let mut wire = Frame::Ack { seq: 3 }.encode();
        wire[7] = 0x01;
        let mut d = Decoder::new();
        d.feed(&wire);
        assert!(matches!(d.next(), Err(FrameError::UnknownFlags(FLAG_TRACE))));
    }

    #[test]
    fn trace_flag_without_trace_bytes_is_truncated() {
        // Set FLAG_TRACE on an untraced publish: the 16 sidecar bytes are
        // missing, so the decoder must report truncation, not garbage.
        let frame = Frame::Publish { topic: "t".into(), payload: Bytes::from_static(b"x"), trace: None };
        let mut wire = frame.encode();
        wire[7] = 0x01;
        // Fix the CRC? No — flags are outside the CRC'd payload, so the
        // frame still passes the CRC check and fails in field decoding.
        let mut d = Decoder::new();
        d.feed(&wire);
        assert!(matches!(d.next(), Err(FrameError::Truncated)));
    }

    #[test]
    fn legacy_hello_without_capabilities_decodes_as_none() {
        // Hand-build a Hello payload holding only the name, the pre-
        // capability layout: it must decode with capabilities == 0.
        let mut payload = Vec::new();
        payload.extend_from_slice(&5u16.to_be_bytes());
        payload.extend_from_slice(b"app-1");
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.push(PROTOCOL_VERSION);
        wire.push(1); // Hello
        wire.extend_from_slice(&[0, 0]);
        wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        wire.extend_from_slice(&crc32(&payload).to_be_bytes());
        wire.extend_from_slice(&payload);
        let mut d = Decoder::new();
        d.feed(&wire);
        assert_eq!(d.next().unwrap(), Some(Frame::Hello { client: "app-1".into(), capabilities: 0 }));
    }

    #[test]
    fn encode_into_appends_and_matches_encode() {
        let frames = all_frames();
        let mut scratch = Vec::new();
        for f in &frames {
            f.encode_into(&mut scratch);
        }
        let concat: Vec<u8> = frames.iter().flat_map(|f| f.encode()).collect();
        assert_eq!(scratch, concat, "batch encoding must equal per-frame encoding");
        let mut d = Decoder::new();
        d.feed(&scratch);
        let mut got = Vec::new();
        while let Some(f) = d.next().unwrap() {
            got.push(f);
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn cluster_frames_are_unknown_to_legacy_decoders() {
        // A peer that predates the membership protocol sees type bytes
        // 7–10 as UnknownType — a clean connection teardown, not a panic.
        // (This test pins the type ids so they can never be reused.)
        for (frame, id) in [
            (Frame::JoinCluster { worker: "w".into(), weight: 1 }, 7u8),
            (
                Frame::Assign {
                    epoch: 1,
                    query_partitions: 1,
                    write_partitions: 1,
                    cells: vec![(0, "w".into())],
                },
                8,
            ),
            (
                Frame::CellState {
                    worker: "w".into(),
                    epoch: 1,
                    cell: 0,
                    active_queries: 0,
                    retained_writes: 0,
                },
                9,
            ),
            (Frame::WorkerHeartbeat { worker: "w".into(), epoch: 1, nonce: 0 }, 10),
            (Frame::MetricsReport { worker: "w".into(), epoch: 1, snapshot: Bytes::new() }, 11),
        ] {
            assert_eq!(frame.encode()[5], id, "type id of {frame:?}");
        }
    }

    #[test]
    fn assign_with_lying_cell_count_is_truncated() {
        // Hand-build an Assign whose declared entry count exceeds the
        // entries actually present: the decoder must report truncation
        // (and must not pre-allocate by the attacker-controlled count).
        let mut payload = Vec::new();
        put_u64(&mut payload, 1); // epoch
        payload.extend_from_slice(&1u32.to_be_bytes()); // qp
        payload.extend_from_slice(&1u32.to_be_bytes()); // wp
        payload.extend_from_slice(&u32::MAX.to_be_bytes()); // entry count (lie)
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.push(PROTOCOL_VERSION);
        wire.push(8); // Assign
        wire.extend_from_slice(&[0, 0]);
        wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        wire.extend_from_slice(&crc32(&payload).to_be_bytes());
        wire.extend_from_slice(&payload);
        let mut d = Decoder::new();
        d.feed(&wire);
        assert!(matches!(d.next(), Err(FrameError::Truncated)));
    }

    #[test]
    fn capability_bits_are_distinct() {
        assert_eq!(CAP_BINARY & CAP_CLUSTER, 0);
        assert_eq!(CAP_BINARY & CAP_METRICS, 0);
        assert_eq!(CAP_CLUSTER & CAP_METRICS, 0);
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        // Hand-build an Ack with one extra payload byte and a valid CRC.
        let mut payload = 5u64.to_be_bytes().to_vec();
        payload.push(0xEE);
        let mut wire = Vec::new();
        wire.extend_from_slice(&MAGIC);
        wire.push(PROTOCOL_VERSION);
        wire.push(5); // Ack
        wire.extend_from_slice(&[0, 0]);
        wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        wire.extend_from_slice(&crc32(&payload).to_be_bytes());
        wire.extend_from_slice(&payload);
        let mut d = Decoder::new();
        d.feed(&wire);
        assert!(matches!(d.next(), Err(FrameError::TrailingBytes { extra: 1 })));
    }
}
