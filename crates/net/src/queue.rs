//! Bounded per-connection send queues — the backpressure boundary.
//!
//! The in-process broker applies backpressure by blocking the publisher
//! on a bounded channel. Over TCP that is not acceptable: one slow
//! subscriber connection must not stall the server's delivery to everyone
//! else. Instead each connection gets a bounded [`SendQueue`] drained by
//! its writer thread, with an explicit [`OverflowPolicy`] deciding what
//! happens when the subscriber can't keep up:
//!
//! * [`OverflowPolicy::DropOldest`] — shed load by discarding the oldest
//!   queued frame (counted in `LinkMetrics::dropped`). Fine for the
//!   event layer, whose semantics are Redis pub/sub: best-effort,
//!   at-most-once (DESIGN.md §2). The app-server's maintenance-error
//!   machinery recovers from the gap.
//! * [`OverflowPolicy::Disconnect`] — close the queue, which tears down
//!   the connection. The client's supervisor then reconnects and replays
//!   its subscriptions, converting a silent gap into an explicit
//!   connection-level event.

use invalidb_obs::{FlightEventKind, FlightRecorder};
use invalidb_stream::LinkMetrics;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What to do when a [`SendQueue`] is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowPolicy {
    /// Discard the oldest queued frame to make room.
    DropOldest,
    /// Close the queue (and thus the connection).
    Disconnect,
}

struct State<T> {
    queue: VecDeque<T>,
    closed: bool,
    /// When the last drop was logged to the flight recorder; drop storms
    /// are coalesced to one event per second so they cannot wipe the ring.
    last_drop_logged: Option<Instant>,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
    policy: OverflowPolicy,
    metrics: Arc<LinkMetrics>,
    /// Flight recorder plus the link label used in event details.
    recorder: Option<(FlightRecorder, String)>,
}

/// A bounded MPSC queue of outbound frames, one per connection. Generic
/// over the queued item so the writer path can carry decoded
/// [`Frame`](crate::frame::Frame)s (encoded in bulk into a reused scratch
/// buffer) while tests and other users can queue raw bytes.
///
/// Producers call [`push`](SendQueue::push); the connection's writer
/// thread calls [`pop`](SendQueue::pop) or — to coalesce several frames
/// into one syscall — [`pop_batch`](SendQueue::pop_batch). Cloning shares
/// the queue.
pub struct SendQueue<T> {
    inner: Arc<Inner<T>>,
}

// Derived `Clone` would demand `T: Clone`; sharing the Arc does not.
impl<T> Clone for SendQueue<T> {
    fn clone(&self) -> Self {
        SendQueue { inner: Arc::clone(&self.inner) }
    }
}

impl<T> SendQueue<T> {
    /// A queue holding at most `capacity` frames.
    pub fn new(capacity: usize, policy: OverflowPolicy, metrics: Arc<LinkMetrics>) -> Self {
        SendQueue::with_recorder(capacity, policy, metrics, None)
    }

    /// Like [`SendQueue::new`], additionally logging overflow drops to a
    /// flight recorder (at most one coalesced event per second), labelled
    /// with `link` in the event detail.
    pub fn with_recorder(
        capacity: usize,
        policy: OverflowPolicy,
        metrics: Arc<LinkMetrics>,
        recorder: Option<(FlightRecorder, String)>,
    ) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        SendQueue {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    closed: false,
                    last_drop_logged: None,
                }),
                ready: Condvar::new(),
                capacity,
                policy,
                metrics,
                recorder,
            }),
        }
    }

    /// Logs an overflow to the flight recorder, coalescing storms.
    fn log_drop(&self, state: &mut State<T>, what: &str) {
        if let Some((flight, link)) = &self.inner.recorder {
            let now = Instant::now();
            let due = state
                .last_drop_logged
                .map(|at| now.duration_since(at) >= Duration::from_secs(1))
                .unwrap_or(true);
            if due {
                state.last_drop_logged = Some(now);
                let total = self.inner.metrics.dropped.load(Ordering::Relaxed);
                flight.record(
                    FlightEventKind::QueueDrop,
                    format!("{link}: {what} ({total} dropped total)"),
                );
            }
        }
    }

    /// Enqueues a frame. Returns `false` if the queue is (or
    /// just became, per [`OverflowPolicy::Disconnect`]) closed.
    pub fn push(&self, frame: T) -> bool {
        let mut state = self.inner.state.lock();
        if state.closed {
            return false;
        }
        if state.queue.len() >= self.inner.capacity {
            match self.inner.policy {
                OverflowPolicy::DropOldest => {
                    state.queue.pop_front();
                    self.inner.metrics.dropped.fetch_add(1, Ordering::Relaxed);
                    self.log_drop(&mut state, "overflow, shed oldest frame");
                }
                OverflowPolicy::Disconnect => {
                    state.closed = true;
                    state.queue.clear();
                    self.inner.metrics.queue_depth.store(0, Ordering::Relaxed);
                    self.log_drop(&mut state, "overflow, disconnecting");
                    drop(state);
                    self.inner.ready.notify_all();
                    return false;
                }
            }
        }
        state.queue.push_back(frame);
        self.inner.metrics.queue_depth.store(state.queue.len() as u64, Ordering::Relaxed);
        drop(state);
        self.inner.ready.notify_one();
        true
    }

    /// Dequeues the next frame, blocking up to `timeout`. `Ok(None)` is a
    /// timeout (caller may do periodic work and retry); `Err(Closed)`
    /// means the queue was closed and fully drained.
    pub fn pop(&self, timeout: Duration) -> Result<Option<T>, Closed> {
        let mut state = self.inner.state.lock();
        loop {
            if let Some(frame) = state.queue.pop_front() {
                self.inner.metrics.queue_depth.store(state.queue.len() as u64, Ordering::Relaxed);
                return Ok(Some(frame));
            }
            if state.closed {
                return Err(Closed);
            }
            if self.inner.ready.wait_for(&mut state, timeout).timed_out() {
                return Ok(None);
            }
        }
    }

    /// Dequeues up to `max` frames into `out` in one lock acquisition,
    /// blocking up to `timeout` for the first. Returns how many frames
    /// were appended: `Ok(0)` is a timeout (caller may do periodic work
    /// and retry); `Err(Closed)` means closed and fully drained. This is
    /// the writer thread's batching primitive — everything queued behind
    /// the first frame rides along without further waits, so a burst of
    /// frames becomes one buffered `write_all` instead of one syscall (and
    /// one condvar wakeup) each.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize, timeout: Duration) -> Result<usize, Closed> {
        assert!(max > 0, "batch size must be positive");
        let mut state = self.inner.state.lock();
        loop {
            if !state.queue.is_empty() {
                let n = state.queue.len().min(max);
                out.extend(state.queue.drain(..n));
                self.inner.metrics.queue_depth.store(state.queue.len() as u64, Ordering::Relaxed);
                return Ok(n);
            }
            if state.closed {
                return Err(Closed);
            }
            if self.inner.ready.wait_for(&mut state, timeout).timed_out() {
                return Ok(0);
            }
        }
    }

    /// Closes the queue. Queued frames are still drained by `pop`.
    pub fn close(&self) {
        let mut state = self.inner.state.lock();
        state.closed = true;
        drop(state);
        self.inner.ready.notify_all();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.inner.state.lock().closed
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner.state.lock().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The queue was closed and drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

#[cfg(test)]
mod tests {
    use super::*;

    fn queue(cap: usize, policy: OverflowPolicy) -> (SendQueue<Vec<u8>>, Arc<LinkMetrics>) {
        let metrics = Arc::new(LinkMetrics::default());
        (SendQueue::new(cap, policy, Arc::clone(&metrics)), metrics)
    }

    #[test]
    fn fifo_order() {
        let (q, _) = queue(4, OverflowPolicy::DropOldest);
        for i in 0..3u8 {
            assert!(q.push(vec![i]));
        }
        for i in 0..3u8 {
            assert_eq!(q.pop(Duration::from_secs(1)).unwrap(), Some(vec![i]));
        }
        assert_eq!(q.pop(Duration::from_millis(10)).unwrap(), None, "timeout, not closed");
    }

    #[test]
    fn drop_oldest_sheds_head() {
        let (q, metrics) = queue(2, OverflowPolicy::DropOldest);
        assert!(q.push(vec![0]));
        assert!(q.push(vec![1]));
        assert!(q.push(vec![2]), "overflow still accepts the new frame");
        assert_eq!(metrics.dropped.load(Ordering::Relaxed), 1);
        assert_eq!(q.pop(Duration::from_secs(1)).unwrap(), Some(vec![1]), "oldest was dropped");
        assert_eq!(q.pop(Duration::from_secs(1)).unwrap(), Some(vec![2]));
    }

    #[test]
    fn disconnect_policy_closes_on_overflow() {
        let (q, _) = queue(1, OverflowPolicy::Disconnect);
        assert!(q.push(vec![0]));
        assert!(!q.push(vec![1]), "overflow closes the queue");
        assert!(q.is_closed());
        assert!(!q.push(vec![2]), "closed queue rejects pushes");
        assert_eq!(q.pop(Duration::from_secs(1)), Err(Closed));
    }

    #[test]
    fn close_drains_then_errors() {
        let (q, _) = queue(4, OverflowPolicy::DropOldest);
        q.push(vec![7]);
        q.close();
        assert_eq!(q.pop(Duration::from_secs(1)).unwrap(), Some(vec![7]));
        assert_eq!(q.pop(Duration::from_secs(1)), Err(Closed));
    }

    #[test]
    fn pop_wakes_on_cross_thread_push() {
        let (q, _) = queue(4, OverflowPolicy::DropOldest);
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.push(vec![9]);
        assert_eq!(t.join().unwrap().unwrap(), Some(vec![9]));
    }

    #[test]
    fn overflow_drops_land_in_flight_recorder() {
        let metrics = Arc::new(LinkMetrics::default());
        let flight = FlightRecorder::with_capacity(8);
        let q = SendQueue::with_recorder(
            1,
            OverflowPolicy::DropOldest,
            Arc::clone(&metrics),
            Some((flight.clone(), "peer-x".into())),
        );
        assert!(q.push(vec![0]));
        assert!(q.push(vec![1]));
        assert!(q.push(vec![2]));
        // Storm coalescing: two drops inside one second, one event.
        let dump = flight.dump();
        assert_eq!(dump.len(), 1);
        assert_eq!(dump[0].kind, FlightEventKind::QueueDrop);
        assert!(dump[0].detail.contains("peer-x"));
    }

    #[test]
    fn pop_batch_drains_up_to_max() {
        let (q, metrics) = queue(8, OverflowPolicy::DropOldest);
        for i in 0..5u8 {
            q.push(vec![i]);
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out, 3, Duration::from_secs(1)).unwrap(), 3);
        assert_eq!(out, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(metrics.queue_depth.load(Ordering::Relaxed), 2);
        assert_eq!(q.pop_batch(&mut out, 8, Duration::from_secs(1)).unwrap(), 2);
        assert_eq!(out.len(), 5, "batch appends, it does not clear");
        assert_eq!(q.pop_batch(&mut out, 8, Duration::from_millis(5)).unwrap(), 0, "timeout");
        q.close();
        assert_eq!(q.pop_batch(&mut out, 8, Duration::from_secs(1)), Err(Closed));
    }

    #[test]
    fn pop_batch_wakes_on_cross_thread_push() {
        let (q, _) = queue(4, OverflowPolicy::DropOldest);
        let q2 = q.clone();
        let t = std::thread::spawn(move || {
            let mut out = Vec::new();
            let n = q2.pop_batch(&mut out, 4, Duration::from_secs(5));
            (n, out)
        });
        std::thread::sleep(Duration::from_millis(20));
        q.push(vec![9]);
        let (n, out) = t.join().unwrap();
        assert_eq!(n.unwrap(), 1);
        assert_eq!(out, vec![vec![9]]);
    }

    #[test]
    fn queue_depth_gauge_tracks() {
        let (q, metrics) = queue(4, OverflowPolicy::DropOldest);
        q.push(vec![0]);
        q.push(vec![1]);
        assert_eq!(metrics.queue_depth.load(Ordering::Relaxed), 2);
        let _ = q.pop(Duration::from_secs(1));
        assert_eq!(metrics.queue_depth.load(Ordering::Relaxed), 1);
    }
}
