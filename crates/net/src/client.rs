//! `RemoteBroker`: the broker client — same publish/subscribe surface as
//! the in-process [`Broker`], delivered over TCP.
//!
//! Local delivery goes through a private *mirror broker*: `subscribe`
//! registers on the mirror and tells the server to start forwarding the
//! topic; the reader thread pumps incoming `Publish` frames into the
//! mirror, which fans them out to however many local subscriptions exist.
//! A janitor notices topics whose local subscriber count has dropped to
//! zero (subscriptions unsubscribe on drop, exactly like the in-process
//! broker) and sends `UNSUBSCRIBE` upstream.
//!
//! A supervisor thread owns the connection lifecycle: connect with
//! exponential backoff plus jitter, introduce itself with `HELLO`, replay
//! every tracked subscription, then serve the session until EOF, error,
//! or heartbeat timeout — and start over. Replay is what makes a
//! mid-stream disconnect survivable: the server re-attaches the topics
//! and the app-server's maintenance-error machinery (paper §5.2) repairs
//! whatever was missed during the gap, leaning on the cluster's
//! write-stream retention (§5.1).

use crate::frame::{Decoder, Frame, TraceInfo, CAP_BINARY};
use crate::queue::{Closed, OverflowPolicy, SendQueue};
use invalidb_broker::{Broker, BrokerHandle, Bytes, EventLayer, Subscription};
use invalidb_common::trace::now_micros;
use invalidb_obs::{FlightEventKind, MetricsRegistry};
use invalidb_stream::LinkRegistry;
use parking_lot::Mutex;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashSet;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Tuning for [`RemoteBroker`].
#[derive(Debug, Clone)]
pub struct RemoteBrokerConfig {
    /// Name sent in the `HELLO` frame (diagnostics only).
    pub client_name: String,
    /// Outbound send-queue capacity in frames.
    pub queue_capacity: usize,
    /// What to do when the outbound queue overflows.
    pub overflow_policy: OverflowPolicy,
    /// How often to send heartbeats on an idle connection.
    pub heartbeat_interval: Duration,
    /// How long without *any* inbound frame before the connection is
    /// declared dead and torn down for reconnect.
    pub heartbeat_timeout: Duration,
    /// First reconnect delay; doubles per failed attempt.
    pub reconnect_base: Duration,
    /// Reconnect delay ceiling.
    pub reconnect_max: Duration,
    /// Seed for backoff jitter (deterministic tests).
    pub jitter_seed: u64,
    /// Advertise [`CAP_BINARY`] in the `Hello` frame, i.e. declare that
    /// this client can decode binary (`IVBD`) envelope payloads. When
    /// `false` the client behaves like a legacy JSON-only peer: it never
    /// receives binary payloads (the server transcodes them down) and it
    /// downgrades any binary payload it is asked to publish.
    pub binary_payloads: bool,
    /// Most frames the writer thread coalesces into one buffered
    /// `write_all`. `1` disables batching (one syscall per frame).
    pub max_write_batch: usize,
    /// Registry the client reports into: its link metrics attach under
    /// `net.client.<client_name>.*`, connection state and heartbeat
    /// staleness publish as gauges (`…connected`, `…heartbeat_stale_ms`),
    /// and reconnects/disconnects/decode errors land in the registry's
    /// flight recorder. Share one registry across components to get a
    /// single unified snapshot and health evaluation.
    pub metrics: MetricsRegistry,
}

impl Default for RemoteBrokerConfig {
    fn default() -> Self {
        RemoteBrokerConfig {
            client_name: "invalidb-client".into(),
            queue_capacity: 1024,
            overflow_policy: OverflowPolicy::DropOldest,
            heartbeat_interval: Duration::from_millis(500),
            heartbeat_timeout: Duration::from_secs(2),
            reconnect_base: Duration::from_millis(50),
            reconnect_max: Duration::from_secs(2),
            jitter_seed: 0x1DB1,
            binary_payloads: true,
            max_write_batch: 64,
            metrics: MetricsRegistry::new(),
        }
    }
}

/// How often blocked reads wake up to poll flags.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

struct Inner {
    addr: String,
    config: RemoteBrokerConfig,
    /// Local fan-out: incoming `Publish` frames are republished here.
    mirror: Broker,
    /// Topics the server should be forwarding; replayed on reconnect.
    topics: Mutex<HashSet<String>>,
    /// Outbound queue of the *current* session, if connected.
    session: Mutex<Option<SendQueue<Frame>>>,
    /// Socket clone of the current session, for shutdown.
    socket: Mutex<Option<TcpStream>>,
    connected: AtomicBool,
    running: AtomicBool,
    /// Capability bits from the server's `Hello` reply on the current
    /// session; `0` until the reply arrives (and on reconnect), which is
    /// the safe JSON-only assumption.
    server_caps: AtomicU32,
    seq: AtomicU64,
    /// Highest `Ack` sequence seen (observability for tests).
    acked: AtomicU64,
    metrics: Arc<invalidb_stream::LinkMetrics>,
    /// Wall-clock micros of the last inbound frame; survives sessions so
    /// heartbeat staleness keeps climbing while disconnected.
    last_rx_micros: AtomicU64,
    /// Gauge `net.client.<name>.heartbeat_stale_ms` in the shared registry.
    stale_gauge: Arc<AtomicU64>,
    /// Gauge `net.client.<name>.connected` (0/1) in the shared registry.
    connected_gauge: Arc<AtomicU64>,
}

impl Inner {
    /// Publishes the current heartbeat staleness to its gauge.
    fn refresh_staleness(&self) {
        let stale_us = now_micros().saturating_sub(self.last_rx_micros.load(Ordering::Relaxed));
        self.stale_gauge.store(stale_us / 1_000, Ordering::Relaxed);
    }
}

/// A connection-supervised broker client. Cloning shares the connection.
#[derive(Clone)]
pub struct RemoteBroker {
    inner: Arc<Inner>,
    /// Present only on the original handle; joined on explicit shutdown.
    supervisor: Arc<Mutex<Option<JoinHandle<()>>>>,
}

impl RemoteBroker {
    /// Starts a client for the broker server at `addr` (e.g.
    /// `"127.0.0.1:7473"`). Returns immediately; the supervisor connects
    /// (and keeps reconnecting) in the background.
    pub fn connect(addr: impl Into<String>, config: RemoteBrokerConfig) -> RemoteBroker {
        // The link registry holds this client's one link, named after the
        // client; attaching it puts `net.client.<name>.*` counters and the
        // send-queue depth gauge into every registry snapshot.
        let links = Arc::new(LinkRegistry::default());
        let metrics = links.link(&config.client_name);
        config.metrics.attach_links("net.client", links);
        let gauge_base = format!("net.client.{}", config.client_name);
        let stale_gauge = config.metrics.gauge(&format!("{gauge_base}.heartbeat_stale_ms"));
        let connected_gauge = config.metrics.gauge(&format!("{gauge_base}.connected"));
        let inner = Arc::new(Inner {
            addr: addr.into(),
            config,
            mirror: Broker::new(),
            topics: Mutex::new(HashSet::new()),
            session: Mutex::new(None),
            socket: Mutex::new(None),
            connected: AtomicBool::new(false),
            running: AtomicBool::new(true),
            server_caps: AtomicU32::new(0),
            seq: AtomicU64::new(0),
            acked: AtomicU64::new(0),
            metrics,
            last_rx_micros: AtomicU64::new(now_micros()),
            stale_gauge,
            connected_gauge,
        });
        let sup_inner = Arc::clone(&inner);
        let supervisor = thread::Builder::new()
            .name("net-supervisor".into())
            .spawn(move || supervise(sup_inner))
            .expect("spawn supervisor thread");
        let broker = RemoteBroker { inner, supervisor: Arc::new(Mutex::new(Some(supervisor))) };
        broker.spawn_janitor();
        broker
    }

    /// Publishes an envelope to `topic` on the server. Returns 1 if the
    /// frame was enqueued for transmission, 0 if the client is currently
    /// disconnected (event-layer delivery is best-effort, like Redis
    /// pub/sub — see DESIGN.md §2).
    pub fn publish(&self, topic: &str, payload: Bytes) -> usize {
        let payload = self.downgrade(payload);
        let trace = sniff_trace(&payload);
        let frame = Frame::Publish { topic: topic.to_owned(), payload, trace };
        if self.enqueue(frame) {
            1
        } else {
            0
        }
    }

    /// Transcodes a binary payload down to JSON when the peer has not
    /// (yet) advertised [`CAP_BINARY`] — including the window before the
    /// server's `Hello` reply lands, when its capabilities are unknown and
    /// JSON is the only safe assumption. An undecodable binary payload
    /// passes through opaque: the event layer never drops traffic over a
    /// codec concern, and the consumer's decode-error accounting is the
    /// right place for the corruption to surface.
    fn downgrade(&self, payload: Bytes) -> Bytes {
        if !invalidb_json::bin::is_binary(&payload) {
            return payload;
        }
        if self.inner.config.binary_payloads
            && self.inner.server_caps.load(Ordering::Relaxed) & CAP_BINARY != 0
        {
            return payload;
        }
        match invalidb_json::bin::decode_document(&payload) {
            Ok(doc) => invalidb_json::document_to_payload(&doc),
            Err(_) => payload,
        }
    }

    /// Subscribes to `topic`. The returned [`Subscription`] behaves
    /// exactly like an in-process one; dropping it unsubscribes (the
    /// janitor propagates the `UNSUBSCRIBE` upstream once the local
    /// subscriber count reaches zero).
    pub fn subscribe(&self, topic: &str) -> Subscription {
        let subscription = self.inner.mirror.subscribe(topic);
        let newly_tracked = self.inner.topics.lock().insert(topic.to_owned());
        if newly_tracked {
            let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed) + 1;
            self.enqueue(Frame::Subscribe { seq, topic: topic.to_owned() });
        }
        subscription
    }

    /// Capability bits the server advertised in its `Hello` reply on the
    /// current session (`0` while disconnected or before the reply).
    pub fn server_capabilities(&self) -> u32 {
        self.inner.server_caps.load(Ordering::Relaxed)
    }

    /// Number of *local* subscriptions on `topic` (the server's global
    /// count is not visible from here).
    pub fn subscriber_count(&self, topic: &str) -> usize {
        self.inner.mirror.subscriber_count(topic)
    }

    /// Whether a session is currently established.
    pub fn is_connected(&self) -> bool {
        self.inner.connected.load(Ordering::SeqCst)
    }

    /// Link metrics for this client's connection.
    pub fn metrics(&self) -> Arc<invalidb_stream::LinkMetrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// Highest `Ack` sequence number received from the server.
    pub fn last_acked(&self) -> u64 {
        self.inner.acked.load(Ordering::SeqCst)
    }

    /// Time since the last inbound frame from the server (any frame
    /// proves liveness — the server heartbeats idle connections). Keeps
    /// climbing across disconnects, so it is the health model's primary
    /// partition signal; also published continuously as the gauge
    /// `net.client.<client_name>.heartbeat_stale_ms`.
    pub fn heartbeat_staleness(&self) -> Duration {
        let last = self.inner.last_rx_micros.load(Ordering::Relaxed);
        Duration::from_micros(now_micros().saturating_sub(last))
    }

    /// Blocks until a session is established or `timeout` elapses.
    pub fn wait_connected(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.is_connected() {
                return true;
            }
            thread::sleep(Duration::from_millis(5));
        }
        self.is_connected()
    }

    /// Drops the current connection without stopping the supervisor —
    /// it will reconnect and replay subscriptions. Test hook for
    /// mid-stream disconnects.
    pub fn kick(&self) {
        if let Some(sock) = self.inner.socket.lock().as_ref() {
            let _ = sock.shutdown(Shutdown::Both);
        }
    }

    /// Stops the supervisor, closes the connection, and joins all
    /// background threads. Idempotent.
    pub fn shutdown(&self) {
        self.inner.running.store(false, Ordering::SeqCst);
        if let Some(q) = self.inner.session.lock().as_ref() {
            q.close();
        }
        self.kick();
        if let Some(t) = self.supervisor.lock().take() {
            let _ = t.join();
        }
    }

    fn enqueue(&self, frame: Frame) -> bool {
        let session = self.inner.session.lock();
        match session.as_ref() {
            Some(q) => q.push(frame),
            None => false,
        }
    }

    /// Watches for topics whose local subscriber count dropped to zero
    /// and unsubscribes them upstream.
    fn spawn_janitor(&self) {
        let inner = Arc::clone(&self.inner);
        thread::Builder::new()
            .name("net-janitor".into())
            .spawn(move || {
                while inner.running.load(Ordering::SeqCst) {
                    thread::sleep(POLL_INTERVAL);
                    let stale: Vec<String> = {
                        let topics = inner.topics.lock();
                        topics
                            .iter()
                            .filter(|t| inner.mirror.subscriber_count(t) == 0)
                            .cloned()
                            .collect()
                    };
                    if stale.is_empty() {
                        continue;
                    }
                    let mut topics = inner.topics.lock();
                    let session = inner.session.lock();
                    for topic in stale {
                        // Re-check under the lock: a subscribe may have raced in.
                        if inner.mirror.subscriber_count(&topic) != 0 {
                            continue;
                        }
                        topics.remove(&topic);
                        if let Some(q) = session.as_ref() {
                            let seq = inner.seq.fetch_add(1, Ordering::Relaxed) + 1;
                            q.push(Frame::Unsubscribe { seq, topic });
                        }
                    }
                }
            })
            .expect("spawn janitor thread");
    }
}

/// Byte pattern a traced JSON envelope is guaranteed to contain: the
/// compact serializer in `invalidb-json` emits insertion-ordered keys with
/// no whitespace, and `TraceContext::to_document` puts `id` first.
const TRACE_NEEDLE: &[u8] = b"\"trace\":{\"id\":";

/// Detects an embedded [`TraceContext`](invalidb_common::TraceContext) in
/// an opaque envelope payload without fully parsing it. Binary payloads go
/// through `invalidb_json::bin::sniff_trace_id` (the binary twin of this
/// scan); JSON payloads scan for [`TRACE_NEEDLE`] and read the integer
/// that follows. Only *sampled* envelopes carry either pattern, so the
/// common case is one memmem miss.
///
/// The resulting [`TraceInfo`] sidecar travels in the frame header
/// extension ([`crate::frame::FLAG_TRACE`]) so the broker server can stamp
/// the broker hop without ever deserializing unsampled traffic.
fn sniff_trace(payload: &Bytes) -> Option<TraceInfo> {
    if invalidb_json::bin::is_binary(payload) {
        return invalidb_json::bin::sniff_trace_id(payload).map(|id| TraceInfo {
            trace_id: id as u64,
            sent_at_micros: invalidb_common::trace::now_micros(),
        });
    }
    let hit = payload.windows(TRACE_NEEDLE.len()).position(|w| w == TRACE_NEEDLE)?;
    let rest = &payload[hit + TRACE_NEEDLE.len()..];
    let (negative, digits) = match rest.first() {
        Some(b'-') => (true, &rest[1..]),
        _ => (false, rest),
    };
    let end = digits.iter().position(|b| !b.is_ascii_digit()).unwrap_or(digits.len());
    if end == 0 {
        return None;
    }
    let mut value: i64 = 0;
    for &b in &digits[..end] {
        value = value.wrapping_mul(10).wrapping_add((b - b'0') as i64);
    }
    if negative {
        value = value.wrapping_neg();
    }
    Some(TraceInfo { trace_id: value as u64, sent_at_micros: invalidb_common::trace::now_micros() })
}

impl EventLayer for RemoteBroker {
    fn publish(&self, topic: &str, payload: Bytes) -> usize {
        RemoteBroker::publish(self, topic, payload)
    }

    fn subscribe(&self, topic: &str) -> Subscription {
        RemoteBroker::subscribe(self, topic)
    }

    fn subscriber_count(&self, topic: &str) -> usize {
        RemoteBroker::subscriber_count(self, topic)
    }

    fn generation(&self) -> u64 {
        // `reconnects` is 1 after the first connect and +1 per re-established
        // session, which is exactly the generation contract: a bump tells
        // publishers that frames enqueued against the previous session may
        // have died with it.
        self.metrics().reconnects.load(Ordering::Relaxed)
    }
}

impl From<RemoteBroker> for BrokerHandle {
    fn from(remote: RemoteBroker) -> BrokerHandle {
        BrokerHandle::new(remote)
    }
}

impl std::fmt::Debug for RemoteBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBroker")
            .field("addr", &self.inner.addr)
            .field("connected", &self.is_connected())
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// Supervisor: connect → hello → replay → serve → (backoff) → repeat
// ---------------------------------------------------------------------------

fn supervise(inner: Arc<Inner>) {
    let mut rng = StdRng::seed_from_u64(inner.config.jitter_seed);
    let mut backoff = inner.config.reconnect_base;
    let flight = inner.config.metrics.flight();
    let name = inner.config.client_name.clone();
    while inner.running.load(Ordering::SeqCst) {
        let stream = match TcpStream::connect(&inner.addr) {
            Ok(s) => s,
            Err(_) => {
                sleep_with_jitter(&inner, backoff, &mut rng);
                backoff = (backoff * 2).min(inner.config.reconnect_max);
                continue;
            }
        };
        stream.set_nodelay(true).ok();
        backoff = inner.config.reconnect_base;
        inner.metrics.reconnects.fetch_add(1, Ordering::Relaxed);
        flight.record(FlightEventKind::Reconnect, format!("{name} -> {}", inner.addr));
        inner.connected_gauge.store(1, Ordering::Relaxed);
        run_session(&inner, stream);
        inner.connected.store(false, Ordering::SeqCst);
        inner.connected_gauge.store(0, Ordering::Relaxed);
        *inner.session.lock() = None;
        *inner.socket.lock() = None;
        if inner.running.load(Ordering::SeqCst) {
            flight.record(FlightEventKind::Disconnect, format!("{name} -> {}", inner.addr));
        }
    }
    inner.connected_gauge.store(0, Ordering::Relaxed);
}

/// Sleep for `backoff` scaled by a jitter factor in [0.5, 1.5), waking
/// early on shutdown. Keeps the staleness gauge fresh while disconnected
/// so the health model sees the partition widen in real time.
fn sleep_with_jitter(inner: &Inner, backoff: Duration, rng: &mut StdRng) {
    let jitter = 0.5 + rng.gen::<f64>();
    let mut remaining = backoff.mul_f64(jitter);
    while remaining > Duration::ZERO && inner.running.load(Ordering::SeqCst) {
        inner.refresh_staleness();
        let step = remaining.min(POLL_INTERVAL);
        thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

fn run_session(inner: &Arc<Inner>, stream: TcpStream) {
    let metrics = Arc::clone(&inner.metrics);
    let queue = SendQueue::with_recorder(
        inner.config.queue_capacity,
        inner.config.overflow_policy,
        Arc::clone(&metrics),
        Some((
            inner.config.metrics.flight(),
            format!("client {} -> {}", inner.config.client_name, inner.addr),
        )),
    );

    // Each session renegotiates: the peer may have been replaced by one
    // with different capabilities, so assume JSON-only until its Hello.
    inner.server_caps.store(0, Ordering::Relaxed);
    // Introduce ourselves and replay every tracked topic before the
    // queue is visible to publishers, so replay frames go out first.
    let capabilities = if inner.config.binary_payloads { CAP_BINARY } else { 0 };
    queue.push(Frame::Hello { client: inner.config.client_name.clone(), capabilities });
    {
        let topics = inner.topics.lock();
        for topic in topics.iter() {
            let seq = inner.seq.fetch_add(1, Ordering::Relaxed) + 1;
            queue.push(Frame::Subscribe { seq, topic: topic.clone() });
        }
    }
    if let Ok(clone) = stream.try_clone() {
        *inner.socket.lock() = Some(clone);
    }
    *inner.session.lock() = Some(queue.clone());
    inner.connected.store(true, Ordering::SeqCst);

    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let writer = spawn_writer(writer_stream, queue.clone(), Arc::clone(&metrics), inner);

    read_session(inner, stream, &queue, &metrics);

    queue.close();
    let _ = writer.join();
}

fn read_session(
    inner: &Arc<Inner>,
    mut stream: TcpStream,
    queue: &SendQueue<Frame>,
    metrics: &Arc<invalidb_stream::LinkMetrics>,
) {
    stream.set_read_timeout(Some(POLL_INTERVAL)).ok();
    let mut decoder = Decoder::new();
    let mut buf = [0u8; 16 * 1024];
    let mut last_rx = Instant::now();

    'outer: loop {
        if !inner.running.load(Ordering::SeqCst) || queue.is_closed() {
            break;
        }
        inner.refresh_staleness();
        if last_rx.elapsed() > inner.config.heartbeat_timeout {
            break; // dead peer: reconnect
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                continue;
            }
            Err(_) => break,
        };
        last_rx = Instant::now();
        inner.last_rx_micros.store(now_micros(), Ordering::Relaxed);
        inner.refresh_staleness();
        decoder.feed(&buf[..n]);
        loop {
            let frame = match decoder.next() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(_) => {
                    metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
                    inner.config.metrics.flight().record(
                        FlightEventKind::DecodeError,
                        format!("{} <- {}", inner.config.client_name, inner.addr),
                    );
                    break 'outer;
                }
            };
            metrics.frames_in.fetch_add(1, Ordering::Relaxed);
            match frame {
                Frame::Publish { topic, payload, .. } => {
                    metrics.bytes_in.fetch_add(payload.len() as u64, Ordering::Relaxed);
                    inner.mirror.publish(&topic, payload);
                }
                Frame::Ack { seq } => {
                    inner.acked.fetch_max(seq, Ordering::SeqCst);
                }
                Frame::Heartbeat { .. } => {}
                // The server's half of the capability negotiation.
                Frame::Hello { capabilities, .. } => {
                    inner.server_caps.store(capabilities, Ordering::Relaxed);
                }
                // Server-only requests; ignore if echoed at us. Cluster
                // membership frames travel on dedicated coordinator
                // connections, never through the broker client.
                Frame::Subscribe { .. }
                | Frame::Unsubscribe { .. }
                | Frame::JoinCluster { .. }
                | Frame::Assign { .. }
                | Frame::CellState { .. }
                | Frame::WorkerHeartbeat { .. }
                | Frame::MetricsReport { .. } => {}
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

fn spawn_writer(
    mut stream: TcpStream,
    queue: SendQueue<Frame>,
    metrics: Arc<invalidb_stream::LinkMetrics>,
    inner: &Arc<Inner>,
) -> JoinHandle<()> {
    let heartbeat_interval = inner.config.heartbeat_interval;
    let max_batch = inner.config.max_write_batch.max(1);
    let inner = Arc::clone(inner);
    thread::Builder::new()
        .name("net-client-writer".into())
        .spawn(move || {
            // Heartbeats are identical every beat: encode once per
            // connection instead of once per beat.
            let heartbeat = Frame::Heartbeat { nonce: 0 }.encode();
            let mut batch: Vec<Frame> = Vec::with_capacity(max_batch);
            let mut scratch: Vec<u8> = Vec::with_capacity(16 * 1024);
            loop {
                if !inner.running.load(Ordering::SeqCst) {
                    break;
                }
                match queue.pop_batch(&mut batch, max_batch, heartbeat_interval) {
                    Ok(0) => {
                        // Idle: prove liveness to the peer.
                        if stream.write_all(&heartbeat).is_err() {
                            queue.close();
                            break;
                        }
                        metrics.frames_out.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(n) => {
                        scratch.clear();
                        for frame in batch.drain(..) {
                            frame.encode_into(&mut scratch);
                        }
                        if stream.write_all(&scratch).is_err() {
                            queue.close();
                            break;
                        }
                        metrics.frames_out.fetch_add(n as u64, Ordering::Relaxed);
                    }
                    Err(Closed) => break,
                }
            }
            let _ = stream.shutdown(Shutdown::Both);
        })
        .expect("spawn client writer thread")
}
