//! Property tests for the wire codec: every frame that can be encoded
//! must round-trip through the decoder, under arbitrary chunking — and
//! torn or corrupted streams must be rejected without producing a frame.

use bytes::Bytes;
use invalidb_net::frame::{Decoder, Frame, FrameError, TraceInfo, HEADER_LEN};
use proptest::prelude::*;

fn topic_strategy() -> impl Strategy<Value = String> {
    // Realistic topic shapes, including the empty string.
    "[a-zA-Z0-9_.$-]{0,24}"
}

fn trace_strategy() -> impl Strategy<Value = Option<TraceInfo>> {
    (any::<bool>(), any::<u64>(), any::<u64>()).prop_map(|(traced, trace_id, sent_at_micros)| {
        traced.then_some(TraceInfo { trace_id, sent_at_micros })
    })
}

fn worker_strategy() -> impl Strategy<Value = String> {
    // Worker names, including the empty string the codec must tolerate.
    "[a-z0-9-]{0,16}"
}

fn cells_strategy() -> impl Strategy<Value = Vec<(u32, String)>> {
    prop::collection::vec((any::<u32>(), worker_strategy()), 0..16)
}

fn frame_strategy() -> impl Strategy<Value = Frame> {
    prop_oneof![
        ("[a-z0-9-]{0,16}", any::<u32>())
            .prop_map(|(client, capabilities)| Frame::Hello { client, capabilities }),
        (any::<u64>(), topic_strategy()).prop_map(|(seq, topic)| Frame::Subscribe { seq, topic }),
        (any::<u64>(), topic_strategy()).prop_map(|(seq, topic)| Frame::Unsubscribe { seq, topic }),
        (topic_strategy(), prop::collection::vec(any::<u8>(), 0..256), trace_strategy()).prop_map(
            |(topic, payload, trace)| Frame::Publish { topic, payload: Bytes::from(payload), trace }
        ),
        any::<u64>().prop_map(|seq| Frame::Ack { seq }),
        any::<u64>().prop_map(|nonce| Frame::Heartbeat { nonce }),
        (worker_strategy(), any::<u32>())
            .prop_map(|(worker, weight)| Frame::JoinCluster { worker, weight }),
        (any::<u64>(), any::<u32>(), any::<u32>(), cells_strategy()).prop_map(
            |(epoch, query_partitions, write_partitions, cells)| Frame::Assign {
                epoch,
                query_partitions,
                write_partitions,
                cells
            }
        ),
        (worker_strategy(), any::<u64>(), any::<u32>(), any::<u64>(), any::<u64>()).prop_map(
            |(worker, epoch, cell, active_queries, retained_writes)| Frame::CellState {
                worker,
                epoch,
                cell,
                active_queries,
                retained_writes
            }
        ),
        (worker_strategy(), any::<u64>(), any::<u64>())
            .prop_map(|(worker, epoch, nonce)| Frame::WorkerHeartbeat { worker, epoch, nonce }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn roundtrip(frame in frame_strategy()) {
        let wire = frame.encode();
        let mut d = Decoder::new();
        d.feed(&wire);
        prop_assert_eq!(d.next().unwrap(), Some(frame));
        prop_assert_eq!(d.next().unwrap(), None);
        prop_assert_eq!(d.buffered(), 0, "no leftover bytes");
    }

    #[test]
    fn roundtrip_under_arbitrary_chunking(
        frames in prop::collection::vec(frame_strategy(), 1..5),
        chunk_size in 1usize..64,
    ) {
        let wire: Vec<u8> = frames.iter().flat_map(|f| f.encode()).collect();
        let mut d = Decoder::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(chunk_size) {
            d.feed(chunk);
            while let Some(f) = d.next().unwrap() {
                got.push(f);
            }
        }
        prop_assert_eq!(got, frames);
    }

    #[test]
    fn torn_tail_yields_nothing_then_resumes(
        frame in frame_strategy(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let wire = frame.encode();
        // Cut strictly inside the frame.
        let cut = 1 + ((wire.len() - 2) as f64 * cut_fraction) as usize;
        let mut d = Decoder::new();
        d.feed(&wire[..cut]);
        prop_assert_eq!(d.next().unwrap(), None, "torn tail is not an error");
        d.feed(&wire[cut..]);
        prop_assert_eq!(d.next().unwrap(), Some(frame));
    }

    #[test]
    fn truncated_stream_never_yields_a_frame(frame in frame_strategy()) {
        // A stream that ends mid-frame (connection reset) must never
        // produce a frame, no matter where it was cut.
        let wire = frame.encode();
        for cut in 1..wire.len() {
            let mut d = Decoder::new();
            d.feed(&wire[..cut]);
            prop_assert_eq!(d.next().unwrap(), None, "cut at {} produced a frame", cut);
        }
    }

    #[test]
    fn payload_corruption_is_detected(
        frame in frame_strategy(),
        flip_fraction in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut wire = frame.encode();
        if wire.len() == HEADER_LEN {
            return Ok(()); // empty payload: nothing to corrupt
        }
        let idx = HEADER_LEN + ((wire.len() - HEADER_LEN - 1) as f64 * flip_fraction) as usize;
        wire[idx] ^= 1 << bit;
        let mut d = Decoder::new();
        d.feed(&wire);
        prop_assert!(
            matches!(d.next(), Err(FrameError::CrcMismatch { .. })),
            "flipped payload bit must fail the CRC"
        );
    }

    #[test]
    fn header_corruption_never_panics(
        frame in frame_strategy(),
        idx in 0usize..HEADER_LEN,
        bit in 0u8..8,
    ) {
        let mut wire = frame.encode();
        wire[idx] ^= 1 << bit;
        let mut d = Decoder::new();
        d.feed(&wire);
        // Whatever the corruption hit (magic, version, type, flags,
        // length, CRC), the decoder must fail cleanly or wait for more
        // bytes — never panic. It may still yield a frame: the type and
        // flags bytes sit outside the CRC-protected span, so a flip
        // there can legally decode as a *different* frame when the
        // payload layouts coincide (e.g. Subscribe ↔ Unsubscribe). The
        // sound invariant is that anything the decoder accepts must be
        // a canonical encoding of the frame it returned.
        if let Ok(Some(got)) = d.next() {
            prop_assert_eq!(
                got.encode(),
                wire,
                "accepted image is not a canonical encoding of the decoded frame"
            );
        }
    }
}
