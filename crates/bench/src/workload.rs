//! The paper's benchmark workload (§6.1).
//!
//! Every written document has five 10-character string attributes and five
//! integer attributes, one of which (`random`) is a unique random number.
//! Queries are range predicates `random >= i AND random < j`. The value
//! space is laid out so that a configurable subset of queries (1 000 in the
//! paper) match exactly one written item each, while all remaining queries
//! never match — yielding a steady, bounded notification throughput
//! (≈17 matches/s in the paper) independent of the total query count.

use invalidb_common::{doc, Document, Key, QuerySpec};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

/// Deterministic workload generator.
pub struct Workload {
    rng: StdRng,
    /// Unique `random`-attribute values assigned to written documents, in
    /// write order.
    match_values: Vec<i64>,
    next_write: usize,
}

/// Value-space regions: matching queries target `[0, spread)`, never-matching
/// queries target `[MISS_BASE, ..)` which no document ever occupies.
const MISS_BASE: i64 = 1_000_000_000;

impl Workload {
    /// A workload where `matching_writes` documents will each be matched by
    /// exactly one of the first `matching_writes` queries.
    pub fn new(seed: u64, matching_writes: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Unique, well-spread values: shuffled multiples of a stride.
        let mut match_values: Vec<i64> = (0..matching_writes as i64).map(|i| i * 1_000).collect();
        match_values.shuffle(&mut rng);
        Self { rng, match_values, next_write: 0 }
    }

    /// The collection name used by all generated specs and documents.
    pub fn collection() -> &'static str {
        "test"
    }

    /// Generates the query set: the first `self.match_count()` queries match
    /// exactly one written document each; the rest can never match.
    pub fn queries(&self, total: usize) -> Vec<QuerySpec> {
        let mut out = Vec::with_capacity(total);
        for (i, v) in self.match_values.iter().enumerate().take(total) {
            let _ = i;
            out.push(range_query(*v, *v + 1));
        }
        // Non-matching queries: ranges in the unpopulated region, distinct
        // bounds so every query is a distinct subscription.
        for i in out.len()..total {
            let base = MISS_BASE + (i as i64) * 10;
            out.push(range_query(base, base + 5));
        }
        out
    }

    /// Number of writes that will produce a notification.
    pub fn match_count(&self) -> usize {
        self.match_values.len()
    }

    /// Next document to write: five 10-char strings + five ints, one of
    /// which is the unique `random` value. The first `match_count()` writes
    /// carry the matching values; later writes miss every query.
    pub fn next_document(&mut self) -> (Key, Document) {
        let idx = self.next_write;
        self.next_write += 1;
        let random = if idx < self.match_values.len() {
            self.match_values[idx]
        } else {
            MISS_BASE / 2 + idx as i64 // populated nowhere near any query range
        };
        let doc = self.document_with_random(random);
        (Key::of(format!("doc-{idx}")), doc)
    }

    /// A document with a specific `random` value.
    pub fn document_with_random(&mut self, random: i64) -> Document {
        doc! {
            "s1" => self.literal(), "s2" => self.literal(), "s3" => self.literal(),
            "s4" => self.literal(), "s5" => self.literal(),
            "i1" => self.rng.gen_range(0..1_000i64),
            "i2" => self.rng.gen_range(0..1_000i64),
            "i3" => self.rng.gen_range(0..1_000i64),
            "i4" => self.rng.gen_range(0..1_000i64),
            "random" => random,
        }
    }

    fn literal(&mut self) -> String {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
        (0..10).map(|_| ALPHABET[self.rng.gen_range(0..ALPHABET.len())] as char).collect()
    }
}

/// `SELECT * FROM test WHERE random >= lo AND random < hi` (§6.1).
pub fn range_query(lo: i64, hi: i64) -> QuerySpec {
    QuerySpec::filter(Workload::collection(), doc! { "random" => doc! { "$gte" => lo, "$lt" => hi } })
}

#[cfg(test)]
mod tests {
    use super::*;
    use invalidb_query::{MongoQueryEngine, QueryEngine};

    #[test]
    fn each_matching_write_hits_exactly_one_query() {
        let mut w = Workload::new(7, 50);
        let queries = w.queries(200);
        let prepared: Vec<_> = queries.iter().map(|q| MongoQueryEngine.prepare(q).unwrap()).collect();
        for _ in 0..50 {
            let (_, doc) = w.next_document();
            let hits = prepared.iter().filter(|p| p.matches(&doc)).count();
            assert_eq!(hits, 1);
        }
        // Non-matching writes hit nothing.
        for _ in 0..20 {
            let (_, doc) = w.next_document();
            let hits = prepared.iter().filter(|p| p.matches(&doc)).count();
            assert_eq!(hits, 0);
        }
    }

    #[test]
    fn queries_are_distinct_subscriptions() {
        let w = Workload::new(7, 10);
        let queries = w.queries(100);
        let hashes: std::collections::HashSet<_> = queries.iter().map(|q| q.stable_hash()).collect();
        assert_eq!(hashes.len(), 100);
    }

    #[test]
    fn documents_have_paper_shape() {
        let mut w = Workload::new(7, 1);
        let (_, doc) = w.next_document();
        assert_eq!(doc.len(), 10);
        let strings = doc.iter().filter(|(_, v)| v.as_str().is_some()).count();
        assert_eq!(strings, 5);
        assert_eq!(doc.get("s1").unwrap().as_str().unwrap().len(), 10);
        assert!(doc.get("random").unwrap().as_i64().is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Workload::new(9, 5);
        let mut b = Workload::new(9, 5);
        assert_eq!(a.next_document(), b.next_document());
        assert_eq!(a.queries(10), b.queries(10));
    }
}
