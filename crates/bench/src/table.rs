//! Plain-text table and series printers for bench output.

/// Prints a header banner for one paper artifact.
pub fn banner(id: &str, title: &str) {
    println!();
    println!("==============================================================================");
    println!("{id}: {title}");
    println!("==============================================================================");
}

/// Prints a table: column headers plus rows of preformatted cells.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::from("|");
        for (cell, w) in cells.iter().zip(widths.iter()) {
            out.push_str(&format!(" {cell:>w$} |", w = w));
        }
        println!("{out}");
    };
    let sep: String = {
        let mut out = String::from("+");
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out
    };
    println!("{sep}");
    line(headers.iter().map(|h| h.to_string()).collect());
    println!("{sep}");
    for row in rows {
        line(row.clone());
    }
    println!("{sep}");
}

/// Prints an ASCII bar-series (one line per point), for figure-style output.
pub fn series(title: &str, points: &[(String, f64)], unit: &str) {
    println!("-- {title} --");
    let max = points.iter().map(|(_, v)| *v).fold(f64::MIN, f64::max).max(1e-9);
    for (label, value) in points {
        let bar_len = ((value / max) * 50.0).round() as usize;
        println!(
            "  {label:>16} | {}{} {value:.1} {unit}",
            "#".repeat(bar_len),
            " ".repeat(50 - bar_len.min(50))
        );
    }
}

/// Formats milliseconds with one decimal.
pub fn ms(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn printers_do_not_panic() {
        banner("T0", "smoke");
        table(&["a", "bb"], &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]]);
        series("s", &[("x".into(), 1.0), ("y".into(), 2.0)], "ops/s");
        assert_eq!(ms(1.234), "1.2");
    }
}
