//! Live-cluster measurement harness.
//!
//! Mirrors the paper's methodology (§6.1): a preparation phase activates
//! the queries, then a measurement phase performs a steady number of writes
//! per second and records change-notification latency end to end — from
//! right before a write is issued until the notification is received.
//! Latency is carried *inside the written document* (a `ts` field with the
//! wall-clock microsecond timestamp), so the identical measurement works
//! for the standalone cluster, the Quaestor (app-server) deployment, and
//! both baseline providers.

use crate::workload::{range_query, Workload};
use invalidb_broker::{notify_topic, Broker, CLUSTER_TOPIC};
use invalidb_client::{AppServer, AppServerConfig, ClientEvent};
use invalidb_common::{
    AfterImage, ClusterMessage, Document, Histogram, Key, Notification, NotificationKind, QuerySpec,
    SubscriptionId, SubscriptionRequest, TenantId,
};
use invalidb_core::{Cluster, ClusterConfig};
use invalidb_store::Store;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

const TENANT: &str = "bench";

/// Configuration of one live measurement run.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Query partitions.
    pub qp: usize,
    /// Write partitions.
    pub wp: usize,
    /// Total active real-time queries.
    pub queries: usize,
    /// How many of the writes produce a notification.
    pub matching_writes: usize,
    /// Total writes this run.
    pub writes: usize,
    /// Target steady write rate.
    pub writes_per_sec: f64,
    /// Synthetic per-query match cost (emulates the paper's CPU throttling
    /// so saturation appears at laptop-scale workloads); `None` = raw speed.
    pub synthetic_match_cost: Option<Duration>,
    /// Route everything through an application server (§7, Quaestor mode).
    pub via_app_server: bool,
    /// Write-stream retention at the matching nodes.
    pub retention: Duration,
    /// Workload seed.
    pub seed: u64,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            qp: 1,
            wp: 1,
            queries: 100,
            matching_writes: 50,
            writes: 500,
            writes_per_sec: 500.0,
            synthetic_match_cost: None,
            via_app_server: false,
            retention: Duration::from_secs(2),
            seed: 0xBE7C,
        }
    }
}

/// Result of one live run.
#[derive(Debug)]
pub struct LiveRun {
    /// End-to-end notification latency (µs).
    pub latency_us: Histogram,
    /// Notifications received.
    pub notifications: u64,
    /// Notifications expected (matching writes issued).
    pub expected: u64,
    /// Writes actually issued.
    pub writes: u64,
    /// Achieved write rate.
    pub achieved_writes_per_sec: f64,
    /// Messages processed by the matching grid in total (subscriptions +
    /// after-images across all nodes).
    pub matching_processed: u64,
    /// Number of matching nodes in the grid.
    pub matching_nodes: usize,
}

impl LiveRun {
    /// Average messages processed per matching node — the per-node share of
    /// the workload, which the 2-D scheme shrinks as partitions are added.
    pub fn per_node_load(&self) -> f64 {
        self.matching_processed as f64 / self.matching_nodes.max(1) as f64
    }
}

impl LiveRun {
    /// p99 latency in milliseconds.
    pub fn p99_ms(&self) -> f64 {
        self.latency_us.quantile(0.99) as f64 / 1_000.0
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.latency_us.mean() / 1_000.0
    }

    /// Delivery completeness in `[0, 1]`.
    pub fn delivery_ratio(&self) -> f64 {
        if self.expected == 0 {
            return 1.0;
        }
        self.notifications as f64 / self.expected as f64
    }
}

fn now_us() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0)
}

fn latency_from_doc(doc: &Document) -> Option<u64> {
    let ts = doc.get("ts")?.as_i64()? as u64;
    Some(now_us().saturating_sub(ts))
}

/// Runs one live measurement. Also usable with a caller-provided broker
/// (e.g. one with chaos injection) via [`run_live_on`].
pub fn run_live(cfg: &LiveConfig) -> LiveRun {
    run_live_on(cfg, Broker::new())
}

/// [`run_live`] against a specific broker instance.
pub fn run_live_on(cfg: &LiveConfig, broker: Broker) -> LiveRun {
    let mut cluster_cfg = ClusterConfig::new(cfg.qp, cfg.wp);
    cluster_cfg.retention = cfg.retention;
    cluster_cfg.synthetic_match_cost = cfg.synthetic_match_cost;
    let cluster = Cluster::start(broker.clone(), cluster_cfg);
    let mut result =
        if cfg.via_app_server { run_via_app_server(cfg, &broker) } else { run_standalone(cfg, &broker) };
    result.matching_processed = cluster.topology_metrics().component("matching").snapshot().0;
    result.matching_nodes = cluster.grid().nodes();
    cluster.shutdown();
    result
}

/// Standalone deployment (§6): the benchmark client talks to the event
/// layer directly.
fn run_standalone(cfg: &LiveConfig, broker: &Broker) -> LiveRun {
    let mut workload = Workload::new(cfg.seed, cfg.matching_writes);
    let queries = workload.queries(cfg.queries);

    // Collector thread: measures notification latency from document `ts`.
    let notify = broker.subscribe(&notify_topic(TENANT));
    let stop = Arc::new(AtomicBool::new(false));
    let collector = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut hist = Histogram::new();
            let mut count = 0u64;
            while !stop.load(Ordering::Relaxed) || notify.queued() > 0 {
                let payload = match notify.recv_timeout(Duration::from_millis(20)) {
                    Some(p) => p,
                    None => continue,
                };
                let d = match invalidb_json::payload_to_document(&payload) {
                    Ok(d) => d,
                    Err(_) => continue,
                };
                if d.get("type").and_then(|v| v.as_str()) == Some("heartbeat") {
                    continue;
                }
                if let Ok(n) = Notification::from_document(&d) {
                    if let NotificationKind::Change(c) = &n.kind {
                        if let Some(lat) = c.item.doc.as_ref().and_then(latency_from_doc) {
                            hist.record(lat);
                            count += 1;
                        }
                    }
                }
            }
            (hist, count)
        })
    };

    // Preparation phase: activate all queries, then probe until the cluster
    // demonstrably matches (paper: queries added before measurement).
    for (i, spec) in queries.iter().enumerate() {
        publish(broker, &subscribe_msg(spec, i as u64 + 1));
    }
    probe_until_live(broker, &mut workload);

    // Measurement phase: steady writes; matching writes spread evenly.
    let interval = Duration::from_secs_f64(1.0 / cfg.writes_per_sec);
    let start = Instant::now();
    let mut issued = 0u64;
    let match_every = (cfg.writes / cfg.matching_writes.max(1)).max(1);
    let mut matched_issued = 0usize;
    for i in 0..cfg.writes {
        let target = start + interval.mul_f64(i as f64);
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        let is_match = i % match_every == 0 && matched_issued < cfg.matching_writes;
        let (key, mut doc) = if is_match {
            matched_issued += 1;
            workload.next_document()
        } else {
            let d = workload.document_with_random(2_000_000_000 + i as i64);
            (Key::of(format!("miss-{i}")), d)
        };
        doc.insert("ts", now_us() as i64);
        publish(
            broker,
            &ClusterMessage::Write(AfterImage {
                tenant: TenantId::new(TENANT),
                collection: Workload::collection().into(),
                key,
                version: 1,
                doc: Some(doc),
                written_at: now_us(),
                trace: None,
            }),
        );
        issued += 1;
    }
    let elapsed = start.elapsed();
    // Grace period for in-flight notifications.
    std::thread::sleep(Duration::from_millis(500));
    stop.store(true, Ordering::Relaxed);
    let (hist, count) = collector.join().expect("collector");
    LiveRun {
        latency_us: hist,
        notifications: count,
        expected: matched_issued as u64,
        writes: issued,
        achieved_writes_per_sec: issued as f64 / elapsed.as_secs_f64().max(1e-9),
        matching_processed: 0,
        matching_nodes: 0,
    }
}

/// Quaestor deployment (§7): everything flows through one app server.
fn run_via_app_server(cfg: &LiveConfig, broker: &Broker) -> LiveRun {
    let store = Arc::new(Store::new());
    let app = AppServer::start(TENANT, Arc::clone(&store), broker.clone(), AppServerConfig::default());
    let mut workload = Workload::new(cfg.seed, cfg.matching_writes);
    let queries = workload.queries(cfg.queries);
    let mut subs = Vec::with_capacity(queries.len());
    for spec in &queries {
        subs.push(app.subscribe(spec).expect("subscribe"));
    }
    // Drain initial results.
    for sub in subs.iter_mut() {
        let _ = sub.events().timeout(Duration::from_secs(10)).next();
    }

    let interval = Duration::from_secs_f64(1.0 / cfg.writes_per_sec);
    let start = Instant::now();
    let mut issued = 0u64;
    let match_every = (cfg.writes / cfg.matching_writes.max(1)).max(1);
    let mut matched_issued = 0usize;
    let mut hist = Histogram::new();
    let mut count = 0u64;
    let drain =
        |subs: &mut Vec<invalidb_client::Subscription>, hist: &mut Histogram, count: &mut u64| {
            for sub in subs.iter_mut() {
                for ev in sub.events().non_blocking() {
                    if let ClientEvent::Change(c) = ev {
                        if let Some(lat) = c.item.doc.as_ref().and_then(latency_from_doc) {
                            hist.record(lat);
                            *count += 1;
                        }
                    }
                }
            }
        };
    for i in 0..cfg.writes {
        let target = start + interval.mul_f64(i as f64);
        while Instant::now() < target {
            drain(&mut subs, &mut hist, &mut count);
            std::thread::sleep(Duration::from_micros(200));
        }
        let is_match = i % match_every == 0 && matched_issued < cfg.matching_writes;
        let (key, mut doc) = if is_match {
            matched_issued += 1;
            workload.next_document()
        } else {
            let d = workload.document_with_random(2_000_000_000 + i as i64);
            (Key::of(format!("miss-{i}")), d)
        };
        doc.insert("ts", now_us() as i64);
        let _ = app.insert(Workload::collection(), key, doc);
        issued += 1;
    }
    let elapsed = start.elapsed();
    let deadline = Instant::now() + Duration::from_secs(2);
    while count < matched_issued as u64 && Instant::now() < deadline {
        drain(&mut subs, &mut hist, &mut count);
        std::thread::sleep(Duration::from_millis(5));
    }
    LiveRun {
        latency_us: hist,
        notifications: count,
        expected: matched_issued as u64,
        writes: issued,
        achieved_writes_per_sec: issued as f64 / elapsed.as_secs_f64().max(1e-9),
        matching_processed: 0,
        matching_nodes: 0,
    }
}

fn subscribe_msg(spec: &QuerySpec, sub: u64) -> ClusterMessage {
    ClusterMessage::Subscribe(SubscriptionRequest {
        tenant: TenantId::new(TENANT),
        subscription: SubscriptionId(sub),
        query_hash: spec.stable_hash(),
        spec: spec.clone(),
        initial: vec![],
        slack: 0,
        ttl_micros: 600_000_000,
        renewal: false,
    })
}

fn publish(broker: &Broker, msg: &ClusterMessage) {
    broker.publish(CLUSTER_TOPIC, invalidb_json::document_to_payload(&msg.to_document()));
}

/// Publishes probe writes against a dedicated probe query until a
/// notification round-trips, proving the subscription phase completed.
fn probe_until_live(broker: &Broker, _workload: &mut Workload) {
    let probe_spec = range_query(-1_000, -999);
    publish(broker, &subscribe_msg(&probe_spec, u64::MAX));
    let notify = broker.subscribe(&notify_topic(TENANT));
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut probe_version = 1u64;
    loop {
        // No `ts` field: probe notifications must not enter the histogram.
        let mut doc = Document::new();
        doc.insert("random", -1_000i64);
        publish(
            broker,
            &ClusterMessage::Write(AfterImage {
                tenant: TenantId::new(TENANT),
                collection: Workload::collection().into(),
                key: Key::of("probe"),
                version: probe_version,
                doc: Some(doc),
                written_at: now_us(),
                trace: None,
            }),
        );
        probe_version += 1;
        let got = notify.recv_timeout(Duration::from_millis(200)).and_then(|p| {
            let d = invalidb_json::payload_to_document(&p).ok()?;
            Notification::from_document(&d).ok()
        });
        if let Some(n) = got {
            if n.subscription == SubscriptionId(u64::MAX) {
                break;
            }
        }
        if Instant::now() > deadline {
            break;
        }
    }
    // Remove the probe's effect: delete the probe record.
    publish(
        broker,
        &ClusterMessage::Write(AfterImage {
            tenant: TenantId::new(TENANT),
            collection: Workload::collection().into(),
            key: Key::of("probe"),
            version: probe_version,
            doc: None,
            written_at: now_us(),
            trace: None,
        }),
    );
    publish(
        broker,
        &ClusterMessage::Unsubscribe {
            tenant: TenantId::new(TENANT),
            subscription: SubscriptionId(u64::MAX),
            query_hash: probe_spec.stable_hash(),
        },
    );
    std::thread::sleep(Duration::from_millis(100));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standalone_live_run_delivers_all_notifications() {
        let cfg = LiveConfig {
            queries: 50,
            matching_writes: 20,
            writes: 100,
            writes_per_sec: 1_000.0,
            ..LiveConfig::default()
        };
        let run = run_live(&cfg);
        assert_eq!(run.notifications, run.expected, "all matches notified");
        assert!(run.mean_ms() < 500.0);
        assert!(run.writes == 100);
    }

    #[test]
    fn app_server_live_run_works() {
        let cfg = LiveConfig {
            queries: 20,
            matching_writes: 10,
            writes: 50,
            writes_per_sec: 500.0,
            via_app_server: true,
            ..LiveConfig::default()
        };
        let run = run_live(&cfg);
        assert_eq!(run.notifications, run.expected);
    }
}
