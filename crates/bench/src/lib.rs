//! Benchmark support library: the paper's workload generator, table
//! printers, and a live-cluster measurement harness.
//!
//! Every table and figure of the paper's evaluation (§6/§7) has a
//! `cargo bench` target in this crate (see `benches/`); `EXPERIMENTS.md` at
//! the workspace root records paper-vs-measured values. Scalability sweeps
//! beyond a laptop's core count run on the calibrated discrete-event
//! simulator (`invalidb-sim`); the live harness validates the same shapes
//! at small scale on the real cluster.

pub mod live;
pub mod table;
pub mod workload;

/// Reads a scale factor from `INVALIDB_BENCH_SCALE` (default 1.0): values
/// below 1 shrink durations/workloads for smoke runs, above 1 extend them
/// for higher-fidelity numbers.
pub fn scale() -> f64 {
    std::env::var("INVALIDB_BENCH_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

/// Resolves where a machine-readable `BENCH_*.json` artifact should be
/// written: the workspace root, so the checked-in perf trajectory is
/// diffable per PR regardless of the bench binary's working directory.
pub fn artifact_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(name)
}
