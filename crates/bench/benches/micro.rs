//! Criterion micro-benchmarks for the hot paths of the real-time engine:
//! query matching (the per-(query, write) cost that dominates matching-node
//! capacity), JSON (de)serialization (the per-write event-layer overhead of
//! §6.3), sorted-window maintenance, partition hashing, and store CRUD.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use invalidb_bench::workload::{range_query, Workload};
use invalidb_common::{doc, GridShape, Key, QuerySpec, ResultItem, SortDirection};
use invalidb_core::query_index::QueryIndex;
use invalidb_core::window::SortedWindow;
use invalidb_query::{MongoQueryEngine, QueryEngine};
use invalidb_store::Store;
use std::sync::Arc;

fn bench_matching(c: &mut Criterion) {
    let mut w = Workload::new(1, 1_000);
    let queries: Vec<_> =
        w.queries(1_000).iter().map(|q| MongoQueryEngine.prepare(q).unwrap()).collect();
    let docs: Vec<_> = (0..100).map(|_| w.next_document().1).collect();
    let mut group = c.benchmark_group("matching");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("paper_workload_1000_queries_per_write", |b| {
        let mut i = 0;
        b.iter(|| {
            let doc = &docs[i % docs.len()];
            i += 1;
            let mut hits = 0u32;
            for q in &queries {
                if q.matches(black_box(doc)) {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });
    group.finish();

    let complex = QuerySpec::filter(
        "t",
        doc! {
            "$or" => vec![
                invalidb_common::Value::Object(doc! { "s1" => doc! { "$regex" => "^ab" } }),
                invalidb_common::Value::Object(doc! { "i1" => doc! { "$gte" => 500i64, "$lt" => 800i64 } }),
            ],
            "i2" => doc! { "$mod" => vec![7i64, 3] },
        },
    );
    let prepared = MongoQueryEngine.prepare(&complex).unwrap();
    c.bench_function("matching/complex_or_regex_mod", |b| {
        let mut i = 0;
        b.iter(|| {
            let doc = &docs[i % docs.len()];
            i += 1;
            black_box(prepared.matches(black_box(doc)))
        });
    });

    // The multi-query index (thesis optimization): per write, stab the
    // interval trees and verify only the candidates — compare against the
    // 1000-evaluation scan above.
    let mut w = Workload::new(1, 1_000);
    let specs = w.queries(1_000);
    let mut index: QueryIndex<usize> = QueryIndex::default();
    for (i, spec) in specs.iter().enumerate() {
        index.insert(i, &spec.filter);
    }
    let docs: Vec<_> = (0..100).map(|_| w.next_document().1).collect();
    let mut group = c.benchmark_group("matching");
    group.throughput(Throughput::Elements(1_000));
    group.bench_function("indexed_1000_queries_per_write", |b| {
        let mut i = 0;
        let mut cands: Vec<usize> = Vec::new();
        b.iter(|| {
            let doc = &docs[i % docs.len()];
            i += 1;
            let mut hits = 0u32;
            index.candidates(black_box(doc), &mut cands);
            for id in &cands {
                if queries[*id].matches(doc) {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });
    group.finish();

    // Mini-batch probing: one columnar `candidates_batch` call over a
    // 32-write batch versus 32 serial `candidates` probes. Throughput is
    // writes, so the report reads as per-write cost either way.
    let mut w = Workload::new(4, 1_000);
    let specs = w.queries(1_000);
    let batch_docs: Vec<_> = (0..32).map(|_| w.next_document().1).collect();
    let refs: Vec<Option<&invalidb_common::Document>> = batch_docs.iter().map(Some).collect();
    let mut group = c.benchmark_group("matching_batch");
    group.throughput(Throughput::Elements(batch_docs.len() as u64));
    group.bench_function("serial_candidates_32_writes", |b| {
        let mut index: QueryIndex<usize> = QueryIndex::default();
        for (i, spec) in specs.iter().enumerate() {
            index.insert(i, &spec.filter);
        }
        let mut cands: Vec<usize> = Vec::new();
        b.iter(|| {
            let mut pairs = 0usize;
            for doc in &batch_docs {
                index.candidates(black_box(doc), &mut cands);
                pairs += cands.len();
            }
            black_box(pairs)
        });
    });
    group.bench_function("candidates_batch_32_writes", |b| {
        let mut index: QueryIndex<usize> = QueryIndex::default();
        for (i, spec) in specs.iter().enumerate() {
            index.insert(i, &spec.filter);
        }
        let mut pairs: Vec<(usize, u32)> = Vec::new();
        b.iter(|| {
            index.candidates_batch(black_box(&refs), &mut pairs);
            black_box(pairs.len())
        });
    });
    group.finish();
}

fn bench_ingest(c: &mut Criterion) {
    // The ingestion-tier decode of a binary write envelope: the eager path
    // materializes the whole envelope and clones the `doc` subtree again
    // into the after-image; the lazy path skip-scans the IVBD bytes and
    // materializes only the subtrees the message owns.
    use invalidb_common::{AfterImage, ClusterMessage, TenantId};
    let mut w = Workload::new(6, 10);
    let envelope = ClusterMessage::Write(AfterImage {
        tenant: TenantId("bench".to_owned()),
        collection: "t".to_owned(),
        key: Key::of(42),
        version: 7,
        doc: Some(w.next_document().1),
        written_at: 7,
        trace: None,
    })
    .to_document();
    let payload = invalidb_json::WireCodec::Binary.encode(&envelope);
    let mut group = c.benchmark_group("ingest");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("decode_write_envelope_eager", |b| {
        b.iter(|| {
            let d = invalidb_json::payload_to_document(black_box(&payload)).unwrap();
            black_box(ClusterMessage::from_document(&d).unwrap())
        });
    });
    group.bench_function("decode_write_envelope_lazy", |b| {
        b.iter(|| {
            black_box(invalidb_core::ingest::decode_cluster_payload(black_box(&payload)).unwrap())
        });
    });
    group.finish();
}

fn bench_json(c: &mut Criterion) {
    let mut w = Workload::new(2, 10);
    let doc = w.next_document().1;
    let text = invalidb_json::to_string(&doc);
    let mut group = c.benchmark_group("json");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("serialize_after_image", |b| {
        b.iter(|| black_box(invalidb_json::to_string(black_box(&doc))));
    });
    group.bench_function("parse_after_image", |b| {
        b.iter(|| black_box(invalidb_json::parse_document(black_box(&text)).unwrap()));
    });
    group.finish();
}

fn bench_window(c: &mut Criterion) {
    let spec = QuerySpec::filter("t", doc! {}).sorted_by("score", SortDirection::Desc).with_limit(10);
    let prepared = MongoQueryEngine.prepare(&spec).unwrap();
    let initial: Vec<ResultItem> =
        (0..15i64).map(|i| ResultItem::new(Key::of(i), 1, doc! { "score" => 1_000 - i })).collect();
    c.bench_function("window/apply_update_stream", |b| {
        let mut window = SortedWindow::new(Arc::clone(&prepared), 5, &initial);
        let mut version = 2u64;
        let mut i = 0i64;
        b.iter(|| {
            i = (i + 1) % 15;
            version += 1;
            let doc = doc! { "score" => 990 + (version as i64 % 30) };
            black_box(window.apply(&Key::of(i), version, Some(&doc)))
        });
    });
}

fn bench_partitioning(c: &mut Criterion) {
    let grid = GridShape::new(4, 4);
    let keys: Vec<Key> = (0..1_000i64).map(Key::of).collect();
    c.bench_function("partition/route_write_to_column", |b| {
        let mut i = 0;
        b.iter(|| {
            let key = &keys[i % keys.len()];
            i += 1;
            black_box(grid.tasks_for_key(black_box(key)))
        });
    });
    let q = range_query(10, 20);
    c.bench_function("partition/query_hash", |b| {
        b.iter(|| black_box(black_box(&q).stable_hash()));
    });
}

fn bench_broker(c: &mut Criterion) {
    // Event-layer throughput (the thesis separately evaluates event-layer
    // scalability; here: single-topic publish+deliver cost).
    use invalidb_broker::Broker;
    let broker = Broker::new();
    let sub = broker.subscribe("bench");
    let mut w = Workload::new(5, 10);
    let payload = invalidb_json::document_to_payload(&w.next_document().1);
    let mut group = c.benchmark_group("broker");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("publish_and_receive", |b| {
        b.iter(|| {
            broker.publish("bench", payload.clone());
            black_box(sub.recv().unwrap())
        });
    });
    group.finish();
}

fn bench_store(c: &mut Criterion) {
    let store = Store::new();
    let mut w = Workload::new(3, 10);
    let mut i = 0i64;
    c.bench_function("store/save_with_after_image", |b| {
        b.iter(|| {
            i += 1;
            let doc = w.document_with_random(i);
            black_box(store.save("bench", Key::of(i % 10_000), doc).unwrap())
        });
    });
    let store = Store::new();
    for j in 0..10_000i64 {
        store.insert("q", Key::of(j), doc! { "n" => j % 100 }).unwrap();
    }
    let spec = QuerySpec::filter("q", doc! { "n" => doc! { "$gte" => 10i64, "$lt" => 12i64 } });
    c.bench_function("store/range_query_full_scan_10k", |b| {
        b.iter(|| black_box(store.execute(black_box(&spec)).unwrap()));
    });
    store.collection("q").create_index("n").unwrap();
    c.bench_function("store/range_query_indexed_10k", |b| {
        b.iter(|| black_box(store.execute(black_box(&spec)).unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matching, bench_ingest, bench_json, bench_window, bench_partitioning, bench_broker, bench_store
}
criterion_main!(benches);
