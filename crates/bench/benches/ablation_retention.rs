//! Ablation — write-stream retention (§5.1).
//!
//! The paper's design keeps received after-images buffered at the matching
//! nodes and replays them on subscription, closing the write-subscription
//! race; versioned writes additionally defeat event-layer reordering
//! (staleness avoidance). This ablation drives the *live* cluster through a
//! chaotic event layer (random per-message delays → reordering) while
//! racing writes against subscriptions, with retention enabled vs. disabled,
//! and reports the missed-notification rate.
//!
//! Expectation: with retention ≈ 0, races lose notifications; with the
//! paper's few-seconds retention, delivery is complete.

use invalidb_bench::table;
use invalidb_broker::{notify_topic, Broker, ChaosConfig, CLUSTER_TOPIC};
use invalidb_common::{
    doc, AfterImage, ClusterMessage, Key, Notification, NotificationKind, QuerySpec, SubscriptionId,
    SubscriptionRequest, TenantId,
};
use invalidb_core::{Cluster, ClusterConfig};
use std::time::Duration;

const TENANT: &str = "bench";
const TRIALS: usize = 60;

fn main() {
    table::banner("Ablation", "Write-stream retention vs. the write-subscription race");
    let mut rows = Vec::new();
    for (label, retention) in
        [("retention disabled", Duration::ZERO), ("retention 2 s (paper)", Duration::from_secs(2))]
    {
        let missed = run_trials(retention);
        rows.push(vec![
            label.to_string(),
            format!("{TRIALS}"),
            format!("{missed}"),
            format!("{:.0}%", missed as f64 / TRIALS as f64 * 100.0),
        ]);
    }
    table::table(&["configuration", "raced subscriptions", "missed notifications", "miss rate"], &rows);
    println!(
        "expectation: disabling retention loses racing writes; the paper's retention closes the race"
    );
}

/// Runs raced write/subscribe trials against a chaotic broker; returns how
/// many notifications were missed.
fn run_trials(retention: Duration) -> usize {
    let mut missed = 0;
    for seed in 0..TRIALS as u64 {
        let broker = Broker::with_chaos(ChaosConfig {
            seed,
            delay: Some((Duration::ZERO, Duration::from_millis(15))),
            drop_probability: 0.0,
            scope: Default::default(),
        });
        let notify = broker.subscribe(&notify_topic(TENANT));
        let mut cfg = ClusterConfig::new(1, 1);
        cfg.retention = retention;
        cfg.tick_interval = Duration::from_millis(5);
        let cluster = Cluster::start(broker.clone(), cfg);

        let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 0i64 } });
        // The write races the subscription through the delayed event layer;
        // the initial result does not contain it (write-query race resolved
        // query-first).
        publish(
            &broker,
            &ClusterMessage::Write(AfterImage {
                tenant: TenantId::new(TENANT),
                collection: "t".into(),
                key: Key::of(seed as i64),
                version: 1,
                doc: Some(doc! { "n" => 1i64 }),
                written_at: 1,
                trace: None,
            }),
        );
        publish(
            &broker,
            &ClusterMessage::Subscribe(SubscriptionRequest {
                tenant: TenantId::new(TENANT),
                subscription: SubscriptionId(seed + 1),
                query_hash: spec.stable_hash(),
                spec: spec.clone(),
                initial: vec![],
                slack: 0,
                ttl_micros: 60_000_000,
                renewal: false,
            }),
        );
        // Await the add notification (or give up).
        let deadline = std::time::Instant::now() + Duration::from_millis(600);
        let mut got_add = false;
        while std::time::Instant::now() < deadline && !got_add {
            if let Some(p) = notify.recv_timeout(Duration::from_millis(50)) {
                if let Ok(d) = invalidb_json::payload_to_document(&p) {
                    if let Ok(n) = Notification::from_document(&d) {
                        if matches!(n.kind, NotificationKind::Change(_)) {
                            got_add = true;
                        }
                    }
                }
            }
        }
        if !got_add {
            missed += 1;
        }
        cluster.shutdown();
    }
    missed
}

fn publish(broker: &Broker, msg: &ClusterMessage) {
    broker.publish(CLUSTER_TOPIC, invalidb_json::document_to_payload(&msg.to_document()));
}
