//! Figure 6 — Quaestor vs. standalone InvaliDB: change-notification latency
//! with and without an application server in the path.
//!
//! * (a) p99 latency under increasing query load at 1 000 writes/s
//!   (paper: Quaestor ≈ standalone + ~5 ms constant overhead; the app
//!   server is not a bottleneck for reads);
//! * (b) p99 latency under increasing write load at 1 000 queries
//!   (paper: one app server caps at ≈6 000 ops/s — still 6–12× beyond
//!   Firestore's/Firebase's documented per-collection write limits);
//! * (c) latency distribution snapshot, read-heavy (24 000 queries);
//! * (d) latency distribution snapshot, write-heavy (5 000 ops/s).
//!
//! Besides the text tables, every number is also written to
//! `BENCH_fig6.json` so plots and regression tooling can consume the run
//! without scraping stdout.

use invalidb_bench::table;
use invalidb_common::{Document, Value};
use invalidb_sim::{simulate, SimParams};
use std::time::Duration;

fn main() {
    let scale = invalidb_bench::scale();
    let duration = 20.0 * scale;
    let mut out = Document::with_capacity(8);
    out.insert("benchmark", "fig6_quaestor");
    out.insert("scale", scale);
    out.insert("sim_duration_s", duration);

    // (a) read side: 16 QP x 1 WP, like the paper's read-heavy deployment.
    table::banner("Figure 6a", "p99 latency vs. query load @ 1k ops/s (16 QP, 1 WP)");
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for queries in [500u64, 1_000, 2_000, 4_000, 8_000, 12_000, 16_000, 24_000, 28_000] {
        let mut standalone = SimParams::new(16, 1);
        standalone.queries = queries;
        standalone.duration_s = duration;
        let s = simulate(&standalone);
        let mut quaestor = standalone.clone();
        quaestor.with_app_server = true;
        let q = simulate(&quaestor);
        rows.push(vec![
            format!("{queries}"),
            format!("{:.1}", s.p99_ms()),
            format!("{:.1}", q.p99_ms()),
            format!("{:+.1}", q.p99_ms() - s.p99_ms()),
        ]);
        let mut row = Document::with_capacity(4);
        row.insert("queries", queries as i64);
        row.insert("standalone_p99_ms", s.p99_ms());
        row.insert("quaestor_p99_ms", q.p99_ms());
        row.insert("overhead_ms", q.p99_ms() - s.p99_ms());
        json_rows.push(Value::from(row));
    }
    out.insert("fig6a", Value::Array(json_rows));
    table::table(&["queries", "standalone p99 (ms)", "quaestor p99 (ms)", "overhead"], &rows);
    println!("paper: constant ~5 ms offset; app server not a bottleneck on the read side");

    // (b) write side: 1 QP x 16 WP.
    table::banner("Figure 6b", "p99 latency vs. write load @ 1k queries (1 QP, 16 WP)");
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for writes in [500.0f64, 1_000.0, 2_000.0, 4_000.0, 5_000.0, 6_000.0, 8_000.0, 12_000.0] {
        let mut standalone = SimParams::new(1, 16);
        standalone.writes_per_sec = writes;
        standalone.duration_s = duration;
        let s = simulate(&standalone);
        let mut quaestor = standalone.clone();
        quaestor.with_app_server = true;
        let q = simulate(&quaestor);
        rows.push(vec![
            format!("{writes:.0}"),
            format!("{:.1}", s.p99_ms()),
            format!("{:.1}", q.p99_ms()),
        ]);
        let mut row = Document::with_capacity(3);
        row.insert("ops_per_sec", writes);
        row.insert("standalone_p99_ms", s.p99_ms());
        row.insert("quaestor_p99_ms", q.p99_ms());
        json_rows.push(Value::from(row));
    }
    out.insert("fig6b", Value::Array(json_rows));
    table::table(&["ops/s", "standalone p99 (ms)", "quaestor p99 (ms)"], &rows);
    println!("paper: quaestor knee at ~6k ops/s (single app server); standalone keeps going");

    // (c) + (d): latency distributions at the paper's snapshot points.
    for (id, key, title, qp, wp, queries, writes) in [
        (
            "Figure 6c",
            "fig6c",
            "latency distribution, read-heavy (24k queries @ 1k ops/s)",
            16usize,
            1usize,
            24_000u64,
            1_000.0f64,
        ),
        (
            "Figure 6d",
            "fig6d",
            "latency distribution, write-heavy (1k queries @ 5k ops/s)",
            1,
            16,
            1_000,
            5_000.0,
        ),
    ] {
        table::banner(id, title);
        let mut json_rows = Vec::new();
        for with_app in [false, true] {
            let mut p = SimParams::new(qp, wp);
            p.queries = queries;
            p.writes_per_sec = writes;
            p.duration_s = duration;
            p.with_app_server = with_app;
            let r = simulate(&p);
            let label = if with_app { "quaestor" } else { "standalone" };
            println!(
                "\n{label}: mean {:.1} ms, p50 {:.1} ms, p99 {:.1} ms  (n = {})",
                r.mean_ms(),
                r.latency_us.quantile(0.5) as f64 / 1_000.0,
                r.p99_ms(),
                r.notifications
            );
            print_distribution(&r.latency_us);
            let mut row = Document::with_capacity(5);
            row.insert("mode", label);
            row.insert("mean_ms", r.mean_ms());
            row.insert("p50_ms", r.latency_us.quantile(0.5) as f64 / 1_000.0);
            row.insert("p99_ms", r.p99_ms());
            row.insert("notifications", r.notifications as i64);
            json_rows.push(Value::from(row));
        }
        out.insert(key, Value::Array(json_rows));
    }
    println!("\npaper: quaestor's distribution is the standalone one shifted right ~5 ms, longer tail under write pressure, <100 ms near capacity");

    // (e) per-stage breakdown, once per topology batch bound: max_batch=1
    // is the pre-mini-batch pipeline, the default shows what batched
    // matching buys per stage (the matching row is the interesting one).
    let default_batch = invalidb_core::ClusterConfig::new(1, 1).max_batch;
    let mut breakdowns = Vec::new();
    let mut default_run = Value::Null;
    for max_batch in [1usize, default_batch] {
        let run = stage_breakdown(max_batch);
        if max_batch == default_batch {
            default_run = run.clone();
        }
        breakdowns.push(run);
    }
    // `fig6e` keeps the default run's shape (plus its `max_batch`) for
    // existing consumers; the sweep lives under `breakdowns`.
    let mut fig6e = match default_run {
        Value::Object(d) => d,
        _ => unreachable!("default batch run always recorded"),
    };
    fig6e.insert("breakdowns", Value::Array(breakdowns));
    out.insert("fig6e", Value::from(fig6e));

    let json = invalidb_json::to_string(&out);
    match std::fs::write(invalidb_bench::artifact_path("BENCH_fig6.json"), &json) {
        Ok(()) => println!("\nmachine-readable results written to BENCH_fig6.json"),
        Err(e) => eprintln!("\nfailed to write BENCH_fig6.json: {e}"),
    }
}

/// (e) Extension beyond the paper: where does the latency go? Runs the
/// *real* pipeline (store + broker + 2x2 cluster + app server) with
/// stage tracing on every write and prints the per-stage latency table
/// aggregated by the shared metrics registry. Returns the stage rows as
/// a JSON array for `BENCH_fig6.json`.
fn stage_breakdown(max_batch: usize) -> Value {
    use invalidb_broker::Broker;
    use invalidb_client::{AppServer, AppServerConfig, ClientEvent};
    use invalidb_common::{doc, Key, QuerySpec};
    use invalidb_core::{Cluster, ClusterConfig};
    use invalidb_obs::MetricsRegistry;
    use invalidb_store::Store;
    use std::sync::Arc;

    table::banner(
        "Figure 6e",
        &format!(
            "per-stage latency breakdown, traced live pipeline (2 QP x 2 WP, max_batch={max_batch})"
        ),
    );
    let store = Arc::new(Store::new());
    let broker = Broker::new();
    let metrics = MetricsRegistry::new();
    let cluster = Cluster::start(
        broker.clone(),
        ClusterConfig::builder(2, 2).metrics(metrics.clone()).max_batch(max_batch).build().unwrap(),
    );
    let config =
        AppServerConfig::builder().trace_sample_every(1).metrics(metrics.clone()).build().unwrap();
    let app = AppServer::start("fig6e", Arc::clone(&store), broker.clone(), config);

    let spec = QuerySpec::filter("t", doc! { "n" => doc! { "$gte" => 0i64 } });
    let mut sub = app.subscribe(&spec).unwrap();
    sub.events().timeout(Duration::from_secs(10)).next().expect("initial result");

    let writes = (500.0 * invalidb_bench::scale()).max(100.0) as i64;
    let mut delivered = 0u64;
    for i in 0..writes {
        app.insert("t", Key::of(i), doc! { "n" => i }).unwrap();
        // Consume as we go so the subscription channel never backs up.
        for ev in sub.events().non_blocking() {
            if matches!(ev, ClientEvent::Change(_)) {
                delivered += 1;
            }
        }
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while delivered < writes as u64 && std::time::Instant::now() < deadline {
        if let Some(ev) = sub.events().timeout(Duration::from_millis(100)).next() {
            if matches!(ev, ClientEvent::Change(_)) {
                delivered += 1;
            }
        }
    }

    let snapshot = app.metrics();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut stages = Vec::new();
    for (stage, h) in snapshot.stage_breakdown() {
        rows.push(vec![
            stage.clone(),
            format!("{}", h.count),
            format!("{}", h.mean),
            format!("{}", h.p50),
            format!("{}", h.p99),
            format!("{}", h.max),
        ]);
        let mut row = Document::with_capacity(6);
        row.insert("stage", stage);
        row.insert("count", h.count as i64);
        row.insert("mean_us", h.mean as i64);
        row.insert("p50_us", h.p50 as i64);
        row.insert("p99_us", h.p99 as i64);
        row.insert("max_us", h.max as i64);
        stages.push(Value::from(row));
    }
    table::table(&["stage (µs)", "count", "mean", "p50", "p99", "max"], &rows);
    println!("{writes} traced writes, {delivered} notifications delivered; stage.total is the end-to-end write->delivery latency, the stage.* rows its additive decomposition");
    cluster.shutdown();
    let mut breakdown = Document::with_capacity(4);
    breakdown.insert("max_batch", max_batch as i64);
    breakdown.insert("traced_writes", writes);
    breakdown.insert("delivered", delivered as i64);
    breakdown.insert("stages", Value::Array(stages));
    Value::from(breakdown)
}

/// Prints a coarse latency histogram (2 ms buckets to 40 ms, like Fig 6c/d).
fn print_distribution(hist: &invalidb_common::Histogram) {
    let total = hist.count().max(1) as f64;
    let mut buckets = [0u64; 21];
    for (upper_us, count) in hist.nonzero_buckets() {
        let ms = upper_us / 1_000;
        let idx = ((ms / 2) as usize).min(20);
        buckets[idx] += count;
    }
    for (i, &count) in buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let frequency = count as f64 / total;
        let bar = "#".repeat((frequency * 200.0).round() as usize);
        let label = if i == 20 { ">40ms".to_owned() } else { format!("{}-{}ms", i * 2, i * 2 + 2) };
        println!("  {label:>8} | {bar} {frequency:.3}");
    }
}
