//! Table 3 — Measured latency (average, standard deviation, 99th
//! percentile, maximum) for different InvaliDB cluster sizes under identical
//! *relative* load:
//!
//! * (a) read-heavy: 1 500 queries per query partition at 1 000 ops/s
//!   (≈80 % of capacity);
//! * (b) write-heavy: 1 000 ops/s per write partition at 1 000 queries
//!   (≈66 % of capacity).
//!
//! The paper's headline: latency stays flat (≈9 ms average, sub-50 ms
//! outliers) across cluster sizes — the grid adds capacity, not latency.

use invalidb_bench::table;
use invalidb_sim::{simulate, SimParams};

fn row(label: String, r: &invalidb_sim::SimResult) -> Vec<String> {
    vec![
        label,
        format!("{:.1}", r.mean_ms()),
        format!("{:.1}", r.latency_us.stddev() / 1_000.0),
        format!("{:.1}", r.p99_ms()),
        format!("{:.0}", r.latency_us.max() as f64 / 1_000.0),
    ]
}

fn main() {
    let scale = invalidb_bench::scale();
    let duration = 30.0 * scale;

    table::banner(
        "Table 3a",
        "Read-heavy latency @ 1k ops/s: 1500 queries per query partition (~80% capacity)",
    );
    let mut rows = Vec::new();
    for qp in [1usize, 2, 4, 8, 16] {
        let mut p = SimParams::new(qp, 1);
        p.queries = 1_500 * qp as u64;
        p.duration_s = duration;
        let r = simulate(&p);
        rows.push(row(format!("{} QP, {} queries", qp, p.queries), &r));
    }
    table::table(&["configuration", "avg (ms)", "std dev", "p99 (ms)", "max (ms)"], &rows);
    println!("paper: avg 9.0-9.4 ms, std 2.4-3.4 ms, p99 15.2-20.1 ms, max <= 46 ms");

    table::banner(
        "Table 3b",
        "Write-heavy latency @ 1k queries: 1000 ops/s per write partition (~66% capacity)",
    );
    let mut rows = Vec::new();
    for wp in [1usize, 2, 4, 8, 16] {
        let mut p = SimParams::new(1, wp);
        p.writes_per_sec = 1_000.0 * wp as f64;
        p.duration_s = duration;
        let r = simulate(&p);
        rows.push(row(format!("{} WP, {:.0} ops/s", wp, p.writes_per_sec), &r));
    }
    table::table(&["configuration", "avg (ms)", "std dev", "p99 (ms)", "max (ms)"], &rows);
    println!("paper: avg 8.8-10.3 ms, std 2.3-3.5 ms, p99 15.0-21.9 ms, max <= 79 ms");
}
