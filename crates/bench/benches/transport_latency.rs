//! Transport comparison — end-to-end notification latency (app-server
//! write → push notification at the subscriber) with the event layer
//! running (a) in-process, (b) with the app server attached over TCP
//! loopback, and (c) with both the cluster and the app server attached
//! over TCP loopback.
//!
//! The paper's prototype pays this hop through Redis (§5.3); the
//! interesting question for the reproduction is how much of the ~9 ms
//! average (Table 3) is transport. Loopback TCP with the framing codec
//! adds tens to hundreds of microseconds per hop — small against the
//! paper's numbers, so the in-process default does not flatter the
//! matching pipeline by much.

use invalidb_bench::table;
use invalidb_broker::{Broker, BrokerHandle};
use invalidb_client::{AppServer, AppServerConfig, ClientEvent};
use invalidb_common::{doc, Key, QuerySpec};
use invalidb_core::{Cluster, ClusterConfig};
use invalidb_net::{BrokerServer, BrokerServerConfig, RemoteBroker, RemoteBrokerConfig};
use invalidb_store::Store;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Stats {
    mean_us: f64,
    p99_us: f64,
    max_us: f64,
}

fn stats(mut latencies_us: Vec<f64>) -> Stats {
    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean = latencies_us.iter().sum::<f64>() / latencies_us.len() as f64;
    let p99 = latencies_us[((latencies_us.len() - 1) as f64 * 0.99) as usize];
    let max = *latencies_us.last().unwrap();
    Stats { mean_us: mean, p99_us: p99, max_us: max }
}

/// Runs `rounds` write→notification round trips on a freshly started
/// stack whose cluster and app server sit on the given broker handles.
fn measure(
    cluster_link: impl Into<BrokerHandle>,
    app_link: impl Into<BrokerHandle>,
    tenant: &str,
    rounds: usize,
) -> Stats {
    let store = Arc::new(Store::new());
    let cluster = Cluster::start(cluster_link, ClusterConfig::new(1, 1));
    let app = AppServer::start(tenant, Arc::clone(&store), app_link, AppServerConfig::default());

    let spec = QuerySpec::filter("pings", doc! { "n" => doc! { "$gte" => 0i64 } });
    let mut sub = app.subscribe(&spec).unwrap();
    assert!(matches!(
        sub.events().timeout(Duration::from_secs(10)).next(),
        Some(ClientEvent::Initial(_))
    ));

    let mut latencies = Vec::with_capacity(rounds);
    for i in 0..rounds as i64 {
        let key = Key::of(i);
        let start = Instant::now();
        app.save("pings", key.clone(), doc! { "n" => i }).unwrap();
        loop {
            match sub.events().timeout(Duration::from_secs(10)).next().expect("notification") {
                ClientEvent::Change(c) if c.item.key == key => {
                    latencies.push(start.elapsed().as_secs_f64() * 1e6);
                    break;
                }
                _ => {}
            }
        }
    }
    drop(sub);
    cluster.shutdown();
    stats(latencies)
}

fn remote(addr: std::net::SocketAddr, name: &str) -> RemoteBroker {
    let link = RemoteBroker::connect(
        addr.to_string(),
        RemoteBrokerConfig { client_name: name.into(), ..Default::default() },
    );
    assert!(link.wait_connected(Duration::from_secs(5)));
    link
}

fn main() {
    let rounds = (300.0 * invalidb_bench::scale()).max(20.0) as usize;
    table::banner(
        "Transport",
        "Notification latency (save -> push notification), in-process vs. TCP loopback",
    );

    let mut rows = Vec::new();

    // (a) Everything in-process: the repo's default deployment.
    let broker = Broker::new();
    let s = measure(broker.clone(), broker, "bench-inproc", rounds);
    rows.push(row("in-process broker", &s));

    // (b) Cluster local to the broker; app server over TCP loopback —
    // the `examples/distributed.rs` topology (2 TCP hops per round trip:
    // write envelope in, notification out).
    let broker = Broker::new();
    let server =
        BrokerServer::bind("127.0.0.1:0", broker.clone(), BrokerServerConfig::default()).expect("bind");
    let app_link = remote(server.local_addr(), "bench-app");
    let s = measure(broker, app_link.clone(), "bench-tcp-app", rounds);
    app_link.shutdown();
    rows.push(row("TCP loopback (app server remote)", &s));

    // (c) Cluster *and* app server both remote — every envelope crosses
    // the wire twice (publish up, deliver down): 4 TCP hops per round.
    let broker = Broker::new();
    let server = BrokerServer::bind("127.0.0.1:0", broker, BrokerServerConfig::default()).expect("bind");
    let cluster_link = remote(server.local_addr(), "bench-cluster");
    let app_link = remote(server.local_addr(), "bench-app2");
    let s = measure(cluster_link.clone(), app_link.clone(), "bench-tcp-both", rounds);
    cluster_link.shutdown();
    app_link.shutdown();
    rows.push(row("TCP loopback (cluster + app server remote)", &s));

    table::table(&["deployment", "avg (us)", "p99 (us)", "max (us)"], &rows);
    println!("rounds per row: {rounds} (scale with INVALIDB_BENCH_SCALE)");
    println!("paper: ~9 ms end-to-end average through Redis + Storm (Table 3)");
}

fn row(label: &str, s: &Stats) -> Vec<String> {
    vec![
        label.to_string(),
        format!("{:.0}", s.mean_us),
        format!("{:.0}", s.p99_us),
        format!("{:.0}", s.max_us),
    ]
}
